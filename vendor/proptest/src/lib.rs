//! Offline vendored shim of `proptest`.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with
//! `name in strategy` and `name: Type` argument forms plus
//! `#![proptest_config(...)]`, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple strategies,
//! [`collection::vec`], [`arbitrary::any`], [`strategy::Just`],
//! `prop_oneof!`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs directly), and case generation is fully deterministic — the RNG
//! stream is derived from the test name and case index, so failures
//! reproduce without a persistence file. `PROPTEST_CASES` overrides the
//! per-test case count.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then draws from the strategy
        /// `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Box::new(self) }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! requires at least one strategy");
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty as $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as $u;
                    let offset = rng.gen_range(0..span);
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128 + 1) as $u;
                    let offset = rng.gen_range(0..span);
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8 as u64, i16 as u64, i32 as u64, i64 as u128, isize as u128);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Uniform strategy over a type's full value range.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: PhantomData<T>,
    }

    macro_rules! impl_any_via_standard {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    <$t as rand::Standard>::draw(rng)
                }
            }
        )*};
    }
    impl_any_via_standard!(bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, f64);

    impl Strategy for Any<char> {
        type Value = char;
        fn generate(&self, rng: &mut StdRng) -> char {
            // Mostly ASCII with occasional wider code points, never
            // surrogates.
            if rng.gen_range(0u32..4) == 0 {
                char::from_u32(rng.gen_range(0x20u32..0xD7FF)).unwrap_or('?')
            } else {
                char::from(rng.gen_range(0x20u8..0x7F))
            }
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use super::strategy::Any;
    use std::marker::PhantomData;

    /// Returns the canonical strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any { _marker: PhantomData }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange { lo: exact, hi_inclusive: exact }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case driving for the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not succeed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Drives `body` over deterministic cases; panics on the first failure
    /// with the generated inputs in the message.
    pub fn run_cases<F>(config: ProptestConfig, test_name: &str, body: F)
    where
        F: Fn(&mut StdRng, &mut Vec<String>) -> TestCaseResult,
    {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
            .max(1);
        let name_hash = fnv1a(test_name);
        let mut passed = 0u32;
        let mut attempts = 0u64;
        let max_attempts = u64::from(cases) * 20 + 1000;
        while passed < cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "proptest '{test_name}': too many prop_assume! rejections \
                     ({passed}/{cases} cases passed after {max_attempts} attempts)"
                );
            }
            let mut rng = StdRng::seed_from_u64(name_hash ^ attempts.wrapping_mul(0x9E37_79B9));
            let mut inputs = Vec::new();
            match body(&mut rng, &mut inputs) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest '{test_name}' failed on case {attempts}: {msg}\n  inputs:\n    {}",
                        inputs.join("\n    ")
                    );
                }
            }
        }
    }
}

pub mod prelude {
    //! The names property tests import with `use proptest::prelude::*`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the crate docs for the supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(
                    $cfg,
                    stringify!($name),
                    |__rng, __inputs| {
                        $crate::__proptest_bind!(__rng, __inputs, ($($args)*), $body)
                    },
                );
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident, (), $body:block) => {{
        $body
        ::std::result::Result::Ok(())
    }};
    ($rng:ident, $inputs:ident, ($name:ident in $strat:expr $(, $($rest:tt)*)?), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $inputs.push(format!("{} = {:?}", stringify!($name), &$name));
        $crate::__proptest_bind!($rng, $inputs, ($($($rest)*)?), $body)
    }};
    ($rng:ident, $inputs:ident, ($name:ident : $ty:ty $(, $($rest:tt)*)?), $body:block) => {{
        let $name = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
        $inputs.push(format!("{} = {:?}", stringify!($name), &$name));
        $crate::__proptest_bind!($rng, $inputs, ($($($rest)*)?), $body)
    }};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u32..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn typed_args_work(flag: bool, word: u64) {
            let _ = (flag, word);
            prop_assert!(true);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn flat_map_and_oneof_compose(
            pair in (1usize..5).prop_flat_map(|n| (Just(n), crate::collection::vec(0usize..n, n))),
            tagged in prop_oneof![
                (0u64..10).prop_map(|v| ("low", v)),
                (100u64..110).prop_map(|v| ("high", v)),
            ],
        ) {
            let (n, items) = pair;
            prop_assert_eq!(items.len(), n);
            for item in items {
                prop_assert!(item < n);
            }
            match tagged {
                ("low", v) => prop_assert!(v < 10),
                ("high", v) => prop_assert!((100..110).contains(&v)),
                other => prop_assert!(false, "unexpected tag {:?}", other),
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0u64..1000, 5..9);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(99);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(99);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
