//! Offline vendored `#[derive(Serialize, Deserialize)]` macros.
//!
//! Built directly on `proc_macro` (the offline environment has neither
//! `syn` nor `quote`). The parser handles the shapes this workspace uses:
//! non-generic structs (named, tuple, unit) and enums whose variants are
//! unit, tuple, or struct-like. Generated code targets the vendored
//! `serde` crate's `Content` data model with upstream serde's
//! externally-tagged enum encoding.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    item.serialize_impl().parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match Item::parse(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    item.deserialize_impl().parse().expect("generated Deserialize impl parses")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

/// The shape of the fields of a struct or of one enum variant.
enum Fields {
    Unit,
    /// Tuple fields; the count is all the generator needs.
    Tuple(usize),
    /// Named fields in declaration order.
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

/// A cursor over a flat token list that can skip attributes/visibility.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips `#[...]` attribute groups (doc comments included).
    fn skip_attributes(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1;
                    // `#` is always followed by a bracket group in item position.
                    if matches!(
                        self.peek(),
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket
                    ) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.pos += 1;
            if matches!(
                self.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                self.pos += 1;
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("serde derive: expected {what}, found {other:?}")),
        }
    }

    /// Consumes tokens until a top-level comma (angle-bracket aware), i.e.
    /// one field type. Returns false if the cursor was already exhausted.
    fn skip_type(&mut self) -> bool {
        let mut angle_depth = 0i32;
        let mut saw_any = false;
        while let Some(tok) = self.peek() {
            if let TokenTree::Punct(p) = tok {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    self.pos += 1; // eat the separator
                    return true;
                }
                if c == '<' {
                    angle_depth += 1;
                }
                if c == '>' {
                    angle_depth -= 1;
                }
            }
            saw_any = true;
            self.pos += 1;
        }
        saw_any
    }
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let mut cur = Cursor::new(input);
        cur.skip_attributes();
        cur.skip_visibility();
        let kind = cur.expect_ident("`struct` or `enum`")?;
        let name = cur.expect_ident("type name")?;
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!("serde derive (vendored): generic type `{name}` is not supported"));
        }
        match kind.as_str() {
            "struct" => {
                let fields = match cur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Self::parse_named_fields(g.stream())?
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Self::parse_tuple_fields(g.stream())?
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => {
                        return Err(format!(
                            "serde derive: unsupported struct body for `{name}`: {other:?}"
                        ))
                    }
                };
                Ok(Item { name, body: Body::Struct(fields) })
            }
            "enum" => {
                let body = match cur.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Self::parse_variants(g.stream())?
                    }
                    other => {
                        return Err(format!(
                            "serde derive: unsupported enum body for `{name}`: {other:?}"
                        ))
                    }
                };
                Ok(Item { name, body: Body::Enum(body) })
            }
            other => Err(format!("serde derive: cannot derive for `{other}` items")),
        }
    }

    fn parse_named_fields(stream: TokenStream) -> Result<Fields, String> {
        let mut cur = Cursor::new(stream);
        let mut names = Vec::new();
        loop {
            cur.skip_attributes();
            if cur.at_end() {
                break;
            }
            cur.skip_visibility();
            let field = cur.expect_ident("field name")?;
            match cur.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                other => {
                    return Err(format!(
                        "serde derive: expected `:` after field `{field}`, found {other:?}"
                    ))
                }
            }
            names.push(field);
            cur.skip_type();
        }
        Ok(Fields::Named(names))
    }

    fn parse_tuple_fields(stream: TokenStream) -> Result<Fields, String> {
        let mut cur = Cursor::new(stream);
        let mut count = 0;
        loop {
            cur.skip_attributes();
            if cur.at_end() {
                break;
            }
            cur.skip_visibility();
            if !cur.skip_type() {
                break;
            }
            count += 1;
        }
        Ok(Fields::Tuple(count))
    }

    fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
        let mut cur = Cursor::new(stream);
        let mut variants = Vec::new();
        loop {
            cur.skip_attributes();
            if cur.at_end() {
                break;
            }
            let name = cur.expect_ident("variant name")?;
            let fields = match cur.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let f = Self::parse_named_fields(g.stream())?;
                    cur.pos += 1;
                    f
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let f = Self::parse_tuple_fields(g.stream())?;
                    cur.pos += 1;
                    f
                }
                _ => Fields::Unit,
            };
            // Eat a trailing comma between variants, if present.
            if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
                cur.pos += 1;
            } else if !cur.at_end() {
                return Err(format!(
                    "serde derive: expected `,` after variant `{name}` (explicit discriminants are unsupported)"
                ));
            }
            variants.push(Variant { name, fields });
        }
        Ok(variants)
    }

    // -- code generation ----------------------------------------------------

    fn serialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => match fields {
                Fields::Unit => "::serde::Content::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                        .collect();
                    format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "({f:?}.to_string(), ::serde::Serialize::to_content(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Content::Map(vec![{}])", items.join(", "))
                }
            },
            Body::Enum(variants) => {
                let arms: Vec<String> = variants
                    .iter()
                    .map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => format!(
                                "{name}::{vname} => ::serde::Content::Str({vname:?}.to_string()),"
                            ),
                            Fields::Tuple(1) => format!(
                                "{name}::{vname}(__f0) => ::serde::Content::Map(vec![({vname:?}.to_string(), ::serde::Serialize::to_content(__f0))]),"
                            ),
                            Fields::Tuple(n) => {
                                let binders: Vec<String> =
                                    (0..*n).map(|i| format!("__f{i}")).collect();
                                let items: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                                    .collect();
                                format!(
                                    "{name}::{vname}({}) => ::serde::Content::Map(vec![({vname:?}.to_string(), ::serde::Content::Seq(vec![{}]))]),",
                                    binders.join(", "),
                                    items.join(", ")
                                )
                            }
                            Fields::Named(fields) => {
                                let binders = fields.join(", ");
                                let items: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "({f:?}.to_string(), ::serde::Serialize::to_content({f}))"
                                        )
                                    })
                                    .collect();
                                format!(
                                    "{name}::{vname} {{ {binders} }} => ::serde::Content::Map(vec![({vname:?}.to_string(), ::serde::Content::Map(vec![{}]))]),",
                                    items.join(", ")
                                )
                            }
                        }
                    })
                    .collect();
                format!("match self {{ {} }}", arms.join(" "))
            }
        };
        format!(
            "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
                 fn to_content(&self) -> ::serde::Content {{ {body} }} \
             }}"
        )
    }

    fn deserialize_impl(&self) -> String {
        let name = &self.name;
        let body = match &self.body {
            Body::Struct(fields) => match fields {
                Fields::Unit => format!(
                    "match __content {{ \
                         ::serde::Content::Null => Ok({name}), \
                         other => Err(::serde::Error::unexpected(\"null\", other)), \
                     }}"
                ),
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_content(__content)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __seq = __content.as_seq().ok_or_else(|| ::serde::Error::unexpected(\"sequence\", __content))?; \
                           if __seq.len() != {n} {{ return Err(::serde::Error::custom(format!(\"expected {n} elements for {name}, got {{}}\", __seq.len()))); }} \
                           Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: match __content.map_get({f:?}) {{ \
                                     Some(__v) => ::serde::Deserialize::from_content(__v)?, \
                                     None => ::serde::missing_field({name:?}, {f:?})?, \
                                 }}"
                            )
                        })
                        .collect();
                    format!(
                        "{{ if __content.as_map().is_none() {{ return Err(::serde::Error::unexpected(\"map\", __content)); }} \
                           Ok({name} {{ {} }}) }}",
                        items.join(", ")
                    )
                }
            },
            Body::Enum(variants) => {
                let unit_arms: Vec<String> = variants
                    .iter()
                    .filter(|v| matches!(v.fields, Fields::Unit))
                    .map(|v| format!("{0:?} => Ok({name}::{0}),", v.name))
                    .collect();
                let tagged_arms: Vec<String> = variants
                    .iter()
                    .filter_map(|v| {
                        let vname = &v.name;
                        match &v.fields {
                            Fields::Unit => None,
                            Fields::Tuple(1) => Some(format!(
                                "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_content(__value)?)),"
                            )),
                            Fields::Tuple(n) => {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_content(&__seq[{i}])?")
                                    })
                                    .collect();
                                Some(format!(
                                    "{vname:?} => {{ let __seq = __value.as_seq().ok_or_else(|| ::serde::Error::unexpected(\"sequence\", __value))?; \
                                       if __seq.len() != {n} {{ return Err(::serde::Error::custom(format!(\"expected {n} elements for {name}::{vname}, got {{}}\", __seq.len()))); }} \
                                       Ok({name}::{vname}({})) }}",
                                    items.join(", ")
                                ))
                            }
                            Fields::Named(fields) => {
                                let items: Vec<String> = fields
                                    .iter()
                                    .map(|f| {
                                        format!(
                                            "{f}: match __value.map_get({f:?}) {{ \
                                                 Some(__v) => ::serde::Deserialize::from_content(__v)?, \
                                                 None => ::serde::missing_field({name:?}, {f:?})?, \
                                             }}"
                                        )
                                    })
                                    .collect();
                                Some(format!(
                                    "{vname:?} => {{ if __value.as_map().is_none() {{ return Err(::serde::Error::unexpected(\"map\", __value)); }} \
                                       Ok({name}::{vname} {{ {} }}) }}",
                                    items.join(", ")
                                ))
                            }
                        }
                    })
                    .collect();
                format!(
                    "match __content {{ \
                         ::serde::Content::Str(__s) => match __s.as_str() {{ \
                             {} \
                             other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other:?}}\"))), \
                         }}, \
                         ::serde::Content::Map(__entries) if __entries.len() == 1 => {{ \
                             let (__tag, __value) = &__entries[0]; \
                             match __tag.as_str() {{ \
                                 {} \
                                 other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other:?}}\"))), \
                             }} \
                         }} \
                         other => Err(::serde::Error::unexpected(\"externally tagged enum\", other)), \
                     }}",
                    unit_arms.join(" "),
                    tagged_arms.join(" ")
                )
            }
        };
        format!(
            "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
                 fn from_content(__content: &::serde::Content) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
             }}"
        )
    }
}
