//! Offline vendored shim of `criterion`.
//!
//! Provides the registration API (`criterion_group!`, `criterion_main!`,
//! [`Criterion`], [`BenchmarkId`], groups, `Bencher::iter`) with a
//! lightweight measurement loop: each benchmark is warmed once, then timed
//! adaptively for a small budget and reported as mean ns/iter on stdout.
//! No statistics or plots — just enough to keep `cargo bench` useful for
//! spotting order-of-magnitude regressions offline.
//!
//! One `--save-baseline`-style extra: when `CRITERION_SNAPSHOT` names a
//! file, every measurement is also appended to it as one JSON object per
//! line (`{"label":…,"ns_per_iter":…,"iters":…}`), so a bench run can be
//! diffed against a checked-in baseline (see `BENCH_0003.json`).
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

use std::fmt;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement driver passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up iteration (also primes caches and lazy statics).
        black_box(routine());
        let budget = self.budget;
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 10_000 {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{name}/{param}") }
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId { label: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// The top-level benchmark registry and runner.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_BUDGET_MS tunes how long each benchmark runs.
        let ms =
            std::env::var("CRITERION_BUDGET_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(25u64);
        Criterion { budget: Duration::from_millis(ms) }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    /// Registers and immediately runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.label, self.budget, |b| f(b));
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's adaptive loop ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim's adaptive loop ignores it.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.budget, |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.criterion.budget, |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn run_one(label: &str, budget: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher { mean_ns: 0.0, iters: 0, budget };
    f(&mut bencher);
    if bencher.iters == 0 {
        println!("bench {label:<50} (closure never called iter)");
        return;
    }
    let mean = bencher.mean_ns;
    let human = if mean >= 1e9 {
        format!("{:.3} s/iter", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms/iter", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} us/iter", mean / 1e3)
    } else {
        format!("{mean:.1} ns/iter")
    };
    println!("bench {label:<50} {human:>16}   ({} iters)", bencher.iters);
    snapshot_append(label, mean, bencher.iters);
}

/// Appends one measurement to the `CRITERION_SNAPSHOT` file, if set.
///
/// The format is JSON-lines so concurrent bench binaries can append
/// without coordination; a snapshot consumer parses line by line.
fn snapshot_append(label: &str, ns_per_iter: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_SNAPSHOT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        eprintln!("criterion: cannot open snapshot file {path}");
        return;
    };
    // Labels never contain quotes or backslashes (bench names are code
    // identifiers plus parameters), so plain interpolation is valid JSON.
    let _ =
        writeln!(f, "{{\"label\":\"{label}\",\"ns_per_iter\":{ns_per_iter:.1},\"iters\":{iters}}}");
}

/// Bundles benchmark functions into one callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { budget: Duration::from_millis(1) };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { budget: Duration::from_millis(1) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n));
        });
        group.finish();
    }
}
