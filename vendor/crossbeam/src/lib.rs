//! Offline vendored shim of `crossbeam`'s channels.
//!
//! Implements the subset used by the workspace: [`channel::unbounded`]
//! MPMC channels with cloneable senders/receivers, `send` / `try_recv` /
//! `recv` / `recv_timeout`, disconnection detection, and a [`select!`]
//! macro supporting two or more blocking `recv(r) -> v` arms (deadline
//! waits go through `recv_timeout`).
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` queue — not
//! lock-free, but correct, and the ring simulations here move a few
//! thousand envelopes per run at most.
//!
//! All waits are real blocking waits: a receiver parks on its channel's
//! condvar, and a multi-channel `select!` registers one [`SelectWaker`]
//! with every watched channel so that any `send` (or the disconnecting
//! drop of the last sender) wakes it. Nothing in this crate spins or
//! sleeps on a poll interval.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    /// A wakeup slot shared between one selecting thread and the channels
    /// it watches (see [`wait_any`]).
    ///
    /// Senders [`notify`](SelectWaker::notify) every registered waker
    /// after enqueuing a message and when the last sender disconnects;
    /// the selecting thread parks on [`wait`](SelectWaker::wait).
    pub struct SelectWaker {
        signal: Mutex<bool>,
        cv: Condvar,
    }

    impl Default for SelectWaker {
        fn default() -> Self {
            Self::new()
        }
    }

    impl SelectWaker {
        /// A fresh, un-signaled waker.
        #[must_use]
        pub fn new() -> Self {
            SelectWaker { signal: Mutex::new(false), cv: Condvar::new() }
        }

        /// Signals the waker, waking its parked thread if any.
        pub fn notify(&self) {
            let mut signaled = self.signal.lock().unwrap_or_else(|e| e.into_inner());
            *signaled = true;
            drop(signaled);
            self.cv.notify_all();
        }

        /// Parks until signaled; consumes the signal.
        pub fn wait(&self) {
            let mut signaled = self.signal.lock().unwrap_or_else(|e| e.into_inner());
            while !*signaled {
                signaled = self.cv.wait(signaled).unwrap_or_else(|e| e.into_inner());
            }
            *signaled = false;
        }
    }

    /// A channel end that a blocking `select!` can watch: readiness plus
    /// waker registration. Object-safe so heterogeneous receivers can sit
    /// in one slice.
    pub trait Selectable {
        /// Registers `waker` to be notified on arrival or disconnection.
        fn watch(&self, waker: &Arc<SelectWaker>);
        /// Removes a previously registered waker.
        fn unwatch(&self, waker: &Arc<SelectWaker>);
        /// Whether `try_recv` would return something other than `Empty`
        /// (a message is queued, or the channel is disconnected).
        fn ready(&self) -> bool;
    }

    /// Per-process rotation for [`wait_any`]'s tie-break among ready
    /// channels.
    static SELECT_ROTATION: AtomicUsize = AtomicUsize::new(0);

    /// Blocks until one of `channels` is ready (message queued or
    /// disconnected) and returns its index.
    ///
    /// Ties are broken by a rotating start offset, mirroring upstream
    /// crossbeam's randomized pick among ready operations: a permanently
    /// ready channel (e.g. one that has disconnected) cannot starve the
    /// others.
    pub fn wait_any(channels: &[&dyn Selectable]) -> usize {
        let waker = Arc::new(SelectWaker::new());
        // Register before the first readiness check: a message that
        // arrives between the check and the park signals the waker, so
        // no wakeup can be missed.
        for c in channels {
            c.watch(&waker);
        }
        let offset = SELECT_ROTATION.fetch_add(1, Ordering::Relaxed);
        let ready = loop {
            let hit = (0..channels.len())
                .map(|k| (offset + k) % channels.len())
                .find(|&i| channels[i].ready());
            if let Some(i) = hit {
                break i;
            }
            waker.wait();
        };
        for c in channels {
            c.unwatch(&waker);
        }
        ready
    }

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        watchers: Mutex<Vec<Arc<SelectWaker>>>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        /// Wakes one blocked receiver and every registered selector.
        fn wake(&self) {
            self.ready.notify_one();
            let watchers = self.watchers.lock().unwrap_or_else(|e| e.into_inner());
            for w in watchers.iter() {
                w.notify();
            }
        }

        /// Wakes all blocked receivers and every registered selector
        /// (disconnection must be observed by everyone).
        fn wake_all(&self) {
            self.ready.notify_all();
            let watchers = self.watchers.lock().unwrap_or_else(|e| e.into_inner());
            for w in watchers.iter() {
                w.notify();
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by a blocking receive on a drained, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel drained and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel drained and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            watchers: Mutex::new(Vec::new()),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock: a blocking `recv` checks the
            // sender count while holding that lock before parking on the
            // condvar, so the count cannot reach zero in the gap between
            // its check and its wait — the wake below therefore lands
            // either before the check (observed directly) or after the
            // park (delivered by the condvar). Without the lock the
            // disconnect could slip into that gap and the wake be lost.
            let queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let last = self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1;
            drop(queue);
            if last {
                // Last sender gone: wake blocked receivers and selectors
                // so they observe the disconnect.
                self.shared.wake_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock so `send` observing a nonzero
            // count while holding the lock cannot race the last drop and
            // enqueue into a channel nobody will read.
            let _queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Checked while holding the queue lock: receiver drops take the
            // same lock, so Ok(()) means the value was observable by a
            // then-live receiver, matching upstream crossbeam's contract.
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.wake();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// A true condvar park: the thread consumes no CPU until a sender
        /// wakes it (or the last sender drops).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Selectable for Receiver<T> {
        fn watch(&self, waker: &Arc<SelectWaker>) {
            let mut watchers = self.shared.watchers.lock().unwrap_or_else(|e| e.into_inner());
            watchers.push(Arc::clone(waker));
        }

        fn unwatch(&self, waker: &Arc<SelectWaker>) {
            let mut watchers = self.shared.watchers.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(i) = watchers.iter().position(|w| Arc::ptr_eq(w, waker)) {
                watchers.swap_remove(i);
            }
        }

        fn ready(&self) -> bool {
            let queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            !queue.is_empty() || self.shared.senders.load(Ordering::SeqCst) == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_observed_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(9));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(7u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            h.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn blocking_recv_wakes_on_send_and_disconnect() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(3u8).unwrap();
                // Dropping tx here disconnects the channel.
            });
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
            h.join().unwrap();
        }

        #[test]
        fn wait_any_returns_ready_index() {
            let (tx1, rx1) = unbounded::<u8>();
            let (tx2, rx2) = unbounded::<u8>();
            tx2.send(5).unwrap();
            assert_eq!(wait_any(&[&rx1, &rx2]), 1);
            assert_eq!(rx2.try_recv(), Ok(5));
            drop(tx1);
            // rx1 is now disconnected — that counts as ready.
            assert_eq!(wait_any(&[&rx1, &rx2]), 0);
        }

        #[test]
        fn wait_any_blocks_until_cross_thread_send() {
            let (tx, rx1) = unbounded::<u8>();
            let (_keep, rx2) = unbounded::<u8>();
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(1).unwrap();
            });
            assert_eq!(wait_any(&[&rx2, &rx1]), 1);
            h.join().unwrap();
        }

        #[test]
        fn watchers_are_deregistered_after_wait() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            assert_eq!(wait_any(&[&rx]), 0);
            let watchers = rx.shared.watchers.lock().unwrap();
            assert!(watchers.is_empty(), "wait_any leaked a waker registration");
        }
    }
}

/// Waits on several channel operations at once.
///
/// Supports the shapes used in this workspace: **two or more**
/// `recv(receiver) -> pattern => handler` arms — a real blocking select
/// that parks until one channel has a message or disconnects (no
/// polling). Callers that need a deadline instead wait on
/// [`channel::Receiver::recv_timeout`] directly.
///
/// When several channels are ready at once, the winner is chosen by a
/// rotating tie-break (mirroring upstream crossbeam's randomized pick),
/// **not** by arm order — a permanently ready arm, such as a
/// disconnected channel, cannot starve the others, but arm order also
/// confers no priority. Callers that need one channel drained before
/// another must `try_recv` it first. Each `recv` arm's pattern binds a
/// `Result<T, RecvError>`: `Ok(message)` normally, `Err(RecvError)` if
/// that channel is drained and disconnected.
///
/// Handlers are expanded *outside* the macro's internal readiness loop,
/// so `continue` / `break` / `return` inside an arm bind to the caller's
/// enclosing scope exactly as with upstream crossbeam.
///
/// Internally the selection is a right-nested either built from
/// `Result`: arm *i* of *N* is `Err^i(Ok(res))` (the last arm drops the
/// final `Ok`), so arms may carry different message types. The `@bind` /
/// `@poll` / `@arms` rules are implementation details — macro hygiene
/// gives each recursion step a fresh receiver binding, and the handler
/// match is emitted outside the readiness loop as documented above.
#[macro_export]
macro_rules! select {
    // Entry: two or more blocking arms.
    (
        recv($r1:expr) -> $v1:pat => $h1:expr
        $(, recv($r:expr) -> $v:pat => $h:expr )+
        $(,)?
    ) => {
        $crate::select!(@bind [] recv($r1) -> $v1 => $h1, $(recv($r) -> $v => $h,)+)
    };
    // @bind: evaluate each receiver expression once, in its own nested
    // block so hygiene mints a fresh `__r` per arm, and accumulate
    // `[receiver, pattern, handler]` triples for the later phases.
    (@bind [$($acc:tt)*] recv($r:expr) -> $v:pat => $h:expr, $($rest:tt)*) => {{
        let __r = &($r);
        $crate::select!(@bind [$($acc)* [__r, $v, $h]] $($rest)*)
    }};
    (@bind [$($acc:tt)*]) => {
        $crate::select!(@run $($acc)*)
    };
    // @run: park until some arm is ready, poll the winner, and dispatch
    // the selection to the handlers outside the loop.
    (@run $([$r:ident, $v:pat, $h:expr])+) => {{
        let __sel = loop {
            let __idx = $crate::channel::wait_any(&[
                $($r as &dyn $crate::channel::Selectable),+
            ]);
            let mut __k = __idx;
            // None = the winner raced another receiver clone and came up
            // Empty: park again.
            if let ::std::option::Option::Some(__s) =
                $crate::select!(@poll __k $([$r, $v, $h])+)
            {
                break __s;
            }
        };
        $crate::select!(@arms __sel $([$r, $v, $h])+)
    }};
    // @poll, last arm: the selection is the bare `Result<T, RecvError>`.
    (@poll $k:ident [$r:ident, $v:pat, $h:expr]) => {{
        let _ = $k;
        match $crate::channel::Receiver::try_recv($r) {
            ::std::result::Result::Ok(__m) => {
                ::std::option::Option::Some(::std::result::Result::Ok(__m))
            }
            ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                ::std::option::Option::Some(::std::result::Result::Err(
                    $crate::channel::RecvError,
                ))
            }
            ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {
                ::std::option::Option::None
            }
        }
    }};
    // @poll, non-last arm: this level contributes `Ok(res)` when it is
    // the winner, otherwise wraps the deeper levels' selection in `Err`.
    (@poll $k:ident [$r:ident, $v:pat, $h:expr] $($rest:tt)+) => {
        if $k == 0 {
            match $crate::channel::Receiver::try_recv($r) {
                ::std::result::Result::Ok(__m) => ::std::option::Option::Some(
                    ::std::result::Result::Ok(::std::result::Result::Ok(__m)),
                ),
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    ::std::option::Option::Some(::std::result::Result::Ok(
                        ::std::result::Result::Err($crate::channel::RecvError),
                    ))
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {
                    ::std::option::Option::None
                }
            }
        } else {
            $k -= 1;
            ::std::option::Option::map(
                $crate::select!(@poll $k $($rest)+),
                ::std::result::Result::Err,
            )
        }
    };
    // @arms: unpack the nested either, one `match` per level, so each
    // handler expands in the caller's control-flow scope.
    (@arms $sel:ident [$r:ident, $v:pat, $h:expr]) => {
        match $sel {
            $v => $h,
        }
    };
    (@arms $sel:ident [$r:ident, $v:pat, $h:expr] $($rest:tt)+) => {
        match $sel {
            ::std::result::Result::Ok($v) => $h,
            ::std::result::Result::Err(__rest) => $crate::select!(@arms __rest $($rest)+),
        }
    };
}
