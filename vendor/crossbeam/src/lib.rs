//! Offline vendored shim of `crossbeam`'s channels.
//!
//! Implements the subset used by the workspace: [`channel::unbounded`]
//! MPMC channels with cloneable senders/receivers, `send` / `try_recv` /
//! `recv_timeout`, disconnection detection, and a [`select!`] macro
//! supporting `recv(r) -> v` arms plus a `default(timeout)` arm.
//!
//! The implementation is a `Mutex<VecDeque>` + `Condvar` queue — not
//! lock-free, but correct, and the ring simulations here move a few
//! thousand envelopes per run at most.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    pub use crate::select;

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by a blocking receive on a drained, disconnected channel.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel drained and every sender dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel drained and every sender dropped.
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // Decrement under the queue lock so `send` observing a nonzero
            // count while holding the lock cannot race the last drop and
            // enqueue into a channel nobody will read.
            let _queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Checked while holding the queue lock: receiver drops take the
            // same lock, so Ok(()) means the value was observable by a
            // then-live receiver, matching upstream crossbeam's contract.
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
                if res.timed_out() && queue.is_empty() {
                    if self.shared.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Blocks until a message arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            loop {
                match self.recv_timeout(Duration::from_millis(50)) {
                    Ok(v) => return Ok(v),
                    Err(RecvTimeoutError::Disconnected) => return Err(RecvError),
                    Err(RecvTimeoutError::Timeout) => continue,
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_observed_after_drain() {
            let (tx, rx) = unbounded();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(9));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(7u32).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(7));
            h.join().unwrap();
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u8>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        }
    }
}

/// Waits on several channel operations at once.
///
/// Supports the shape used in this workspace: any number of
/// `recv(receiver) -> pattern => handler` arms followed by one
/// `default(timeout) => handler` arm. Receivers are polled in order
/// (head-of-line fairness is approximated by the short poll interval);
/// if nothing arrives before the timeout, the default arm runs.
///
/// Each `recv` arm's pattern binds a `Result<T, RecvError>`:
/// `Ok(message)` normally, `Err(RecvError)` if that channel is drained
/// and disconnected.
/// Handlers are expanded *outside* the macro's internal polling loop, so
/// `continue` / `break` / `return` inside an arm bind to the caller's
/// enclosing scope exactly as with upstream crossbeam.
#[macro_export]
macro_rules! select {
    (
        recv($r1:expr) -> $v1:pat => $h1:expr,
        recv($r2:expr) -> $v2:pat => $h2:expr,
        default($t:expr) => $hd:expr $(,)?
    ) => {{
        let __timeout: ::std::time::Duration = $t;
        let __deadline = ::std::time::Instant::now() + __timeout;
        let mut __res1 = ::std::option::Option::None;
        let mut __res2 = ::std::option::Option::None;
        loop {
            match ($r1).try_recv() {
                ::std::result::Result::Ok(__msg) => {
                    __res1 = ::std::option::Option::Some(::std::result::Result::Ok(__msg));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __res1 = ::std::option::Option::Some(::std::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            match ($r2).try_recv() {
                ::std::result::Result::Ok(__msg) => {
                    __res2 = ::std::option::Option::Some(::std::result::Result::Ok(__msg));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __res2 = ::std::option::Option::Some(::std::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            if ::std::time::Instant::now() >= __deadline {
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
        if let ::std::option::Option::Some(__r) = __res1 {
            let $v1 = __r;
            $h1
        } else if let ::std::option::Option::Some(__r) = __res2 {
            let $v2 = __r;
            $h2
        } else {
            $hd
        }
    }};
    (
        recv($r1:expr) -> $v1:pat => $h1:expr,
        default($t:expr) => $hd:expr $(,)?
    ) => {{
        let __timeout: ::std::time::Duration = $t;
        let __deadline = ::std::time::Instant::now() + __timeout;
        let mut __res1 = ::std::option::Option::None;
        loop {
            match ($r1).try_recv() {
                ::std::result::Result::Ok(__msg) => {
                    __res1 = ::std::option::Option::Some(::std::result::Result::Ok(__msg));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Disconnected) => {
                    __res1 = ::std::option::Option::Some(::std::result::Result::Err(
                        $crate::channel::RecvError,
                    ));
                    break;
                }
                ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
            }
            if ::std::time::Instant::now() >= __deadline {
                break;
            }
            ::std::thread::sleep(::std::time::Duration::from_micros(500));
        }
        if let ::std::option::Option::Some(__r) = __res1 {
            let $v1 = __r;
            $h1
        } else {
            $hd
        }
    }};
}
