//! Property tests for the shim's blocking paths: `recv`, `wait_any`, and
//! the blocking `select!` forms. These are the guarantees the simulator's
//! threaded backend and the sweep thread pool lean on:
//!
//! * no message is lost or duplicated under concurrent senders;
//! * dropping the last sender wakes every blocked receiver and selector;
//! * a blocking select returns the union of both channels' traffic.

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvError, SelectWaker, Selectable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concurrent senders, one blocking receiver: every message arrives
    /// exactly once, and per-sender order is preserved.
    #[test]
    fn no_loss_under_concurrent_senders(
        senders in 1usize..5,
        per_sender in 1usize..40,
    ) {
        let (tx, rx) = unbounded::<(usize, usize)>();
        let mut handles = Vec::new();
        for s in 0..senders {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_sender {
                    tx.send((s, i)).unwrap();
                }
            }));
        }
        drop(tx);

        let mut seen = HashSet::new();
        let mut last_per_sender = vec![None::<usize>; senders];
        // Ends via RecvError once the queue drains and all senders drop.
        while let Ok((s, i)) = rx.recv() {
            prop_assert!(seen.insert((s, i)), "duplicate message {s}/{i}");
            // FIFO per sender: indices from one sender ascend.
            if let Some(prev) = last_per_sender[s] {
                prop_assert!(i > prev, "sender {s} reordered: {i} after {prev}");
            }
            last_per_sender[s] = Some(i);
        }
        prop_assert_eq!(seen.len(), senders * per_sender);
        for h in handles {
            h.join().unwrap();
        }
    }

    /// A receiver parked in blocking `recv` is woken by the drop of the
    /// last sender, observing the disconnect rather than hanging.
    #[test]
    fn sender_drop_wakes_blocked_receiver(delay_ms in 0u64..25) {
        let (tx, rx) = unbounded::<u8>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(delay_ms));
            drop(tx);
        });
        let start = Instant::now();
        prop_assert_eq!(rx.recv(), Err(RecvError));
        // Must wake promptly after the drop, not via some poll interval.
        prop_assert!(
            start.elapsed() < Duration::from_secs(5),
            "blocked receiver failed to wake on disconnect"
        );
        h.join().unwrap();
    }

    /// A selector parked in `wait_any` across two channels is woken by a
    /// send on either one, and the reported index drains that message.
    #[test]
    fn wait_any_sees_either_channel(
        use_second in any::<bool>(),
        delay_ms in 0u64..20,
        payload in any::<u64>(),
    ) {
        let (tx1, rx1) = unbounded::<u64>();
        let (tx2, rx2) = unbounded::<u64>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(delay_ms));
            if use_second {
                tx2.send(payload).unwrap();
            } else {
                tx1.send(payload).unwrap();
            }
            // Hold both ends open until after the send.
            (tx1, tx2)
        });
        let idx = crossbeam::channel::wait_any(&[&rx1, &rx2]);
        prop_assert_eq!(idx, usize::from(use_second));
        let got = if use_second { rx2.try_recv() } else { rx1.try_recv() };
        prop_assert_eq!(got, Ok(payload));
        drop(h.join().unwrap());
    }

    /// The blocking two-arm `select!` collects the full traffic of both
    /// channels — no message lost regardless of interleaving — and then
    /// reports disconnection on both arms.
    #[test]
    fn blocking_select_drains_both_channels(
        left in 1usize..30,
        right in 1usize..30,
    ) {
        let (tx1, rx1) = unbounded::<usize>();
        let (tx2, rx2) = unbounded::<usize>();
        let h1 = thread::spawn(move || {
            for i in 0..left {
                tx1.send(i).unwrap();
            }
        });
        let h2 = thread::spawn(move || {
            for i in 0..right {
                tx2.send(i).unwrap();
            }
        });

        let mut got_left = 0usize;
        let mut got_right = 0usize;
        let mut left_open = true;
        let mut right_open = true;
        while left_open || right_open {
            crossbeam::channel::select! {
                recv(rx1) -> m => match m {
                    Ok(_) => got_left += 1,
                    Err(RecvError) => left_open = false,
                },
                recv(rx2) -> m => match m {
                    Ok(_) => got_right += 1,
                    Err(RecvError) => right_open = false,
                },
            }
        }
        prop_assert_eq!(got_left, left);
        prop_assert_eq!(got_right, right);
        h1.join().unwrap();
        h2.join().unwrap();
    }

    /// `wait_any` reports a ready channel immediately, whether the
    /// message was queued before the wait or arrives during it.
    #[test]
    fn wait_any_sees_ready_channel(queued_first in any::<bool>()) {
        let (tx, rx) = unbounded::<u8>();
        if queued_first {
            tx.send(1).unwrap();
        } else {
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(5));
                tx.send(1).unwrap();
            });
        }
        prop_assert_eq!(crossbeam::channel::wait_any(&[&rx]), 0);
        prop_assert_eq!(rx.try_recv(), Ok(1));
    }
}

/// A waker notified before the park must not lose the signal (the classic
/// check-then-park race).
#[test]
fn waker_signal_is_sticky() {
    let waker = Arc::new(SelectWaker::new());
    waker.notify();
    let start = Instant::now();
    waker.wait(); // must return immediately: signal was latched
    assert!(start.elapsed() < Duration::from_secs(1));
}

/// Registration bookkeeping: watch/unwatch stay balanced across a
/// completed wait, so a later disconnect meets no stale wakers.
#[test]
fn completed_wait_deregisters_watchers() {
    let (tx, rx) = unbounded::<u8>();
    tx.send(1).unwrap();
    assert_eq!(crossbeam::channel::wait_any(&[&rx]), 0);
    // A send-side disconnect must not try to notify stale wakers
    // (would panic on poisoned state if registrations leaked badly); the
    // observable contract is simply that nothing hangs or panics.
    drop(tx);
    assert!(rx.ready());
}

/// Four-arm blocking select (the first N > 3 shape): each message routes
/// to the right arm, with heterogeneous payload types across arms.
#[test]
fn four_arm_select_routes_correctly() {
    let (tx1, rx1) = unbounded::<u8>();
    let (tx2, rx2) = unbounded::<u16>();
    let (tx3, rx3) = unbounded::<u32>();
    let (tx4, rx4) = unbounded::<u64>();
    let (k1, k2, k3, k4) = (tx1.clone(), tx2.clone(), tx3.clone(), tx4.clone());
    let h = thread::spawn(move || {
        tx4.send(40).unwrap();
        thread::sleep(Duration::from_millis(5));
        tx3.send(30).unwrap();
        thread::sleep(Duration::from_millis(5));
        tx2.send(20).unwrap();
        thread::sleep(Duration::from_millis(5));
        tx1.send(10).unwrap();
    });
    let mut got = Vec::new();
    for _ in 0..4 {
        crossbeam::channel::select! {
            recv(rx1) -> m => got.push(("a", u64::from(m.unwrap()))),
            recv(rx2) -> m => got.push(("b", u64::from(m.unwrap()))),
            recv(rx3) -> m => got.push(("c", u64::from(m.unwrap()))),
            recv(rx4) -> m => got.push(("d", m.unwrap())),
        }
    }
    h.join().unwrap();
    drop((k1, k2, k3, k4));
    got.sort_unstable();
    assert_eq!(got, vec![("a", 10), ("b", 20), ("c", 30), ("d", 40)]);
}

/// A parked four-arm select is woken by a send on any arm — including the
/// last (deepest-nested) one — not just the first few.
#[test]
fn four_arm_select_wakes_on_last_arm() {
    let (_k1, rx1) = unbounded::<u8>();
    let (_k2, rx2) = unbounded::<u8>();
    let (_k3, rx3) = unbounded::<u8>();
    let (tx4, rx4) = unbounded::<u8>();
    let h = thread::spawn(move || {
        thread::sleep(Duration::from_millis(10));
        tx4.send(99).unwrap();
        tx4 // hold open until after the select returns
    });
    let start = Instant::now();
    let got = crossbeam::channel::select! {
        recv(rx1) -> m => ("a", m),
        recv(rx2) -> m => ("b", m),
        recv(rx3) -> m => ("c", m),
        recv(rx4) -> m => ("d", m),
    };
    assert_eq!(got, ("d", Ok(99)));
    assert!(start.elapsed() < Duration::from_secs(5), "select failed to wake on arm 4");
    drop(h.join().unwrap());
}

/// Disconnects surface as `Err(RecvError)` on the matching arm at every
/// nesting depth of the N-arm expansion: drain a five-arm select until
/// all channels report closed, losing nothing.
#[test]
fn five_arm_select_drains_and_observes_disconnects() {
    let (tx1, rx1) = unbounded::<usize>();
    let (tx2, rx2) = unbounded::<usize>();
    let (tx3, rx3) = unbounded::<usize>();
    let (tx4, rx4) = unbounded::<usize>();
    let (tx5, rx5) = unbounded::<usize>();
    let txs = [tx1, tx2, tx3, tx4, tx5];
    let handles: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(arm, tx)| {
            thread::spawn(move || {
                for i in 0..10 {
                    tx.send(arm * 100 + i).unwrap();
                }
            })
        })
        .collect();
    let mut got = HashSet::new();
    let mut open = [true; 5];
    while open.iter().any(|&o| o) {
        let (arm, msg) = crossbeam::channel::select! {
            recv(rx1) -> m => (0, m),
            recv(rx2) -> m => (1, m),
            recv(rx3) -> m => (2, m),
            recv(rx4) -> m => (3, m),
            recv(rx5) -> m => (4, m),
        };
        match msg {
            Ok(v) => assert!(got.insert(v), "duplicate message {v}"),
            // A drained, disconnected arm stays ready: setting the flag
            // is idempotent, so repeats are harmless.
            Err(RecvError) => open[arm] = false,
        }
    }
    assert_eq!(got.len(), 50, "messages lost across the five arms");
    for h in handles {
        h.join().unwrap();
    }
}

/// Three-arm blocking select routes each message to the right arm.
#[test]
fn three_arm_select_routes_correctly() {
    let (tx1, rx1) = unbounded::<u8>();
    let (tx2, rx2) = unbounded::<u8>();
    let (tx3, rx3) = unbounded::<u8>();
    // Keep clones alive locally so no channel disconnects mid-select
    // (a drained, disconnected channel is legitimately "ready" with Err).
    let (k1, k2, k3) = (tx1.clone(), tx2.clone(), tx3.clone());
    let h = thread::spawn(move || {
        tx3.send(30).unwrap();
        thread::sleep(Duration::from_millis(5));
        tx2.send(20).unwrap();
        thread::sleep(Duration::from_millis(5));
        tx1.send(10).unwrap();
    });
    let mut got = Vec::new();
    for _ in 0..3 {
        crossbeam::channel::select! {
            recv(rx1) -> m => got.push(("a", m.unwrap())),
            recv(rx2) -> m => got.push(("b", m.unwrap())),
            recv(rx3) -> m => got.push(("c", m.unwrap())),
        }
    }
    h.join().unwrap();
    drop((k1, k2, k3));
    got.sort_unstable();
    assert_eq!(got, vec![("a", 10), ("b", 20), ("c", 30)]);
}
