//! Offline vendored shim of `serde_json`.
//!
//! Renders the vendored `serde` crate's [`Content`] data model to JSON
//! text and parses JSON text back. [`Value`] *is* `Content`, so
//! [`to_value`] is a direct conversion. Covers the API surface this
//! workspace uses: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`to_value`].
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// A parsed JSON document (alias for the serde shim's data model).
pub type Value = Content;

/// JSON serialization/parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Converts any serializable value into a JSON [`Value`].
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0)?;
    Ok(out)
}

/// Serializes to human-readable JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", parser.pos)));
    }
    Ok(T::from_content(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(
    out: &mut String,
    content: &Content,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("JSON cannot represent NaN or infinity"));
            }
            // Rust's shortest-roundtrip float formatting; force a fractional
            // part so the value re-parses as a float, matching serde_json.
            let text = v.to_string();
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1)?;
            }
            push_newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_newline_indent(out, indent, depth + 1);
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, value, indent, depth + 1)?;
            }
            push_newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn push_newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?} at offset {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at offset {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at offset {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            let v: f64 =
                text.parse().map_err(|_| Error::new(format!("invalid number {text:?}")))?;
            Ok(Content::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let mag: i64 = format!("-{stripped}")
                .parse()
                .map_err(|_| Error::new(format!("number {text:?} out of range")))?;
            Ok(Content::I64(mag))
        } else {
            let v: u64 =
                text.parse().map_err(|_| Error::new(format!("number {text:?} out of range")))?;
            Ok(Content::U64(v))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for json in ["null", "true", "false", "0", "42", "-17", "3.5", "\"hi\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn structures_roundtrip() {
        let json = r#"{"a":[1,2,3],"b":{"c":"x"},"d":null}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_output_reparses() {
        let v: Value = from_str(r#"{"rows":[["a","b"],["c"]],"n":3}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Content::Str("line\nquote\"backslash\\tab\tunicode\u{1F600}".into());
        let text = to_string(&original).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn floats_reparse_exactly() {
        for f in [0.1, 1e300, -2.5, 123456.789] {
            let text = to_string(&Content::F64(f)).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, Content::F64(f));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
