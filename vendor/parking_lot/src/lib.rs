//! Offline vendored shim of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly instead of a `Result`. A poisoned
//! std lock (a panic while held) is recovered transparently, matching
//! `parking_lot`'s behavior of not propagating poisoning.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

use std::sync;

pub use sync::MutexGuard;

/// A mutual-exclusion lock with `parking_lot`'s panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }
}
