//! Offline vendored shim of `serde`.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal serialization framework under the `serde` name. Instead of
//! upstream's visitor architecture it uses one dynamic data model,
//! [`Content`], shaped like JSON: serialization converts a value *to* a
//! `Content` tree, deserialization reconstructs a value *from* one.
//! `serde_json` (also vendored) renders `Content` to and from JSON text.
//!
//! The `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//! vendored `serde_derive`) generate these conversions for structs and
//! enums using upstream serde's externally-tagged encoding, so the JSON
//! this produces matches what real serde would emit for the same types.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// The dynamic data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number (always finite).
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Returns the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if this is a non-negative integer
    /// (mirrors `serde_json::Value::as_u64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Content::U64(v) => Some(*v),
            Content::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Looks up `key` if this is a map.
    pub fn map_get(&self, key: &str) -> Option<&Content> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short human label for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Serialization or deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }

    /// The standard "missing field" error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// The standard "wrong shape" error.
    pub fn unexpected(expected: &str, got: &Content) -> Self {
        Error::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to the [`Content`] data model.
pub trait Serialize {
    /// Converts `self` to a content tree.
    fn to_content(&self) -> Content;
}

/// Types reconstructible from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds a value from a content tree.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Deserializes a possibly-absent struct field: `Option` fields default to
/// `None`, everything else reports a missing-field error.
pub fn missing_field<T: Deserialize>(ty: &str, field: &str) -> Result<T, Error> {
    T::from_content(&Content::Null).map_err(|_| Error::missing_field(ty, field))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(Error::unexpected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(Error::unexpected("unsigned integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let v: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| Error::custom(format!("integer {v} out of i64 range")))?,
                    other => return Err(Error::unexpected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| {
                    Error::custom(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        match u64::try_from(*self) {
            Ok(v) => Content::U64(v),
            // JSON numbers top out at u64 here; large u128s travel as text.
            Err(_) => Content::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::U64(v) => Ok(u128::from(*v)),
            Content::I64(v) if *v >= 0 => Ok(*v as u128),
            Content::Str(s) => {
                s.parse().map_err(|_| Error::custom(format!("invalid u128 text {s:?}")))
            }
            other => Err(Error::unexpected("u128", other)),
        }
    }
}

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(Error::unexpected("number", other)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let s = content
            .as_str()
            .ok_or_else(|| Error::unexpected("single-character string", content))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected one character, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_str().map(str::to_owned).ok_or_else(|| Error::unexpected("string", content))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(()),
            other => Err(Error::unexpected("null", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers and smart pointers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::unexpected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_seq()
            .ok_or_else(|| Error::unexpected("sequence", content))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let seq = content
                    .as_seq()
                    .ok_or_else(|| Error::unexpected("tuple sequence", content))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::from_content(&seq[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn map_to_content<'a, K, V, I>(entries: I) -> Content
where
    K: fmt::Display + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    Content::Map(entries.map(|(k, v)| (k.to_string(), v.to_content())).collect())
}

impl<K: fmt::Display, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        map_to_content(self.iter())
    }
}

impl<K: fmt::Display, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Deterministic output: sort by rendered key.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_string(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map()
            .ok_or_else(|| Error::unexpected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_map()
            .ok_or_else(|| Error::unexpected("map", content))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(String::from_content(&"hi".to_string().to_content()).unwrap(), "hi");
        assert_eq!(char::from_content(&'x'.to_content()).unwrap(), 'x');
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u8> = None;
        assert_eq!(none.to_content(), Content::Null);
        assert_eq!(Option::<u8>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_content(&Content::U64(7)).unwrap(), Some(7));
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<String>> = vec![vec!["a".into()], vec!["b".into(), "c".into()]];
        let c = v.to_content();
        assert_eq!(Vec::<Vec<String>>::from_content(&c).unwrap(), v);
    }

    #[test]
    fn out_of_range_integer_rejected() {
        assert!(u8::from_content(&Content::U64(300)).is_err());
    }

    #[test]
    fn vecdeque_roundtrips_in_order() {
        let mut q: VecDeque<u32> = VecDeque::new();
        // Push from both ends so the deque's internal layout is not a
        // plain contiguous run; serialization must still be front-to-back.
        q.push_back(2);
        q.push_back(3);
        q.push_front(1);
        let c = q.to_content();
        assert_eq!(c, Content::Seq(vec![Content::U64(1), Content::U64(2), Content::U64(3)]));
        assert_eq!(VecDeque::<u32>::from_content(&c).unwrap(), q);
    }
}
