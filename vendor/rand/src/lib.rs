//! Offline vendored shim of the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`Rng`] (with `gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! high-quality, deterministic, and stable across platforms. Equal seeds
//! give equal streams, which is all the workspace's reproducibility tests
//! require; no compatibility with upstream `StdRng` streams is promised.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses — no speculative features. New code that needs more extends the
//! shim (and its tests) rather than working around it; surface nothing
//! references gets deleted. `detlint`'s `vendor-surface` rule enforces
//! both this header and the no-dead-exports invariant.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (uniform_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, u128, usize);

/// Uniform value in `[0, bound)` by rejection sampling (no modulo bias).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= 1 << 64 {
        let bound = bound as u64;
        if bound == 0 {
            // bound was exactly 2^64: any u64 is uniform.
            return u128::from(rng.next_u64());
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = rng.next_u64();
            if v < zone {
                return u128::from(v % bound);
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX % bound);
        loop {
            let v = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Convenience extension over [`RngCore`]: typed draws.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws uniformly from `range`. Panics on an empty range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Seed material for full-entropy construction.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// The generator's current internal state, for checkpointing.
        /// Feed it back through [`StdRng::from_state`] to continue the
        /// stream exactly where it left off.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] export. The
        /// all-zero state (a xoshiro fixed point, unreachable from any
        /// seeded generator) is nudged exactly like `from_seed` does.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s: nudge_zero(s) }
        }
    }

    /// All-zero state is a fixed point for xoshiro; nudge it.
    fn nudge_zero(s: [u64; 4]) -> [u64; 4] {
        if s == [0, 0, 0, 0] {
            [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ]
        } else {
            s
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            StdRng { s: nudge_zero(s) }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::Rng;

        #[test]
        fn equal_seeds_equal_streams() {
            let mut a = StdRng::seed_from_u64(7);
            let mut b = StdRng::seed_from_u64(7);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }

        #[test]
        fn different_seeds_differ() {
            let mut a = StdRng::seed_from_u64(1);
            let mut b = StdRng::seed_from_u64(2);
            let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
            let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
            assert_ne!(va, vb);
        }

        #[test]
        fn gen_range_respects_bounds() {
            let mut rng = StdRng::seed_from_u64(3);
            for _ in 0..1000 {
                let v = rng.gen_range(10usize..20);
                assert!((10..20).contains(&v));
                let w = rng.gen_range(0u32..=5);
                assert!(w <= 5);
            }
        }

        #[test]
        fn full_u64_range_does_not_overflow() {
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..100 {
                let _ = rng.gen_range(1u64..u64::MAX);
            }
        }

        #[test]
        fn state_export_resumes_the_stream() {
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..17 {
                rng.next_u64();
            }
            let saved = rng.state();
            let tail: Vec<u64> = (0..32).map(|_| rng.next_u64()).collect();
            let mut resumed = StdRng::from_state(saved);
            let replay: Vec<u64> = (0..32).map(|_| resumed.next_u64()).collect();
            assert_eq!(tail, replay);
        }

        #[test]
        fn from_state_nudges_the_zero_fixed_point() {
            let mut rng = StdRng::from_state([0, 0, 0, 0]);
            // A fixed-point generator would emit zeros forever.
            assert!((0..8).any(|_| rng.next_u64() != 0));
            // And the nudge matches from_seed's, so both constructions of
            // the degenerate state produce the same stream.
            let mut seeded = StdRng::from_seed([0u8; 32]);
            let mut nudged = StdRng::from_state([0, 0, 0, 0]);
            for _ in 0..8 {
                assert_eq!(seeded.next_u64(), nudged.next_u64());
            }
        }
    }
}
