//! Cross-crate integration: regex front-end → language corpus → protocols
//! → simulator → analysis, exercised together the way a downstream user
//! would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringleader::prelude::*;
use std::sync::Arc;

/// Every recognizer (specialized and baseline) agrees with ground truth
/// and with each other on the same rings.
#[test]
fn recognizers_agree_across_the_stack() {
    let mut rng = StdRng::seed_from_u64(2024);
    let sigma = Alphabet::from_chars("ab").unwrap();
    for pattern in ["(ab)*", "a*b*", "(a|b)*abb", "b(a|b)*a|b"] {
        let lang = DfaLanguage::from_regex(pattern, &sigma).unwrap();
        let one_pass = DfaOnePass::new(&lang);
        let bidir = BidirMeetInMiddle::new(&lang);
        let collect = CollectAll::new(Arc::new(lang.clone()));
        for n in [1usize, 2, 3, 8, 17, 40] {
            for want in [true, false] {
                let word = if want {
                    lang.positive_example(n, &mut rng)
                } else {
                    lang.negative_example(n, &mut rng)
                };
                let Some(word) = word else { continue };
                let runner = RingRunner::new();
                let d1 = runner.run(&one_pass, &word).unwrap().accepted();
                let d2 = runner.run(&bidir, &word).unwrap().accepted();
                let d3 = runner.run(&collect, &word).unwrap().accepted();
                assert_eq!(d1, want, "{pattern} one-pass n={n}");
                assert_eq!(d2, want, "{pattern} bidir n={n}");
                assert_eq!(d3, want, "{pattern} collect n={n}");
            }
        }
    }
}

/// The paper's cost ordering shows up on real rings: O(n) one-pass below
/// Θ(n log n) counting below Θ(n²) collection, with the right gaps.
#[test]
fn cost_tiers_are_ordered_at_scale() {
    let n = 768usize;
    let sigma = Alphabet::from_chars("ab").unwrap();
    let regular = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let word = regular.positive_example(n, &mut rng).unwrap();

    let linear_bits =
        RingRunner::new().run(&DfaOnePass::new(&regular), &word).unwrap().stats.total_bits;

    let unary = Alphabet::from_chars("a").unwrap();
    let unary_word = Word::from_str(&"a".repeat(n), &unary).unwrap();
    let nlogn_bits =
        RingRunner::new().run(&CountRingSize::probe(), &unary_word).unwrap().stats.total_bits;

    let quadratic_bits = RingRunner::new()
        .run(&CollectAll::new(Arc::new(regular.clone())), &word)
        .unwrap()
        .stats
        .total_bits;

    assert!(linear_bits < nlogn_bits && nlogn_bits < quadratic_bits);
    // The gaps are material, not constant-factor noise.
    assert!(nlogn_bits > 3 * linear_bits, "{nlogn_bits} vs {linear_bits}");
    assert!(quadratic_bits > 20 * nlogn_bits, "{quadratic_bits} vs {nlogn_bits}");
}

/// The analysis pipeline classifies real measurements into the right
/// growth models.
#[test]
fn fits_classify_real_protocols() {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let regular = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let cfg = SweepConfig::with_sizes(vec![32, 64, 128, 256, 512]);

    let points = sweep_protocol(&DfaOnePass::new(&regular), &regular, &cfg).unwrap();
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    assert_eq!(fit_series(&series).best_model, GrowthModel::Linear);

    let anbncn = AnBnCn::new();
    let cfg = SweepConfig::with_sizes(vec![33, 66, 132, 264, 528, 1056]);
    let points = sweep_protocol(&ThreeCounters::new(), &anbncn, &cfg).unwrap();
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    assert_eq!(fit_series(&series).best_model, GrowthModel::NLogN);

    let wcw = WcW::new();
    let cfg = SweepConfig::with_sizes(vec![129, 257, 513, 1025]);
    let points = sweep_protocol(&WcWPrefixForward::new(), &wcw, &cfg).unwrap();
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    assert_eq!(fit_series(&series).best_model, GrowthModel::Quadratic);
}

/// Known-n mode changes the reachable complexity class (Note 7.4) without
/// changing any decision.
#[test]
fn known_n_preserves_decisions_and_cuts_bits() {
    let lang = LgLanguage::new(GrowthFunction::NSqrtN);
    let proto = LgRecognizer::new(&lang);
    let mut rng = StdRng::seed_from_u64(13);
    for n in [16usize, 64, 144] {
        for want in [true, false] {
            let word = if want {
                lang.positive_example(n, &mut rng)
            } else {
                lang.negative_example(n, &mut rng)
            };
            let Some(word) = word else { continue };
            let plain = RingRunner::new().run(&proto, &word).unwrap();
            let known = {
                let mut r = RingRunner::new();
                r.known_ring_size(true);
                r.run(&proto, &word).unwrap()
            };
            assert_eq!(plain.accepted(), want);
            assert_eq!(known.accepted(), want);
            assert!(known.stats.total_bits < plain.stats.total_bits);
        }
    }
}

/// The threaded backend is interchangeable with the event engine for the
/// full protocol stack, not just toy processes.
#[test]
fn threaded_backend_matches_event_engine() {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut rng = StdRng::seed_from_u64(3);
    for n in [4usize, 32, 128] {
        let word = lang
            .positive_example(n, &mut rng)
            .or_else(|| lang.negative_example(n, &mut rng))
            .unwrap();
        let event = RingRunner::new().run(&proto, &word).unwrap();
        let threaded = ThreadedRunner::new().run(&proto, &word).unwrap();
        assert_eq!(event.accepted(), threaded.decision);
        assert_eq!(event.stats.total_bits, threaded.total_bits);
        assert_eq!(event.stats.message_count, threaded.message_count);
    }
}
