//! Property-based integration tests: random automata and random words
//! through the full stack.

use proptest::prelude::*;
use ringleader::prelude::*;

/// Strategy: a random trimmed DFA over {a, b} with up to 6 states.
fn random_dfa() -> impl Strategy<Value = Dfa> {
    (1usize..=6).prop_flat_map(|states| {
        (
            Just(states),
            proptest::collection::vec(0..states, states * 2),
            proptest::collection::vec(any::<bool>(), states),
            0..states,
        )
            .prop_map(|(states, targets, accepting, start)| {
                let sigma = Alphabet::from_chars("ab").expect("valid alphabet");
                Dfa::from_fn(
                    sigma,
                    states,
                    start,
                    |q| accepting[q],
                    |q, s| targets[q * 2 + s.index()],
                )
                .expect("targets in range")
            })
    })
}

fn random_word(max_len: usize) -> impl Strategy<Value = Word> {
    proptest::collection::vec(0u16..2, 1..max_len)
        .prop_map(|v| Word::from_symbols(v.into_iter().map(Symbol).collect()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1 as a property: for ANY regular language (random DFA) and
    /// ANY word, the ring protocol's decision equals DFA membership, and
    /// the bits equal n·⌈log|Q_min|⌉ exactly.
    #[test]
    fn theorem1_holds_for_random_automata(dfa in random_dfa(), word in random_word(24)) {
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let proto = DfaOnePass::new(&lang);
        let outcome = RingRunner::new().run(&proto, &word).unwrap();
        prop_assert_eq!(outcome.accepted(), dfa.accepts(&word));
        prop_assert_eq!(outcome.stats.total_bits, proto.predicted_bits(word.len()));
    }

    /// Theorems 6/7 as a property: the bidirectional protocol agrees with
    /// the unidirectional one on every word, under a random scheduler.
    #[test]
    fn bidirectional_agrees_with_unidirectional(
        dfa in random_dfa(),
        word in random_word(16),
        seed: u64,
    ) {
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let uni = DfaOnePass::new(&lang);
        let bi = BidirMeetInMiddle::new(&lang);
        let d_uni = RingRunner::new().run(&uni, &word).unwrap().accepted();
        let mut runner = RingRunner::new();
        runner.scheduler(Scheduler::Random { seed });
        let d_bi = runner.run(&bi, &word).unwrap().accepted();
        prop_assert_eq!(d_uni, d_bi);
    }

    /// Theorem 2 as a property: extraction from a random DFA's protocol
    /// yields an equivalent automaton.
    #[test]
    fn theorem2_extraction_is_sound(dfa in random_dfa()) {
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let proto = DfaOnePass::new(&lang);
        match MessageGraphExplorer::new(512).explore(&proto) {
            GraphOutcome::Finite { dfa: extracted, .. } => {
                prop_assert!(extracted.equivalent(lang.dfa()).unwrap());
            }
            GraphOutcome::Exceeded { .. } => {
                prop_assert!(false, "regular message graph diverged");
            }
        }
    }

    /// Theorem 5 as a property: the cut-link adapter preserves the
    /// decision and the ≤4× bound for random regular workloads.
    #[test]
    fn theorem5_adapter_preserves_semantics(dfa in random_dfa(), word in random_word(20)) {
        prop_assume!(word.len() >= 2); // the adapter needs a second path
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let inner = DfaOnePass::new(&lang);
        let adapted = CutLinkAdapter::new(inner.clone());
        let plain = RingRunner::new().run(&inner, &word).unwrap();
        let rerouted = RingRunner::new().run(&adapted, &word).unwrap();
        prop_assert_eq!(plain.decision, rerouted.decision);
        // +8 slack: 0-bit setup messages plus per-message tags dominate
        // only when the inner protocol sends 0-bit messages (|Q|=1).
        prop_assert!(rerouted.stats.total_bits <= 4 * plain.stats.total_bits + 8 + 2 * word.len());
    }

    /// Collect-all is universal: on random DFAs it matches membership
    /// with its exact closed-form cost.
    #[test]
    fn collect_all_is_universal(dfa in random_dfa(), word in random_word(20)) {
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let proto = CollectAll::new(std::sync::Arc::new(lang.clone()));
        let outcome = RingRunner::new().run(&proto, &word).unwrap();
        prop_assert_eq!(outcome.accepted(), dfa.accepts(&word));
        prop_assert_eq!(outcome.stats.total_bits, proto.predicted_bits(word.len()));
    }

    /// Schedulers never change a unidirectional token protocol's
    /// measurement (the E12 property, randomized).
    #[test]
    fn unidirectional_protocols_are_schedule_invariant(
        dfa in random_dfa(),
        word in random_word(16),
        seed: u64,
    ) {
        let lang = DfaLanguage::from_dfa("random", &dfa);
        let proto = DfaOnePass::new(&lang);
        let fifo = RingRunner::new().run(&proto, &word).unwrap();
        let mut runner = RingRunner::new();
        runner.scheduler(Scheduler::Random { seed });
        let random = runner.run(&proto, &word).unwrap();
        prop_assert_eq!(fifo.decision, random.decision);
        prop_assert_eq!(fifo.stats.total_bits, random.stats.total_bits);
    }
}
