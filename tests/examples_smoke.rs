//! Smoke coverage for the `examples/` directory: every example must build
//! and run to completion. Examples are the documentation most users
//! actually execute, so they are part of tier-1 verification, not an
//! afterthought.

use std::process::Command;

const EXAMPLES: [&str; 6] = [
    "quickstart",
    "known_ring_size",
    "pass_tradeoff",
    "complexity_spectrum",
    "cut_link_surgery",
    "theorem2_extraction",
];

fn cargo() -> Command {
    // The cargo that spawned this test run; keeps toolchains consistent.
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd.arg("--offline");
    cmd
}

#[test]
fn all_examples_build_and_run() {
    // One `cargo build --examples` up front so failures name the example
    // that broke the build rather than timing out one by one.
    let build =
        cargo().args(["build", "--examples"]).output().expect("cargo build --examples spawns");
    assert!(
        build.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    for example in EXAMPLES {
        let run = cargo()
            .args(["run", "--quiet", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("cargo run --example {example} spawns: {e}"));
        assert!(
            run.status.success(),
            "example {example} exited with {:?}:\n{}",
            run.status.code(),
            String::from_utf8_lossy(&run.stderr)
        );
        assert!(
            !run.stdout.is_empty(),
            "example {example} printed nothing; examples must narrate their result"
        );
    }
}
