//! Edge-case sweep: every protocol on the smallest rings.
//!
//! Rings of size 1 (the leader's links loop back to itself) and 2 (each
//! processor is both neighbours of the other) exercise every wrap-around
//! corner in the engine and the protocols. This suite runs all of them
//! against ground truth, exhaustively over all words of length ≤ 3.

use std::sync::Arc;

use ringleader::core::infostate::exhaustive_words;
use ringleader::prelude::*;

/// Exhaustive (protocol, language) agreement on every word of length 1..=3.
fn check_exhaustive(proto: &dyn Protocol, lang: &dyn Language) {
    for len in 1..=3usize {
        for word in exhaustive_words(lang.alphabet(), len) {
            let outcome = RingRunner::new()
                .run(proto, &word)
                .unwrap_or_else(|e| panic!("{} n={len}: {e}", proto.name()));
            assert_eq!(
                outcome.accepted(),
                lang.contains(&word),
                "{} on {:?} (n={len})",
                proto.name(),
                word.render(lang.alphabet()),
            );
        }
    }
}

#[test]
fn one_pass_dfa_smallest_rings() {
    for lang in regular_corpus() {
        check_exhaustive(&DfaOnePass::new(&lang), &lang);
    }
}

#[test]
fn bidirectional_smallest_rings() {
    for lang in regular_corpus() {
        check_exhaustive(&BidirMeetInMiddle::new(&lang), &lang);
    }
}

#[test]
fn collect_all_smallest_rings() {
    let languages: Vec<Arc<dyn Language>> = vec![
        Arc::new(AnBn::new()),
        Arc::new(AnBnCn::new()),
        Arc::new(WcW::new()),
        Arc::new(Dyck::new()),
        Arc::new(EqualAB::new()),
    ];
    for lang in languages {
        check_exhaustive(&CollectAll::new(Arc::clone(&lang)), lang.as_ref());
    }
}

#[test]
fn counter_protocols_smallest_rings() {
    check_exhaustive(&ThreeCounters::new(), &AnBnCn::new());
    check_exhaustive(&DyckCounter::new(), &Dyck::new());
    check_exhaustive(&WcWPrefixForward::new(), &WcW::new());
}

#[test]
fn hierarchy_smallest_rings() {
    for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquaredHalf] {
        for lang in [LgLanguage::new(g), LgLanguage::fully_periodic(g)] {
            check_exhaustive(&LgRecognizer::new(&lang), &lang);
        }
    }
}

#[test]
fn parity_family_smallest_rings() {
    for k in 1..=3u32 {
        let lang = TradeoffLanguage::new(k);
        check_exhaustive(&TwoPassParity::new(k), &lang);
        check_exhaustive(&OnePassParity::new(k), &lang);
        check_exhaustive(&StatelessTwoPass::new(k), &lang);
    }
}

#[test]
fn counting_smallest_rings() {
    // Counting is letter-agnostic: test the predicate over n directly.
    for n in 1..=3usize {
        let expected = n;
        let proto = CountRingSize::new(Arc::new(move |got| got == expected));
        let word = Word::from_symbols(vec![Symbol(0); n]);
        assert!(RingRunner::new().run(&proto, &word).unwrap().accepted(), "n={n}");
    }
}

#[test]
fn known_n_smallest_rings() {
    let proto = LengthPredicateKnownN::new(Symbol(0), Arc::new(|n| n != 2));
    let mut runner = RingRunner::new();
    runner.known_ring_size(true);
    for n in 1..=3usize {
        let word = Word::from_symbols(vec![Symbol(0); n]);
        let outcome = runner.run(&proto, &word).unwrap();
        assert_eq!(outcome.accepted(), n != 2, "n={n}");
        assert_eq!(outcome.stats.total_bits, n, "n={n}");
    }
}

#[test]
fn cut_link_adapter_smallest_legal_rings() {
    // n = 1 is rejected by design; n = 2 and 3 must work.
    let sigma = Alphabet::from_chars("012").unwrap();
    let inner = ThreeCounters::new();
    let adapted = CutLinkAdapter::new(inner.clone());
    for len in 2..=3usize {
        for word in exhaustive_words(&sigma, len) {
            let plain = RingRunner::new().run(&inner, &word).unwrap();
            let rerouted = RingRunner::new().run(&adapted, &word).unwrap();
            assert_eq!(plain.decision, rerouted.decision, "n={len} word={:?}", word.render(&sigma));
        }
    }
}

#[test]
fn threaded_backend_runs_bidirectional_protocols() {
    // Real threads, real two-way traffic: decisions must match the event
    // engine on every word (bit counts may differ by interleaving since
    // verdict paths depend on probe timing).
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    for len in 1..=4usize {
        for word in exhaustive_words(&sigma, len) {
            let event = RingRunner::new().run(&proto, &word).unwrap();
            let threaded = ThreadedRunner::new().run(&proto, &word).unwrap();
            assert_eq!(
                event.accepted(),
                threaded.decision,
                "n={len} word={:?}",
                word.render(&sigma)
            );
        }
    }
}
