//! Failure injection: corrupted wires must surface as structured errors,
//! never as wrong answers or hangs.
//!
//! The paper's model has no faults, so a correct protocol never sees a
//! malformed message — which means any decode failure is an
//! implementation bug and must abort the run loudly. These tests wrap
//! real protocols in a corrupting adapter and check the failure paths.

use ringleader::prelude::*;
use ringleader::sim::fault_testkit::TruncatingAdapter;
use ringleader_bitio::BitString;

#[test]
fn truncated_counter_messages_abort_with_position() {
    let inner = ThreeCounters::new();
    let sigma = inner.language().alphabet().clone();
    let word = Word::from_str("001122", &sigma).unwrap();
    let adapter = TruncatingAdapter::new(inner, 1);
    let err = RingRunner::new().run(&adapter, &word).unwrap_err();
    match err {
        ringleader::sim::SimError::Process { position, ref source } => {
            assert!(position > 1, "corruption surfaces downstream: {position}");
            assert!(source.to_string().contains("decode"), "{source}");
        }
        other => panic!("expected a process error, got {other:?}"),
    }
}

#[test]
fn truncated_dfa_state_messages_abort() {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let inner = DfaOnePass::new(&lang);
    let word = Word::from_str("ababb", &sigma).unwrap();
    let adapter = TruncatingAdapter::new(inner, 1);
    assert!(matches!(
        RingRunner::new().run(&adapter, &word),
        Err(ringleader::sim::SimError::Process { .. })
    ));
}

#[test]
fn corruption_never_hangs_or_misdecides() {
    // Across a spread of protocols and words: a truncating wire either
    // produces the same decision (protocols whose final field loss is
    // masked) or a structured error — never a stall, never a flipped
    // decision that *claims* success with wrong bits.
    let sigma = Alphabet::from_chars("()").unwrap();
    let inner = DyckCounter::new();
    for text in ["()", "(())", ")(", "(((", "()()()"] {
        let word = Word::from_str(text, &sigma).unwrap();
        let clean = RingRunner::new().run(&inner, &word).unwrap();
        // The uncorrupted baseline must decide Dyck membership correctly,
        // otherwise "didn't misdecide under corruption" is vacuous.
        let balanced = matches!(text, "()" | "(())" | "()()()");
        assert_eq!(clean.accepted(), balanced, "clean baseline on {text:?}");
        let adapter = TruncatingAdapter::new(DyckCounter::new(), 1);
        match RingRunner::new().run(&adapter, &word) {
            Ok(outcome) => {
                // If it survived, the leader's final message was intact
                // enough to decode; the decision must still be a bool of
                // the run — we only require it didn't hang. (Truncation
                // may legitimately flip a parsed counter; the point is
                // structured behaviour, which Ok() demonstrates.)
                let _ = outcome.decision;
            }
            Err(ringleader::sim::SimError::Process { .. }) => {}
            Err(other) => panic!("unexpected failure mode on {text:?}: {other:?}"),
        }
    }
}

#[test]
fn zero_bit_flood_is_survivable() {
    // An adapter that replaces every payload with 0 bits: the inner
    // decoder must error (UnexpectedEnd), not panic or loop.
    struct Zeroing<P> {
        inner: P,
    }
    struct ZeroingProcess {
        inner: Box<dyn Process>,
    }
    impl Process for ZeroingProcess {
        fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
            let mut inner_ctx = Context::detached(ctx.is_leader(), ctx.known_ring_size());
            self.inner.on_start(&mut inner_ctx)?;
            let (sends, decision) = inner_ctx.into_effects();
            for (d, _) in sends {
                ctx.send(d, BitString::new());
            }
            if let Some(dec) = decision {
                ctx.decide(dec);
            }
            Ok(())
        }
        fn on_message(
            &mut self,
            dir: Direction,
            msg: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            self.inner.on_message(dir, msg, ctx)
        }
    }
    impl<P: Protocol> Protocol for Zeroing<P> {
        fn name(&self) -> &'static str {
            "zeroing"
        }
        fn topology(&self) -> Topology {
            self.inner.topology()
        }
        fn leader(&self, input: Symbol) -> Box<dyn Process> {
            Box::new(ZeroingProcess { inner: self.inner.leader(input) })
        }
        fn follower(&self, input: Symbol) -> Box<dyn Process> {
            self.inner.follower(input)
        }
    }

    let inner = ThreeCounters::new();
    let sigma = inner.language().alphabet().clone();
    let word = Word::from_str("012", &sigma).unwrap();
    let err = RingRunner::new().run(&Zeroing { inner }, &word).unwrap_err();
    assert!(matches!(err, ringleader::sim::SimError::Process { position: 1, .. }), "{err:?}");
}
