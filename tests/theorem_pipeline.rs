//! The theorem constructions as full pipelines across crates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use ringleader::prelude::*;

/// Theorem 2 round trip: language → protocol → message graph → DFA →
/// (prove equal to the original language).
#[test]
fn theorem2_round_trip_on_corpus() {
    for lang in regular_corpus() {
        let proto = DfaOnePass::new(&lang);
        let GraphOutcome::Finite { dfa, distinct_messages } =
            MessageGraphExplorer::new(2000).explore(&proto)
        else {
            panic!("{}: regular protocol graph diverged", lang.name());
        };
        assert!(dfa.equivalent(lang.dfa()).unwrap(), "{}", lang.name());
        // The minimal automaton is recovered exactly by minimizing the
        // extracted graph.
        assert_eq!(dfa.minimized().state_count(), lang.dfa().state_count(), "{}", lang.name());
        // Reachable messages never exceed reachable states.
        assert!(distinct_messages <= lang.dfa().state_count());
    }
}

/// Corollary 1 on the non-regular side: one-pass recognizers of the
/// corpus's non-regular languages all use unbounded message sets.
#[test]
fn corollary1_divergence_for_nonregular_protocols() {
    let explorer = MessageGraphExplorer::new(1500);
    assert!(matches!(explorer.explore(&CountRingSize::probe()), GraphOutcome::Exceeded { .. }));
    assert!(matches!(explorer.explore(&ThreeCounters::new()), GraphOutcome::Exceeded { .. }));
    assert!(matches!(explorer.explore(&WcWPrefixForward::new()), GraphOutcome::Exceeded { .. }));
}

/// Theorem 5 pipeline: wrap a token protocol, reroute around the cut,
/// verify all invariants at once (decision, bits, cut traffic, token
/// discipline) across sizes and schedulers.
#[test]
fn theorem5_transformation_invariants() {
    let sigma = Alphabet::from_chars("012").unwrap();
    let inner = ThreeCounters::new();
    let adapted = CutLinkAdapter::new(inner.clone());
    for n in [6usize, 30, 120] {
        let third = n / 3;
        let text = "0".repeat(third) + &"1".repeat(third) + &"2".repeat(third);
        let word = Word::from_str(&text, &sigma).unwrap();
        for sched in [Scheduler::Fifo, Scheduler::Random { seed: 42 }] {
            let plain = RingRunner::new().run(&inner, &word).unwrap();
            let mut runner = RingRunner::new();
            runner.scheduler(sched).record_trace(true);
            let rerouted = runner.run(&adapted, &word).unwrap();
            assert_eq!(plain.decision, rerouted.decision, "n={n}");
            assert!(rerouted.stats.total_bits <= 4 * plain.stats.total_bits, "n={n}");
            assert_eq!(rerouted.stats.link_bits(n - 1), 0, "n={n}: data on the cut");
            assert!(
                ringleader::sim::validate_token_discipline(rerouted.trace.as_ref().unwrap()),
                "n={n}"
            );
        }
    }
}

/// Theorem 4 pipeline: the info-state census over exhaustive small rings
/// honors the cut-and-splice bound for every counter protocol.
#[test]
fn theorem4_census_bounds() {
    use ringleader::core::analyze_info_states;
    use ringleader::core::infostate::exhaustive_words;

    let tri = Alphabet::from_chars("012").unwrap();
    let mut words = Vec::new();
    for len in 1..=5usize {
        words.extend(exhaustive_words(&tri, len));
    }
    let report = analyze_info_states(&ThreeCounters::new(), &words).unwrap();
    assert!(report.max_multiplicity_on_shortest_witness <= 2, "{report:?}");
    // The census must show far more states than any constant-size message
    // vocabulary could name (the Ω(log n) force behind Theorem 4).
    assert!(report.distinct_states > 150, "{report:?}");
    assert!(report.bits_to_distinguish >= 8, "{report:?}");

    let ab = Alphabet::from_chars("abc").unwrap();
    let mut words = Vec::new();
    for len in 1..=4usize {
        words.extend(exhaustive_words(&ab, len));
    }
    let report = analyze_info_states(&WcWPrefixForward::new(), &words).unwrap();
    assert!(report.max_multiplicity_on_shortest_witness <= 2, "{report:?}");
}

/// The Note 7.5 protocols and the Note 7.3 recognizer compose with the
/// Theorem 5 adapter — constructions stack.
#[test]
fn constructions_compose() {
    let mut rng = StdRng::seed_from_u64(77);

    // Cut-link adapter over the one-pass parity protocol.
    let inner = OnePassParity::new(2);
    let adapted = CutLinkAdapter::new(inner.clone());
    let lang = inner.language().clone();
    for n in [2usize, 9, 33] {
        for want in [true, false] {
            let word = if want {
                lang.positive_example(n, &mut rng)
            } else {
                lang.negative_example(n, &mut rng)
            };
            let Some(word) = word else { continue };
            let a = RingRunner::new().run(&inner, &word).unwrap().accepted();
            let b = RingRunner::new().run(&adapted, &word).unwrap().accepted();
            assert_eq!(a, want);
            assert_eq!(b, want);
        }
    }

    // Cut-link adapter over the L_g recognizer (multi-phase protocol).
    let lg = LgLanguage::new(GrowthFunction::NSqrtN);
    let inner = LgRecognizer::new(&lg);
    let adapted = CutLinkAdapter::new(inner.clone());
    for n in [16usize, 64] {
        let word = lg.positive_example(n, &mut rng).unwrap();
        let a = RingRunner::new().run(&inner, &word).unwrap();
        let b = RingRunner::new().run(&adapted, &word).unwrap();
        assert_eq!(a.decision, b.decision);
        assert!(b.stats.total_bits <= 4 * a.stats.total_bits);
    }
}
