//! # ringleader
//!
//! A faithful, measurable implementation of
//! **Mansour & Zaks, "On the Bit Complexity of Distributed Computations in
//! a Ring with a Leader"** (PODC 1986 / Information & Computation 75,
//! 1987): distributed pattern recognition on an asynchronous ring, with
//! every theorem of the paper turned into runnable protocols, exact
//! bit-accounting, and regenerable experiments.
//!
//! ## The model
//!
//! `n` processors form a ring; each holds one letter of a word `w`; a
//! distinguished **leader** initiates a message-driven algorithm and must
//! accept or reject `w`'s membership in a fixed language. Cost is the
//! total number of message **bits**. The paper's landscape:
//!
//! * regular languages cost `Θ(n)` bits — and *only* they do;
//! * every non-regular language costs `Ω(n log n)`;
//! * the band `n log n … n²` is a dense hierarchy (`L_g` languages)
//!   unrelated to the Chomsky hierarchy;
//! * knowing `n` collapses the barrier; passes trade against bits
//!   exponentially.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`bitio`] | bit strings, readers/writers, Elias codes |
//! | [`automata`] | DFA/NFA/regex toolkit, minimization, sampling |
//! | [`sim`] | the asynchronous ring simulator (event-driven + threaded) |
//! | [`langs`] | the language corpus and workload generators |
//! | [`core`] | the paper's algorithms (Theorems 1–7, Notes 7.1–7.5) |
//! | [`analysis`] | sweeps, growth-model fits, experiment reports |
//!
//! ## Quickstart
//!
//! ```rust
//! use ringleader::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A regular language and its Theorem 1 protocol.
//! let sigma = Alphabet::from_chars("ab")?;
//! let lang = DfaLanguage::from_regex("(ab)*", &sigma)?;
//! let proto = DfaOnePass::new(&lang);
//!
//! // Label a ring of 8 processors and run.
//! let word = Word::from_str("abababab", &sigma)?;
//! let outcome = RingRunner::new().run(&proto, &word)?;
//!
//! assert!(outcome.accepted());
//! assert_eq!(outcome.stats.total_bits, proto.predicted_bits(8)); // n·⌈log|Q|⌉
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ringleader_analysis as analysis;
pub use ringleader_automata as automata;
pub use ringleader_bitio as bitio;
pub use ringleader_core as core;
pub use ringleader_langs as langs;
pub use ringleader_sim as sim;

/// The names almost every user of this workspace needs.
pub mod prelude {
    pub use ringleader_analysis::{
        fit_series, sweep_protocol, sweep_protocol_with, ExperimentResult, FitResult, GrowthModel,
        Parallel, Serial, SweepConfig, SweepExecutor, Verdict,
    };
    pub use ringleader_automata::{Alphabet, Dfa, Regex, Symbol, Word};
    pub use ringleader_bitio::{BitReader, BitString, BitWriter};
    pub use ringleader_core::{
        BidirMeetInMiddle, CollectAll, CountRingSize, CounterEncoding, CutLinkAdapter, DfaOnePass,
        DyckCounter, GraphOutcome, LengthPredicateKnownN, LgRecognizer, MessageGraphExplorer,
        OnePassParity, StatelessTwoPass, ThreeCounters, TwoPassParity, WcWPrefixForward,
    };
    pub use ringleader_langs::{
        regular_corpus, AnBn, AnBnCn, DfaLanguage, Dyck, EqualAB, GrowthFunction, Language,
        LanguageClass, LgLanguage, Palindrome, PowerOfTwoLength, TradeoffLanguage, WcW,
    };
    pub use ringleader_sim::{
        Context, Direction, Outcome, Process, ProcessResult, Protocol, RingRunner, Scheduler,
        ThreadedRunner, Topology,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reaches_every_crate() {
        use crate::prelude::*;
        let sigma = Alphabet::binary();
        assert_eq!(sigma.len(), 2);
        let _ = BitString::new();
        let _ = RingRunner::new();
        let _ = GrowthFunction::NLogN;
        let _ = GrowthModel::Linear;
    }
}
