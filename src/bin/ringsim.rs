//! `ringsim` — run any built-in protocol on a word, from the shell.
//!
//! ```text
//! ringsim dfa '(ab)*' abababab          # Theorem 1 on a regex language
//! ringsim anbncn 001122                 # three counters
//! ringsim dyck '(()())'                 # one counter
//! ringsim wcw abcab                     # quadratic copy check
//! ringsim count aaaaaaaa                # ring-size probe
//! ringsim lg nsqrtn abababab --known-n  # hierarchy tier, n known
//! ringsim tradeoff2 ABBA --passes 1     # Note 7.5 (k=2), one-pass variant
//!
//! options: --trace     print the full send/deliver event log
//!          --known-n   give every processor the ring size (Note 7.4)
//!          --seed S    use the seeded random scheduler instead of FIFO
//! ```
//!
//! Exit code: 0 = accepted, 1 = rejected, 2 = usage or simulation error.

use std::process::ExitCode;

use ringleader::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ringsim <protocol> [pattern] <word> [--trace] [--known-n] [--seed S]\n\
         protocols:\n\
         \u{20}  dfa <regex> <word over the regex's alphabet>\n\
         \u{20}  bidir <regex> <word>          meet-in-the-middle (bidirectional)\n\
         \u{20}  anbncn <word over 012>        three counters\n\
         \u{20}  dyck <word over ()>           one counter\n\
         \u{20}  wcw <word over abc>           prefix-forwarding copy check\n\
         \u{20}  count <word>                  ring-size probe (always accepts)\n\
         \u{20}  lg <nlogn|nsqrtn|nsq2> <word over ab>\n\
         \u{20}  tradeoff<k> <word>            Note 7.5 two-pass (--passes 1 for one-pass)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut trace = false;
    let mut known_n = false;
    let mut seed: Option<u64> = None;
    let mut passes = 2usize;

    // Strip flags.
    let mut positional = Vec::new();
    let mut iter = args.drain(..);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--trace" => trace = true,
            "--known-n" => known_n = true,
            "--seed" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = Some(s),
                None => return usage(),
            },
            "--passes" => match iter.next().and_then(|s| s.parse().ok()) {
                Some(p) => passes = p,
                None => return usage(),
            },
            _ => positional.push(a),
        }
    }
    drop(iter);

    let Some(kind) = positional.first().cloned() else {
        return usage();
    };

    let build = || -> Result<(Box<dyn Protocol>, Word), String> {
        let parse_word = |text: &str, alphabet: &Alphabet| {
            Word::from_str(text, alphabet).map_err(|e| e.to_string())
        };
        match kind.as_str() {
            "dfa" | "bidir" => {
                let [_, pattern, text] = positional.as_slice() else {
                    return Err("dfa/bidir need <regex> <word>".into());
                };
                let sigma = Alphabet::from_chars("ab").map_err(|e| e.to_string())?;
                let lang = DfaLanguage::from_regex(pattern, &sigma).map_err(|e| e.to_string())?;
                let word = parse_word(text, &sigma)?;
                let proto: Box<dyn Protocol> = if kind == "dfa" {
                    Box::new(DfaOnePass::new(&lang))
                } else {
                    Box::new(BidirMeetInMiddle::new(&lang))
                };
                Ok((proto, word))
            }
            "anbncn" => {
                let [_, text] = positional.as_slice() else {
                    return Err("anbncn needs <word over 012>".into());
                };
                let proto = ThreeCounters::new();
                let word = parse_word(text, proto.language().alphabet())?;
                Ok((Box::new(proto), word))
            }
            "dyck" => {
                let [_, text] = positional.as_slice() else {
                    return Err("dyck needs <word over ()>".into());
                };
                let proto = DyckCounter::new();
                let word = parse_word(text, proto.language().alphabet())?;
                Ok((Box::new(proto), word))
            }
            "wcw" => {
                let [_, text] = positional.as_slice() else {
                    return Err("wcw needs <word over abc>".into());
                };
                let proto = WcWPrefixForward::new();
                let word = parse_word(text, proto.language().alphabet())?;
                Ok((Box::new(proto), word))
            }
            "count" => {
                let [_, text] = positional.as_slice() else {
                    return Err("count needs <word>".into());
                };
                let sigma = Alphabet::from_chars("a").map_err(|e| e.to_string())?;
                let word = Word::from_symbols(vec![Symbol(0); text.chars().count()]);
                let _ = sigma;
                Ok((Box::new(CountRingSize::probe()), word))
            }
            "lg" => {
                let [_, tier, text] = positional.as_slice() else {
                    return Err("lg needs <nlogn|nsqrtn|nsq2> <word over ab>".into());
                };
                let growth = match tier.as_str() {
                    "nlogn" => GrowthFunction::NLogN,
                    "nsqrtn" => GrowthFunction::NSqrtN,
                    "nsq2" => GrowthFunction::NSquaredHalf,
                    other => return Err(format!("unknown tier {other:?}")),
                };
                let lang = LgLanguage::new(growth);
                let word = parse_word(text, lang.alphabet())?;
                Ok((Box::new(LgRecognizer::new(&lang)), word))
            }
            other if other.starts_with("tradeoff") => {
                let k: u32 = other["tradeoff".len()..]
                    .parse()
                    .map_err(|_| "tradeoff needs a k suffix, e.g. tradeoff2".to_string())?;
                let [_, text] = positional.as_slice() else {
                    return Err("tradeoff<k> needs <word>".into());
                };
                let proto: Box<dyn Protocol> = match passes {
                    1 => Box::new(OnePassParity::new(k)),
                    2 => Box::new(TwoPassParity::new(k)),
                    other => return Err(format!("--passes must be 1 or 2, got {other}")),
                };
                let lang = TradeoffLanguage::new(k);
                let word = parse_word(text, lang.alphabet())?;
                Ok((proto, word))
            }
            other => Err(format!("unknown protocol {other:?}")),
        }
    };

    let (proto, word) = match build() {
        Ok(pair) => pair,
        Err(msg) => {
            eprintln!("error: {msg}");
            return usage();
        }
    };

    let mut runner = RingRunner::new();
    runner.known_ring_size(known_n).record_trace(trace);
    if let Some(s) = seed {
        runner.scheduler(Scheduler::Random { seed: s });
    }
    let outcome = match runner.run(proto.as_ref(), &word) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("simulation error: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "protocol={} n={} decision={} bits={} messages={} max_message_bits={}",
        proto.name(),
        word.len(),
        if outcome.accepted() { "accept" } else { "reject" },
        outcome.stats.total_bits,
        outcome.stats.message_count,
        outcome.stats.max_message_bits,
    );
    if let Some(t) = &outcome.trace {
        for e in t.events() {
            println!(
                "  {:>4}  {:?}  p{}  {:?}  [{}] {}",
                e.seq,
                e.kind,
                e.position,
                e.direction,
                e.payload.len(),
                e.payload,
            );
        }
    }
    if outcome.accepted() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
