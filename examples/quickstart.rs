//! Quickstart: recognize a regular language on a ring and account for
//! every bit.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the Theorem 1 pipeline end to end: regex → minimal DFA →
//! one-pass state-forwarding protocol → exact bit counts matching the
//! paper's `n·⌈log₂|Q|⌉` formula.

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The language of words ending in "abb" — the dragon-book classic.
    let sigma = Alphabet::from_chars("ab")?;
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma)?;
    println!(
        "language: {}   minimal DFA: {} states => {} bits per message",
        lang.name(),
        lang.dfa().state_count(),
        DfaOnePass::new(&lang).state_bits(),
    );

    let proto = DfaOnePass::new(&lang);
    for text in ["abb", "aabb", "ababab", "babba", "abbabb"] {
        let word = Word::from_str(text, &sigma)?;
        let outcome = RingRunner::new().run(&proto, &word)?;
        println!(
            "  ring {text:>8}  n={n:<2}  decision={dec:<6}  bits={bits:<3} (= n x {per})",
            n = word.len(),
            dec = if outcome.accepted() { "accept" } else { "reject" },
            bits = outcome.stats.total_bits,
            per = proto.state_bits(),
        );
        assert_eq!(outcome.accepted(), lang.contains(&word));
        assert_eq!(outcome.stats.total_bits, proto.predicted_bits(word.len()));
    }

    // The same protocol scales linearly — the paper's Theorem 1.
    println!("\nscaling (worst case over sampled words):");
    let sweep = sweep_protocol(&proto, &lang, &SweepConfig::with_sizes(vec![64, 256, 1024, 4096]))?;
    for point in &sweep {
        println!(
            "  n={n:<5} bits={bits:<6} bits/n={ratio:.2}",
            n = point.n,
            bits = point.bits,
            ratio = point.bits as f64 / point.n as f64
        );
    }
    let series: Vec<(usize, f64)> = sweep.iter().map(|p| (p.n, p.bits as f64)).collect();
    let fit = fit_series(&series);
    println!("  fit: {} with constant {:.2}", fit.best_model, fit.constant);
    Ok(())
}
