//! Theorem 5's surgery, watched live: cut a link, reroute, measure.
//!
//! ```text
//! cargo run --example cut_link_surgery
//! ```
//!
//! The bidirectional lower bound of Theorem 5 rests on a transformation:
//! pick the ring link carrying the fewest bits, and replace every message
//! crossing it by a tagged message travelling the long way around. The
//! paper proves this at most quadruples the bit complexity. This example
//! performs the surgery on three protocols and prints the before/after
//! ledger — including the per-link loads showing the cut link really goes
//! silent.

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12usize;

    println!("ring of n = {n}; cutting the p_n <-> p_1 link\n");

    // Three token protocols of three complexity tiers.
    let sigma = Alphabet::from_chars("ab")?;
    let regular = DfaLanguage::from_regex("(ab)*", &sigma)?;
    let word_regular = Word::from_str(&"ab".repeat(n / 2), &sigma)?;

    let unary = Alphabet::from_chars("a")?;
    let word_unary = Word::from_str(&"a".repeat(n), &unary)?;

    let tri = Alphabet::from_chars("012")?;
    let word_tri =
        Word::from_str(&("0".repeat(n / 3) + &"1".repeat(n / 3) + &"2".repeat(n / 3)), &tri)?;

    run_case("dfa-one-pass  (Θ(n))", &DfaOnePass::new(&regular), &word_regular)?;
    run_case("count-ring    (Θ(n log n))", &CountRingSize::probe(), &word_unary)?;
    run_case("three-counters(Θ(n log n))", &ThreeCounters::new(), &word_tri)?;

    println!("every ratio is within Theorem 5's ≤ 4× bound, and the cut link");
    println!("carries 0 data bits after surgery (only the 0-bit setup marker/ack).");
    Ok(())
}

fn run_case(
    label: &str,
    inner: &(impl Protocol + Clone),
    word: &Word,
) -> Result<(), Box<dyn std::error::Error>> {
    let n = word.len();
    let plain = RingRunner::new().run(inner, word)?;
    let adapted = CutLinkAdapter::new(inner.clone());
    let rerouted = RingRunner::new().run(&adapted, word)?;
    assert_eq!(plain.decision, rerouted.decision);

    println!("== {label} ==");
    println!(
        "  plain:    {:>5} bits   per-link: {:?}",
        plain.stats.total_bits,
        (0..n).map(|i| plain.stats.link_bits(i)).collect::<Vec<_>>(),
    );
    println!(
        "  rerouted: {:>5} bits   per-link: {:?}",
        rerouted.stats.total_bits,
        (0..n).map(|i| rerouted.stats.link_bits(i)).collect::<Vec<_>>(),
    );
    println!(
        "  ratio: {:.2}x   cut-link data bits: {}\n",
        rerouted.stats.total_bits as f64 / plain.stats.total_bits as f64,
        rerouted.stats.link_bits(n - 1),
    );
    Ok(())
}
