//! The bit-complexity spectrum: one ring, four tiers.
//!
//! ```text
//! cargo run --example complexity_spectrum
//! ```
//!
//! Runs one representative language per tier of the paper's landscape —
//! `Θ(n)` regular, `Θ(n log n)` counters, `Θ(g(n))` hierarchy interior,
//! `Θ(n²)` copy language — on rings of growing size, printing the measured
//! bits side by side. The punchline is the paper's: the ordering has
//! nothing to do with the Chomsky hierarchy (the context-sensitive
//! `0ⁿ1ⁿ2ⁿ` is *cheaper* than the context-free-looking `wcw`).

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [65usize, 129, 257, 513];

    // Tier 1: regular, Θ(n).
    let sigma = Alphabet::from_chars("ab")?;
    let regular = DfaLanguage::from_regex("(a|b)*abb", &sigma)?;
    let one_pass = DfaOnePass::new(&regular);

    // Tier 2: context-sensitive 0^n 1^n 2^n, Θ(n log n).
    let anbncn = AnBnCn::new();
    let counters = ThreeCounters::new();

    // Tier 3: hierarchy interior, Θ(n^1.5).
    let lg = LgLanguage::new(GrowthFunction::NSqrtN);
    let lg_proto = LgRecognizer::new(&lg);

    // Tier 4: the copy language wcw, Θ(n²).
    let wcw = WcW::new();
    let wcw_proto = WcWPrefixForward::new();

    println!("bits by tier (class in brackets):");
    println!(
        "  {:>5} | {:>12} | {:>16} | {:>14} | {:>12}",
        "n", "regular [R]", "0^n1^n2^n [CS]", "L_g n^1.5 [CS]", "wcw [CS]"
    );
    for &n in &sizes {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(n as u64);
        let regular_bits = {
            let w = regular
                .positive_example(n, &mut rng)
                .or_else(|| regular.negative_example(n, &mut rng))
                .expect("words exist");
            RingRunner::new().run(&one_pass, &w)?.stats.total_bits
        };
        // 0^n1^n2^n needs multiples of 3: measure the nearest one.
        let n3 = n - n % 3;
        let counter_bits = {
            let w = anbncn.positive_example(n3, &mut rng).expect("multiple of 3");
            RingRunner::new().run(&counters, &w)?.stats.total_bits
        };
        let lg_bits = {
            let w = lg.positive_example(n, &mut rng).expect("positives exist");
            RingRunner::new().run(&lg_proto, &w)?.stats.total_bits
        };
        let wcw_bits = {
            let w = wcw.positive_example(n, &mut rng).expect("odd lengths work");
            RingRunner::new().run(&wcw_proto, &w)?.stats.total_bits
        };
        println!(
            "  {n:>5} | {regular_bits:>12} | {counter_bits:>16} | {lg_bits:>14} | {wcw_bits:>12}"
        );
    }

    println!("\nnote the inversions against the Chomsky hierarchy:");
    println!("  - the context-SENSITIVE 0^n1^n2^n sits at Θ(n log n),");
    println!("  - while the copy language wcw costs Θ(n²);");
    println!("  - and L_g realizes every growth rate in between (Note 7.3).");
    Ok(())
}
