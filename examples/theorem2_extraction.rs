//! Theorem 2, run as a program: pull the automaton out of a protocol.
//!
//! ```text
//! cargo run --example theorem2_extraction
//! ```
//!
//! Theorem 2's proof builds a graph whose vertices are the messages of a
//! one-pass algorithm; if the algorithm uses `O(n)` bits the graph is
//! finite and *is* a DFA for the language. This example performs that
//! construction mechanically — first on a Theorem 1 protocol (extracting
//! a DFA and proving it equivalent to the source language), then on the
//! ring-size counter (whose message set diverges exactly as Corollary 1
//! predicts).

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::from_chars("ab")?;

    // Finite side: a regular protocol's message graph closes.
    println!("-- regular protocol: (a|b)*abb --");
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma)?;
    let proto = DfaOnePass::new(&lang);
    match MessageGraphExplorer::new(10_000).explore(&proto) {
        GraphOutcome::Finite { dfa, distinct_messages } => {
            println!("  message graph closed: {distinct_messages} distinct messages");
            println!(
                "  extracted DFA: {} states (minimizes to {})",
                dfa.state_count(),
                dfa.minimized().state_count()
            );
            let equivalent = dfa.equivalent(lang.dfa())?;
            println!("  equivalent to the source language (exact check): {equivalent}");
            assert!(equivalent);
        }
        GraphOutcome::Exceeded { .. } => unreachable!("Theorem 2: O(n) one-pass graphs close"),
    }

    // Infinite side: the counter's message set grows forever.
    println!("\n-- counting protocol (non-regular behaviour) --");
    match MessageGraphExplorer::new(300).explore(&CountRingSize::probe()) {
        GraphOutcome::Finite { .. } => unreachable!("counters use unbounded messages"),
        GraphOutcome::Exceeded { budget, growth } => {
            println!("  exploration exceeded its budget of {budget} messages");
            let tail: Vec<usize> = growth.iter().rev().take(5).rev().copied().collect();
            println!("  cumulative messages by BFS depth (last 5): {tail:?}");
            println!("  one new message per depth = the counter values 1, 2, 3, …");
            println!("  => infinitely many messages => Ω(n log n) bits (Corollary 1)");
        }
    }

    Ok(())
}
