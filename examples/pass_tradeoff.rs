//! The pass/bit trade-off of Note 7.5, measured exactly.
//!
//! ```text
//! cargo run --example pass_tradeoff
//! ```
//!
//! For the family `L_k = { w over 2^k letters : the (|w| mod 2^k−1)-th
//! letter occurs an even number of times }`, a two-pass ring algorithm
//! costs `(2k+1)·n` bits while any one-pass algorithm needs
//! `(k + 2^k − 1)·n`: collapsing passes squares the message alphabet.
//! Both protocols run here on the same rings; the printed totals are the
//! paper's closed forms, bit for bit.

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 90usize;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2026);

    println!("ring size n = {n}; all numbers are total bits, measured on the wire\n");
    println!(
        "  {:>2} | {:>4} | {:>14} | {:>14} | {:>9} | winner",
        "k", "|Σ|", "two-pass bits", "one-pass bits", "ratio"
    );
    for k in 1..=5u32 {
        let two = TwoPassParity::new(k);
        let one = OnePassParity::new(k);
        let lang = two.language().clone();
        let word = lang.positive_example(n, &mut rng).expect("members exist");

        let two_outcome = RingRunner::new().run(&two, &word)?;
        let one_outcome = RingRunner::new().run(&one, &word)?;
        assert!(two_outcome.accepted() && one_outcome.accepted());
        let b2 = two_outcome.stats.total_bits;
        let b1 = one_outcome.stats.total_bits;
        assert_eq!(b2, two.predicted_bits(n), "(2k+1)n");
        assert_eq!(b1, one.predicted_bits(n), "(k+2^k-1)n");

        println!(
            "  {k:>2} | {size:>4} | {b2:>7} = (2k+1)n | {b1:>7} = (k+2^k-1)n | {ratio:>9.2} | {winner}",
            size = 1usize << k,
            ratio = b1 as f64 / b2 as f64,
            winner = if b2 < b1 {
                "two-pass"
            } else if b2 == b1 {
                "tie"
            } else {
                "one-pass"
            },
        );
    }

    println!("\nthe one-pass penalty grows like 2^k / 2k — exponential in k,");
    println!("matching the paper's remark that cn multi-pass forces 2^c n one-pass.");
    Ok(())
}
