//! Note 7.4: what knowing `n` buys you.
//!
//! ```text
//! cargo run --example known_ring_size
//! ```
//!
//! With the ring size unknown, every non-regular language costs
//! `Ω(n log n)` bits. Give every processor the number `n` and the barrier
//! disappears: `{aᵐ : m is a power of two}` — a non-regular language —
//! drops to exactly `n` bits (one validity bit per hop; the leader checks
//! the power-of-two predicate locally). This example measures both sides
//! of the gap on the same rings.

use std::sync::Arc;

use ringleader::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lang = PowerOfTwoLength::new();
    let known = LengthPredicateKnownN::new(Symbol(0), Arc::new(|n: usize| n.is_power_of_two()));
    let unknown = CountRingSize::new(Arc::new(|n: usize| n.is_power_of_two()));

    println!("language {{a^m : m = 2^k}} — non-regular — both modes:\n");
    println!("  {:>5} | {:>12} | {:>14} | {:>6}", "n", "known-n bits", "unknown-n bits", "gap");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    for k in 4..=12u32 {
        let n = 1usize << k;
        let word = lang.positive_example(n, &mut rng).expect("powers of two are members");

        let known_bits = {
            let mut runner = RingRunner::new();
            runner.known_ring_size(true);
            let outcome = runner.run(&known, &word)?;
            assert!(outcome.accepted());
            outcome.stats.total_bits
        };
        let unknown_bits = {
            let outcome = RingRunner::new().run(&unknown, &word)?;
            assert!(outcome.accepted());
            outcome.stats.total_bits
        };
        assert_eq!(known_bits, n, "known-n mode costs exactly n bits");
        println!(
            "  {n:>5} | {known_bits:>12} | {unknown_bits:>14} | {gap:>5.1}x",
            gap = unknown_bits as f64 / known_bits as f64
        );
    }

    println!("\nknown-n column is exactly n — O(n) bits for a non-regular language,");
    println!("impossible when n is unknown (Theorem 4). The gap factor grows like log n.");
    Ok(())
}
