//! Integration tests for the analysis pipeline on synthetic and real data.

use ringleader_analysis::{
    bits_across_schedules, fit_series, log_log_slope, sweep_protocol, GrowthModel, SweepConfig,
};
use ringleader_core::{BidirMeetInMiddle, DfaOnePass};
use ringleader_langs::DfaLanguage;

#[test]
fn fit_pipeline_on_real_sweep() {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("((a|b)(a|b)(a|b))*", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let config = SweepConfig::with_sizes(vec![24, 48, 96, 192, 384]);
    let points = sweep_protocol(&proto, &lang, &config).unwrap();
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    let fit = fit_series(&series);
    assert_eq!(fit.best_model, GrowthModel::Linear);
    assert!((fit.constant - proto.state_bits() as f64).abs() < 1e-9);
    assert!(fit.dispersion < 1e-9, "exact protocols fit exactly");
    assert!((log_log_slope(&series) - 1.0).abs() < 1e-9);
}

#[test]
fn schedule_sweep_finds_spread_on_bidirectional_protocols() {
    // The bidirectional protocol's verdict path depends on probe timing,
    // so different schedules legitimately cost different bits — the sweep
    // must expose that spread while confirming decisions agree.
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    let word = ringleader_automata::Word::from_str(&"ab".repeat(16), &sigma).unwrap();
    let bits = bits_across_schedules(&proto, &word, 8).unwrap();
    assert_eq!(bits.len(), 10);
    let min = bits.iter().min().unwrap();
    let max = bits.iter().max().unwrap();
    // Spread exists but stays within the linear regime.
    assert!(max >= min);
    assert!(*max <= 32 * word.len(), "worst case stays O(n): {max}");
}

#[test]
fn sweep_respects_known_ring_size_flag() {
    use ringleader_core::LgRecognizer;
    use ringleader_langs::{GrowthFunction, LgLanguage};
    let lang = LgLanguage::new(GrowthFunction::NSqrtN);
    let proto = LgRecognizer::new(&lang);
    let sizes = vec![64usize, 128];
    let unknown = sweep_protocol(&proto, &lang, &SweepConfig::with_sizes(sizes.clone())).unwrap();
    let known = {
        let mut cfg = SweepConfig::with_sizes(sizes);
        cfg.known_ring_size = true;
        sweep_protocol(&proto, &lang, &cfg).unwrap()
    };
    for (u, k) in unknown.iter().zip(&known) {
        assert!(k.bits < u.bits, "known-n must be cheaper: {k:?} vs {u:?}");
    }
}
