//! Integration tests for the analysis pipeline on synthetic and real data.

use ringleader_analysis::{
    bits_across_schedules, fit_series, log_log_slope, sweep_protocol, sweep_protocol_with,
    GrowthModel, Parallel, Serial, SweepConfig, SweepExecutor,
};
use ringleader_core::{BidirMeetInMiddle, DfaOnePass, ThreeCounters, WcWPrefixForward};
use ringleader_langs::{AnBnCn, DfaLanguage, WcW};
use ringleader_sim::{Context, Direction, Process, ProcessResult, Protocol, Topology};

#[test]
fn fit_pipeline_on_real_sweep() {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("((a|b)(a|b)(a|b))*", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let config = SweepConfig::with_sizes(vec![24, 48, 96, 192, 384]);
    let points = sweep_protocol(&proto, &lang, &config).unwrap();
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    let fit = fit_series(&series);
    assert_eq!(fit.best_model, GrowthModel::Linear);
    assert!((fit.constant - proto.state_bits() as f64).abs() < 1e-9);
    assert!(fit.dispersion < 1e-9, "exact protocols fit exactly");
    assert!((log_log_slope(&series) - 1.0).abs() < 1e-9);
}

#[test]
fn schedule_sweep_finds_spread_on_bidirectional_protocols() {
    // The bidirectional protocol's verdict path depends on probe timing,
    // so different schedules legitimately cost different bits — the sweep
    // must expose that spread while confirming decisions agree.
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    let word = ringleader_automata::Word::from_str(&"ab".repeat(16), &sigma).unwrap();
    let bits = bits_across_schedules(&proto, &word, 8).unwrap();
    assert_eq!(bits.len(), 10);
    let min = bits.iter().min().unwrap();
    let max = bits.iter().max().unwrap();
    // Spread exists but stays within the linear regime.
    assert!(max >= min);
    assert!(*max <= 32 * word.len(), "worst case stays O(n): {max}");
}

/// Determinism regression for the executor rework: across three protocols
/// × three ring sizes, `Serial`, `Parallel(1)`, and `Parallel(4)` must
/// produce byte-identical sweep JSON.
#[test]
fn executors_produce_byte_identical_sweep_json() {
    type Sweep = (Box<dyn Protocol>, Box<dyn ringleader_langs::Language>, Vec<usize>);
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let regular = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let sweeps: Vec<Sweep> = vec![
        (Box::new(DfaOnePass::new(&regular)), Box::new(regular.clone()), vec![8, 16, 32]),
        (Box::new(ThreeCounters::new()), Box::new(AnBnCn::new()), vec![6, 12, 24]),
        (Box::new(WcWPrefixForward::new()), Box::new(WcW::new()), vec![9, 17, 33]),
    ];
    for (proto, lang, sizes) in &sweeps {
        let config = SweepConfig::with_sizes(sizes.clone());
        let reference = serde_json::to_string(
            &sweep_protocol_with(proto.as_ref(), lang.as_ref(), &config, &Serial).unwrap(),
        )
        .unwrap();
        for exec in [&Parallel(1) as &dyn SweepExecutor, &Parallel(4)] {
            let got = serde_json::to_string(
                &sweep_protocol_with(proto.as_ref(), lang.as_ref(), &config, exec).unwrap(),
            )
            .unwrap();
            assert_eq!(got, reference, "{} with {exec:?}", proto.name());
        }
    }
}

/// A ring whose links are slow (every hop parks the worker briefly):
/// the measurement is latency-bound, exactly the regime the parallel
/// executor exists for.
struct SlowRing;

struct SlowForward;
impl Process for SlowForward {
    fn on_message(
        &mut self,
        d: Direction,
        m: &ringleader_bitio::BitString,
        ctx: &mut Context,
    ) -> ProcessResult {
        // 5 ms per hop: big enough that the serial/parallel gap (~4×)
        // dwarfs scheduler noise on a loaded single-core CI runner.
        std::thread::sleep(std::time::Duration::from_millis(5));
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for SlowRing {
    fn name(&self) -> &'static str {
        "slow-ring"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: ringleader_automata::Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                ctx.send(Direction::Clockwise, ringleader_bitio::BitString::parse("1").unwrap());
                Ok(())
            }
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &ringleader_bitio::BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(true);
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: ringleader_automata::Symbol) -> Box<dyn Process> {
        Box::new(SlowForward)
    }
}

/// Unary Σ*: every length has exactly one (member) word — the simplest
/// workload generator, so the speedup test measures executors, not RNGs.
struct UnaryStar(ringleader_automata::Alphabet);
impl UnaryStar {
    fn new() -> Self {
        UnaryStar(ringleader_automata::Alphabet::from_chars("a").unwrap())
    }
}
impl ringleader_langs::Language for UnaryStar {
    fn name(&self) -> String {
        "a*".into()
    }
    fn alphabet(&self) -> &ringleader_automata::Alphabet {
        &self.0
    }
    fn class(&self) -> ringleader_langs::LanguageClass {
        ringleader_langs::LanguageClass::Regular
    }
    fn contains(&self, _word: &ringleader_automata::Word) -> bool {
        true
    }
    fn positive_example(
        &self,
        len: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> Option<ringleader_automata::Word> {
        ringleader_automata::Word::from_str(&"a".repeat(len), &self.0).ok()
    }
    fn negative_example(
        &self,
        _len: usize,
        _rng: &mut dyn rand::RngCore,
    ) -> Option<ringleader_automata::Word> {
        None
    }
}

/// The acceptance bar for the tentpole, demonstrated through the *real*
/// sweep path: a 4-worker sweep of a latency-bound grid is at least 2×
/// faster than the serial sweep, with identical results. (Latency-bound
/// so the demonstration holds even on a single-core CI runner; the
/// `soak_` variant below covers the CPU-bound largest grid.)
#[test]
fn parallel_sweep_is_at_least_twice_as_fast_on_slow_rings() {
    let lang = UnaryStar::new();
    let proto = SlowRing;
    // 4 sizes × 3 samples × {positive} = 12 points, ~5 ms per hop:
    // serial ≈ 12 rings × ~10 hops × 5 ms ≈ 600 ms, 4 workers ≈ 150 ms,
    // so the 2× assertion has ≈150 ms of slack against CI noise.
    let config = SweepConfig::with_sizes(vec![8, 9, 10, 11]);

    let t0 = std::time::Instant::now();
    let serial = sweep_protocol_with(&proto, &lang, &config, &Serial).unwrap();
    let serial_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let parallel = sweep_protocol_with(&proto, &lang, &config, &Parallel(4)).unwrap();
    let parallel_time = t1.elapsed();

    assert_eq!(serial, parallel, "speedup must not change results");
    assert!(
        parallel_time * 2 <= serial_time,
        "4 workers not ≥2× faster: serial {serial_time:?} vs parallel {parallel_time:?}"
    );
}

/// CPU-bound variant on the suite's largest grid (E7's sizes): measures
/// the wall-clock ratio of serial vs 4-worker sweeps of `ThreeCounters`
/// and asserts the ≥2× speedup whenever the machine actually has ≥4
/// cores. Ignored by default (it's a minutes-scale soak on small boxes);
/// run via `cargo test -- --include-ignored` or the CI soak job.
#[test]
#[ignore = "wall-clock soak; run with --include-ignored"]
fn soak_parallel_sweep_speedup_on_largest_grid() {
    let lang = AnBnCn::new();
    let proto = ThreeCounters::new();
    let config = SweepConfig::with_sizes(vec![6, 12, 24, 48, 96, 192, 384, 768, 1536]);

    let t0 = std::time::Instant::now();
    let serial = sweep_protocol_with(&proto, &lang, &config, &Serial).unwrap();
    let serial_time = t0.elapsed();

    let t1 = std::time::Instant::now();
    let parallel = sweep_protocol_with(&proto, &lang, &config, &Parallel(4)).unwrap();
    let parallel_time = t1.elapsed();

    assert_eq!(serial, parallel);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "largest-grid sweep: serial {serial_time:?}, 4 workers {parallel_time:?} \
         ({cores} cores, ratio {:.2})",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9)
    );
    if cores >= 4 {
        assert!(
            parallel_time * 2 <= serial_time,
            "4 workers not ≥2× faster on a {cores}-core machine: \
             serial {serial_time:?} vs parallel {parallel_time:?}"
        );
    }
}

#[test]
fn sweep_respects_known_ring_size_flag() {
    use ringleader_core::LgRecognizer;
    use ringleader_langs::{GrowthFunction, LgLanguage};
    let lang = LgLanguage::new(GrowthFunction::NSqrtN);
    let proto = LgRecognizer::new(&lang);
    let sizes = vec![64usize, 128];
    let unknown = sweep_protocol(&proto, &lang, &SweepConfig::with_sizes(sizes.clone())).unwrap();
    let known = {
        let mut cfg = SweepConfig::with_sizes(sizes);
        cfg.known_ring_size = true;
        sweep_protocol(&proto, &lang, &cfg).unwrap()
    };
    for (u, k) in unknown.iter().zip(&known) {
        assert!(k.bits < u.bits, "known-n must be cheaper: {k:?} vs {u:?}");
    }
}
