//! Property-based tests for the growth-model fitter on large-`n` series.
//!
//! The scale profiles push sweeps to rings of 10⁵ processors, where the
//! conditioning of the log-log fit starts to matter: `shape(n)` spans ten
//! orders of magnitude across a grid, so a numerically sloppy fitter
//! could lose the model or the constant. These properties pin that
//! [`fit_series`] stays model-correct and numerically stable across the
//! whole size range the registry can ask for.

use proptest::prelude::*;
use ringleader_analysis::{fit_series, log_log_slope, GrowthModel};

/// A geometric grid from `2^lo` to `2^hi` inclusive — the shape every
/// registered sweep uses, up past n = 10⁵ (2¹⁷ = 131072).
fn grid(lo: u32, hi: u32) -> Vec<usize> {
    (lo..=hi).map(|k| 1usize << k).collect()
}

fn model_for(index: usize) -> GrowthModel {
    GrowthModel::all()[index % 4]
}

proptest! {
    /// Noise-free series: the exact model wins, the constant is recovered
    /// to relative precision, and the dispersion is numerically zero —
    /// even when the measurements reach `c · n²` at `n = 131072` (≈10¹⁴,
    /// where absolute f64 error would dwarf a sloppy accumulation).
    #[test]
    fn exact_large_n_series_recover_model_and_constant(
        model_index in 0usize..4,
        c_milli in 50u64..50_000,
        lo in 5u32..9,
    ) {
        let model = model_for(model_index);
        let c = c_milli as f64 / 1000.0;
        let points: Vec<(usize, f64)> =
            grid(lo, 17).into_iter().map(|n| (n, c * model.shape(n))).collect();
        let fit = fit_series(&points);
        prop_assert_eq!(fit.best_model, model);
        prop_assert!((fit.constant - c).abs() / c < 1e-9, "constant {} vs {c}", fit.constant);
        prop_assert!(fit.dispersion < 1e-9, "dispersion {}", fit.dispersion);
        prop_assert!(fit.constant.is_finite() && fit.dispersion.is_finite());
    }

    /// Bounded multiplicative noise (up to ±8%) never flips the model on
    /// a wide grid: the candidate shapes diverge by factors ≥ log n,
    /// which dwarfs the noise band at every size the registry sweeps.
    #[test]
    fn noisy_large_n_series_keep_their_model(
        model_index in 0usize..4,
        c_milli in 100u64..10_000,
        signs in proptest::collection::vec(any::<bool>(), 13),
        eps_milli in 0u64..80,
    ) {
        let model = model_for(model_index);
        let c = c_milli as f64 / 1000.0;
        let eps = eps_milli as f64 / 1000.0;
        let points: Vec<(usize, f64)> = grid(5, 17)
            .into_iter()
            .zip(signs.iter().cycle())
            .map(|(n, &up)| {
                let noise = if up { 1.0 + eps } else { 1.0 - eps };
                (n, c * model.shape(n) * noise)
            })
            .collect();
        let fit = fit_series(&points);
        prop_assert_eq!(fit.best_model, model, "noise {eps} flipped the model");
        // The recovered constant stays inside the noise band.
        prop_assert!(
            (fit.constant - c).abs() / c <= eps + 1e-9,
            "constant {} vs {c} under ±{eps}",
            fit.constant
        );
        // CV can edge slightly past eps when the signs are unbalanced
        // (the mean ratio shifts below c while the spread stays ~eps·c).
        prop_assert!(fit.dispersion <= eps * 1.1 + 1e-9, "dispersion {}", fit.dispersion);
    }

    /// The log-log slope stays a well-conditioned exponent estimate at
    /// large n: pure powers recover their exponent almost exactly, and
    /// `n log n` lands strictly between them.
    #[test]
    fn log_log_slope_is_stable_at_large_n(
        c_milli in 50u64..50_000,
        lo in 5u32..12,
    ) {
        let c = c_milli as f64 / 1000.0;
        let sizes = grid(lo, 17);
        let series = |f: &dyn Fn(f64) -> f64| -> Vec<(usize, f64)> {
            sizes.iter().map(|&n| (n, c * f(n as f64))).collect()
        };
        let linear = log_log_slope(&series(&|n| n));
        let nlogn = log_log_slope(&series(&|n| n * n.log2()));
        let quad = log_log_slope(&series(&|n| n * n));
        prop_assert!((linear - 1.0).abs() < 1e-9, "linear slope {linear}");
        prop_assert!((quad - 2.0).abs() < 1e-9, "quadratic slope {quad}");
        prop_assert!(nlogn > linear && nlogn < quad, "n log n slope {nlogn}");
        prop_assert!(nlogn < 1.35, "n log n slope should stay near 1: {nlogn}");
    }

    /// Scaling every measurement by a constant scales the fitted constant
    /// and changes nothing else — no hidden absolute-magnitude effects
    /// even when the scale factor pushes values toward f64's integer
    /// precision limit.
    #[test]
    fn fit_is_scale_equivariant(
        model_index in 0usize..4,
        scale_milli in 1u64..1_000_000,
    ) {
        let model = model_for(model_index);
        let scale = scale_milli as f64 / 1000.0;
        let base: Vec<(usize, f64)> =
            grid(5, 17).into_iter().map(|n| (n, 3.0 * model.shape(n))).collect();
        let scaled: Vec<(usize, f64)> = base.iter().map(|&(n, y)| (n, y * scale)).collect();
        let fit_base = fit_series(&base);
        let fit_scaled = fit_series(&scaled);
        prop_assert_eq!(fit_base.best_model, fit_scaled.best_model);
        prop_assert!(
            (fit_scaled.constant - fit_base.constant * scale).abs()
                / (fit_base.constant * scale)
                < 1e-9
        );
        prop_assert!(
            (fit_scaled.log_log_slope - fit_base.log_log_slope).abs() < 1e-9,
            "slope moved under scaling"
        );
    }
}
