//! Growth-model classification for bit-count series.

use serde::{Deserialize, Serialize};

/// The growth models the paper's results distinguish between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GrowthModel {
    /// `c·n` — Theorem 1/6 territory (regular languages).
    Linear,
    /// `c·n·log₂n` — the Theorem 4/5 lower bound and the counter
    /// protocols.
    NLogN,
    /// `c·n^{3/2}` — the middle of the Note 7.3 hierarchy.
    NPow3_2,
    /// `c·n²` — the trivial upper bound and the `wcw` tier.
    Quadratic,
}

impl GrowthModel {
    /// All models, in increasing asymptotic order.
    #[must_use]
    pub fn all() -> [GrowthModel; 4] {
        [GrowthModel::Linear, GrowthModel::NLogN, GrowthModel::NPow3_2, GrowthModel::Quadratic]
    }

    /// Evaluates the model shape (constant 1) at `n`.
    #[must_use]
    pub fn shape(self, n: usize) -> f64 {
        let n = n as f64;
        match self {
            GrowthModel::Linear => n,
            GrowthModel::NLogN => n * n.log2().max(1.0),
            GrowthModel::NPow3_2 => n.powf(1.5),
            GrowthModel::Quadratic => n * n,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GrowthModel::Linear => "n",
            GrowthModel::NLogN => "n log n",
            GrowthModel::NPow3_2 => "n^1.5",
            GrowthModel::Quadratic => "n^2",
        }
    }
}

impl std::fmt::Display for GrowthModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Outcome of fitting a series against the candidate models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// The model with the most stable `measured / shape` ratio.
    pub best_model: GrowthModel,
    /// Mean of `measured / shape(best_model)` — the leading constant.
    pub constant: f64,
    /// Coefficient of variation of the winning ratio series (lower =
    /// cleaner fit; a perfect fit gives 0).
    pub dispersion: f64,
    /// Least-squares slope of `ln(bits)` against `ln(n)` — an exponent
    /// estimate independent of the model set (log n appears as a slight
    /// excess over the integer exponent).
    pub log_log_slope: f64,
}

/// Fits `(n, bits)` points against the four growth models.
///
/// The winner minimizes the coefficient of variation of the per-point
/// ratio `bits / shape(n)` — the standard "is this curve really `c·f(n)`?"
/// test. Points must have `n ≥ 2`; supply at least three for a meaningful
/// answer.
///
/// # Panics
///
/// Panics if `points` is empty or any `n < 2` or `bits <= 0`.
#[must_use]
pub fn fit_series(points: &[(usize, f64)]) -> FitResult {
    assert!(!points.is_empty(), "fit_series needs at least one point");
    assert!(
        points.iter().all(|&(n, y)| n >= 2 && y > 0.0),
        "fit_series needs n >= 2 and positive measurements"
    );
    let mut best: Option<(GrowthModel, f64, f64)> = None;
    for model in GrowthModel::all() {
        let ratios: Vec<f64> = points.iter().map(|&(n, y)| y / model.shape(n)).collect();
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let var = ratios.iter().map(|r| (r - mean).powi(2)).sum::<f64>() / ratios.len() as f64;
        let cv = var.sqrt() / mean;
        if best.as_ref().is_none_or(|&(_, _, best_cv)| cv < best_cv) {
            best = Some((model, mean, cv));
        }
    }
    let (best_model, constant, dispersion) = best.expect("at least one model evaluated");
    FitResult { best_model, constant, dispersion, log_log_slope: log_log_slope(points) }
}

/// Least-squares slope of `ln(bits)` on `ln(n)`.
///
/// A pure power law `c·n^k` yields exactly `k`; `n log n` yields a value
/// slightly above 1 that decreases toward 1 as `n` grows.
///
/// # Panics
///
/// Panics if fewer than two points are supplied or any value is
/// non-positive.
#[must_use]
pub fn log_log_slope(points: &[(usize, f64)]) -> f64 {
    assert!(points.len() >= 2, "slope needs at least two points");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, y)| {
            assert!(n >= 1 && y > 0.0, "slope needs positive values");
            ((n as f64).ln(), y.ln())
        })
        .collect();
    let mx = logs.iter().map(|p| p.0).sum::<f64>() / logs.len() as f64;
    let my = logs.iter().map(|p| p.1).sum::<f64>() / logs.len() as f64;
    let cov: f64 = logs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let var: f64 = logs.iter().map(|p| (p.0 - mx).powi(2)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> Vec<(usize, f64)> {
        (4..13).map(|k| (1usize << k, f((1usize << k) as f64))).collect()
    }

    #[test]
    fn classifies_pure_shapes() {
        assert_eq!(fit_series(&series(|n| 7.0 * n)).best_model, GrowthModel::Linear);
        assert_eq!(fit_series(&series(|n| 2.0 * n * n.log2())).best_model, GrowthModel::NLogN);
        assert_eq!(fit_series(&series(|n| 0.5 * n.powf(1.5))).best_model, GrowthModel::NPow3_2);
        assert_eq!(fit_series(&series(|n| 3.0 * n * n)).best_model, GrowthModel::Quadratic);
    }

    #[test]
    fn constant_is_recovered() {
        let fit = fit_series(&series(|n| 7.0 * n));
        assert!((fit.constant - 7.0).abs() < 1e-9);
        assert!(fit.dispersion < 1e-12);
    }

    #[test]
    fn noise_does_not_flip_the_model() {
        // ±10% multiplicative noise on an n log n curve.
        let noisy: Vec<(usize, f64)> = series(|n| 2.0 * n * n.log2())
            .into_iter()
            .enumerate()
            .map(|(i, (n, y))| (n, y * (1.0 + 0.1 * if i % 2 == 0 { 1.0 } else { -1.0 })))
            .collect();
        assert_eq!(fit_series(&noisy).best_model, GrowthModel::NLogN);
    }

    #[test]
    fn slope_matches_exponents() {
        assert!((log_log_slope(&series(|n| 5.0 * n)) - 1.0).abs() < 1e-9);
        assert!((log_log_slope(&series(|n| 5.0 * n * n)) - 2.0).abs() < 1e-9);
        let s = log_log_slope(&series(|n| n * n.log2()));
        assert!(s > 1.05 && s < 1.35, "{s}");
    }

    #[test]
    fn shapes_are_ordered() {
        // Strict separation needs log₂ n < √n, true from n = 17 on
        // (at n = 16 the two middle shapes coincide: 16·4 = 16^1.5).
        for n in [32usize, 256, 4096] {
            let v: Vec<f64> = GrowthModel::all().iter().map(|m| m.shape(n)).collect();
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_series_panics() {
        let _ = fit_series(&[]);
    }

    #[test]
    #[should_panic(expected = "positive measurements")]
    fn zero_measurement_panics() {
        let _ = fit_series(&[(4, 0.0)]);
    }

    #[test]
    fn labels_display() {
        assert_eq!(GrowthModel::NLogN.to_string(), "n log n");
        assert_eq!(GrowthModel::Quadratic.to_string(), "n^2");
    }
}
