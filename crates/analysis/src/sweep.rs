//! Protocol sweeps over ring sizes, with ground-truth verification.
//!
//! A sweep is a **grid** of independent measurement points — one per
//! (ring size, sample index, positive/negative) coordinate — executed by
//! a pluggable [`SweepExecutor`]: [`Serial`] runs points in grid order on
//! the calling thread; [`Parallel`] fans them out to a work-stealing
//! pool. Both produce *byte-identical* results because
//!
//! * every [`GridPoint`] carries its own RNG seed, derived from the
//!   sweep's base seed and the point's coordinates (never from execution
//!   order), and
//! * executors return per-point [`RunStats`] in grid order regardless of
//!   completion order (the pool's ordered-collection contract, see
//!   [`ringleader_sim::pool`]).

use std::fmt;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ringleader_langs::Language;
use ringleader_obs::Metrics;
use ringleader_sim::{pool, Protocol, RingRunner, Scheduler, SimError};

/// One measurement of a protocol at one ring size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Ring size.
    pub n: usize,
    /// Worst-case bits observed across the sampled words at this size.
    pub bits: usize,
    /// Message count of the worst-case execution.
    pub messages: usize,
    /// Largest single message across all samples, in bits.
    pub max_message_bits: usize,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Ring sizes to measure.
    pub sizes: Vec<usize>,
    /// Words sampled per size (positives and negatives each, when they
    /// exist).
    pub samples_per_size: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Run in the paper's Note 7.4 known-`n` mode.
    pub known_ring_size: bool,
    /// Delivery schedule.
    pub scheduler: Scheduler,
    /// Shards per single run (`1` = serial engine). Sharding is
    /// byte-identical to serial execution, so this only changes how the
    /// engine spends cores, never the measurements.
    pub shards: usize,
    /// Bounded tracing: keep the last `capacity` events of every run in a
    /// [`TraceRing`](ringleader_sim::TraceRing) instead of no trace at
    /// all. `None` (the default) traces nothing; sweeps only consume the
    /// aggregate [`ExecStats`](ringleader_sim::ExecStats) either way, so
    /// this never changes a measurement — it only bounds the memory a
    /// post-mortem tail costs on `large`/`massive` runs.
    pub trace_ring: Option<usize>,
    /// Metrics registry cloned into every grid point's runner. The
    /// default disabled handle records nothing; an enabled one
    /// accumulates engine/shard telemetry across the whole sweep without
    /// ever feeding back into a measurement.
    pub metrics: Metrics,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            sizes: vec![16, 32, 64, 128, 256, 512, 1024],
            samples_per_size: 3,
            seed: 0xB17C0DE,
            known_ring_size: false,
            scheduler: Scheduler::Fifo,
            shards: 1,
            trace_ring: None,
            metrics: Metrics::disabled(),
        }
    }
}

impl SweepConfig {
    /// A sweep over the given sizes with the remaining defaults.
    #[must_use]
    pub fn with_sizes(sizes: Vec<usize>) -> Self {
        Self { sizes, ..Self::default() }
    }
}

/// One independent measurement coordinate of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Ring size.
    pub n: usize,
    /// Sample index within this size, `0..samples_per_size`.
    pub sample: usize,
    /// Whether this point measures a member word (else a non-member).
    pub positive: bool,
    /// Workload seed for this point — a pure function of the sweep's
    /// base seed and this point's coordinates.
    pub seed: u64,
}

/// The full measurement grid of a sweep, in canonical order: sizes
/// outermost, then samples, then positive before negative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepGrid {
    points: Vec<GridPoint>,
}

impl SweepGrid {
    /// Builds the grid for `config`, deriving every point's seed.
    #[must_use]
    pub fn new(config: &SweepConfig) -> Self {
        let mut points =
            Vec::with_capacity(config.sizes.len() * config.samples_per_size.max(1) * 2);
        for &n in &config.sizes {
            for sample in 0..config.samples_per_size {
                for positive in [true, false] {
                    points.push(GridPoint {
                        n,
                        sample,
                        positive,
                        seed: point_seed(config.seed, n, sample, positive),
                    });
                }
            }
        }
        SweepGrid { points }
    }

    /// The points in canonical grid order.
    #[must_use]
    pub fn points(&self) -> &[GridPoint] {
        &self.points
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the grid is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Derives a point's workload seed from the sweep seed and the point's
/// coordinates (SplitMix64 finalizer over a coordinate hash): stable
/// across platforms, independent of grid traversal order.
fn point_seed(base: u64, n: usize, sample: usize, positive: bool) -> u64 {
    let mut z = base
        ^ (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (sample as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
        ^ u64::from(positive).wrapping_mul(0x94D0_49BB_1331_11EB);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-point measurement returned by executors, in grid order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Ring size of the point.
    pub n: usize,
    /// Whether a word existed and a run happened (`false` when the
    /// language has no example on the requested side at this length).
    pub ran: bool,
    /// Total protocol bits of the execution.
    pub bits: usize,
    /// Messages sent.
    pub messages: usize,
    /// Widest single message, in bits.
    pub max_message_bits: usize,
}

impl RunStats {
    fn skipped(n: usize) -> Self {
        RunStats { n, ran: false, bits: 0, messages: 0, max_message_bits: 0 }
    }
}

/// The measurement closure an executor runs at every grid point.
pub type PointJob<'a> = dyn Fn(&GridPoint) -> Result<RunStats, SimError> + Sync + 'a;

/// Strategy for executing a sweep grid.
///
/// Implementations must return results **in grid order** — that
/// ordering (plus per-point seeding) is what makes every executor
/// produce byte-identical sweeps. An executor may stop early after a
/// job returns `Err`, as long as what it returns is a grid-order prefix
/// whose last element is that `Err`; a parallel executor may instead
/// run the full grid and report every result.
pub trait SweepExecutor: Sync + fmt::Debug {
    /// Worker threads this executor uses (`1` for serial execution).
    fn workers(&self) -> usize;

    /// Runs `job` at every point of `grid`, collecting results in grid
    /// order (possibly stopping at the first `Err`, see trait docs).
    fn run_grid(&self, grid: &SweepGrid, job: &PointJob<'_>) -> Vec<Result<RunStats, SimError>>;

    /// Runs `count` independent indexed jobs (no return values — see
    /// [`run_independent`] for the value-collecting wrapper every
    /// caller actually wants).
    fn run_indexed(&self, count: usize, job: &(dyn Fn(usize) + Sync));
}

/// Runs every grid point on the calling thread, in grid order, stopping
/// at the first simulator error exactly like a plain serial loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct Serial;

impl SweepExecutor for Serial {
    fn workers(&self) -> usize {
        1
    }

    fn run_grid(&self, grid: &SweepGrid, job: &PointJob<'_>) -> Vec<Result<RunStats, SimError>> {
        let mut out = Vec::with_capacity(grid.len());
        for p in grid.points() {
            let result = job(p);
            let failed = result.is_err();
            out.push(result);
            if failed {
                break; // grid-order prefix ending at the error
            }
        }
        out
    }

    fn run_indexed(&self, count: usize, job: &(dyn Fn(usize) + Sync)) {
        for i in 0..count {
            job(i);
        }
    }
}

/// Fans grid points out to a work-stealing pool of the given number of
/// worker threads (`Parallel(0)` uses the machine's parallelism). Every
/// point runs even if one errors; the fold surfaces the earliest error.
#[derive(Debug, Clone, Copy)]
pub struct Parallel(pub usize);

impl SweepExecutor for Parallel {
    fn workers(&self) -> usize {
        if self.0 == 0 {
            pool::default_workers()
        } else {
            self.0
        }
    }

    fn run_grid(&self, grid: &SweepGrid, job: &PointJob<'_>) -> Vec<Result<RunStats, SimError>> {
        pool::ordered_map(self.workers(), grid.points().to_vec(), |_, p| job(&p))
    }

    fn run_indexed(&self, count: usize, job: &(dyn Fn(usize) + Sync)) {
        pool::ordered_map(self.workers(), (0..count).collect(), |_, i| job(i));
    }
}

/// The executor for a requested worker count: [`Serial`] for one
/// worker, [`Parallel`] otherwise, with `0` meaning one worker per CPU
/// (the same convention as [`Parallel`]`(0)`).
#[must_use]
pub fn executor_for(workers: usize) -> Box<dyn SweepExecutor> {
    match workers {
        0 => Box::new(Parallel(0)),
        1 => Box::new(Serial),
        n => Box::new(Parallel(n)),
    }
}

/// Runs `count` independent jobs through the executor, returning their
/// results in input order.
///
/// For experiment stages that are not size sweeps (schedule matrices,
/// per-`k` closed-form checks, graph explorations): the jobs must be
/// independent — in particular, workloads must be precomputed or
/// per-index seeded, never drawn from a shared RNG inside the job.
pub fn run_independent<T, F>(exec: &dyn SweepExecutor, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    exec.run_indexed(count, &|i| {
        *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(f(i));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("executor ran every indexed job")
        })
        .collect()
}

/// Runs `protocol` over `config.sizes` with the given executor, sampling
/// member and non-member words of `language` at each size and recording
/// the worst-case bits.
///
/// Every decision is cross-checked against `language.contains`; a
/// mismatch is reported as a panic — a sweep is an experiment, and a
/// wrong decision invalidates it loudly. (Under a parallel executor the
/// panic is re-raised on the calling thread, earliest grid point first.)
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the protocol's decision contradicts the language's ground
/// truth (the experiment's precondition).
pub fn sweep_protocol_with(
    protocol: &dyn Protocol,
    language: &dyn Language,
    config: &SweepConfig,
    exec: &dyn SweepExecutor,
) -> Result<Vec<SweepPoint>, SimError> {
    let grid = SweepGrid::new(config);
    let job = |p: &GridPoint| -> Result<RunStats, SimError> {
        let mut rng = StdRng::seed_from_u64(p.seed);
        let word = if p.positive {
            language.positive_example(p.n, &mut rng)
        } else {
            language.negative_example(p.n, &mut rng)
        };
        let Some(word) = word else {
            return Ok(RunStats::skipped(p.n));
        };
        let mut runner = RingRunner::new();
        runner.known_ring_size(config.known_ring_size);
        runner.scheduler(config.scheduler.clone());
        runner.shards(config.shards);
        runner.metrics(config.metrics.clone());
        if let Some(capacity) = config.trace_ring {
            runner.trace_ring(capacity);
        }
        let outcome = runner.run(protocol, &word)?;
        assert_eq!(
            outcome.accepted(),
            p.positive,
            "{} decided wrongly on a length-{} {} example of {}",
            protocol.name(),
            p.n,
            if p.positive { "positive" } else { "negative" },
            language.name(),
        );
        Ok(RunStats {
            n: p.n,
            ran: true,
            bits: outcome.stats.total_bits,
            messages: outcome.stats.message_count,
            max_message_bits: outcome.stats.max_message_bits,
        })
    };
    let results = exec.run_grid(&grid, &job);

    // Fold per-point stats into per-size worst cases, in grid order —
    // identical to what a serial sweep loop would have accumulated.
    // Each `sizes` entry owns a fixed-stride chunk of the grid (grouping
    // by position, not by value, so duplicate size entries each produce
    // their own output point — with byte-identical measurements, since
    // point seeds are pure in the coordinates).
    let stride = config.samples_per_size * 2;
    let mut out: Vec<SweepPoint> = Vec::with_capacity(config.sizes.len());
    if stride == 0 {
        return Ok(out);
    }
    let mut results = results.into_iter();
    for chunk in grid.points().chunks(stride) {
        let mut best: Option<SweepPoint> = None;
        let mut max_message_bits = 0usize;
        for _ in chunk {
            // Exhaustion before the grid ends can only follow an `Err`
            // (executors may return a grid-order prefix ending at one),
            // and the `?` below returns at that `Err` first.
            let stats = results.next().expect("grid-order results, prefix only after Err")?;
            if !stats.ran {
                continue;
            }
            max_message_bits = max_message_bits.max(stats.max_message_bits);
            if best.as_ref().is_none_or(|b| stats.bits > b.bits) {
                best = Some(SweepPoint {
                    n: stats.n,
                    bits: stats.bits,
                    messages: stats.messages,
                    max_message_bits: 0, // patched below
                });
            }
        }
        if let Some(mut point) = best {
            point.max_message_bits = max_message_bits;
            out.push(point);
        }
    }
    Ok(out)
}

/// [`sweep_protocol_with`] on the [`Serial`] executor — the historical
/// entry point, kept for callers that don't care about parallelism.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the protocol's decision contradicts the language's ground
/// truth (the experiment's precondition).
pub fn sweep_protocol(
    protocol: &dyn Protocol,
    language: &dyn Language,
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    sweep_protocol_with(protocol, language, config, &Serial)
}

/// Measures one word under many delivery schedules, returning each
/// execution's total bits.
///
/// `BIT_A(n)` quantifies over *all* executions; for schedule-sensitive
/// (bidirectional) protocols a FIFO-only measurement underestimates the
/// worst case. This helper sweeps the schedule space: FIFO, the
/// adversarial longest-queue policy, and `random_seeds` seeded shuffles.
/// Decisions are asserted identical across schedules (protocol
/// correctness must be schedule-independent even when costs are not).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if two schedules produce different decisions.
pub fn bits_across_schedules(
    protocol: &dyn Protocol,
    word: &ringleader_automata::Word,
    random_seeds: u64,
) -> Result<Vec<usize>, SimError> {
    let mut schedules = vec![Scheduler::Fifo, Scheduler::LongestQueue];
    for seed in 0..random_seeds {
        schedules.push(Scheduler::Random { seed });
    }
    let mut bits = Vec::with_capacity(schedules.len());
    let mut decision: Option<bool> = None;
    for sched in schedules {
        let mut runner = RingRunner::new();
        runner.scheduler(sched.clone());
        let outcome = runner.run(protocol, word)?;
        match decision {
            None => decision = outcome.decision,
            Some(d) => assert_eq!(
                Some(d),
                outcome.decision,
                "{} changed its decision under {sched:?}",
                protocol.name()
            ),
        }
        bits.push(outcome.stats.total_bits);
    }
    Ok(bits)
}

/// Result of a correctness verification run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Total decisions checked.
    pub checked: usize,
    /// Decisions that disagreed with ground truth.
    pub mismatches: usize,
}

impl VerificationReport {
    /// Whether every decision was correct.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.mismatches == 0 && self.checked > 0
    }
}

/// Checks `protocol` against `language` on sampled words of each length,
/// without asserting — returns the mismatch count for reporting.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn verify_protocol(
    protocol: &dyn Protocol,
    language: &dyn Language,
    lengths: &[usize],
    samples_per_length: usize,
    seed: u64,
) -> Result<VerificationReport, SimError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let runner = RingRunner::new();
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for &n in lengths {
        for _ in 0..samples_per_length {
            for want in [true, false] {
                let word = if want {
                    language.positive_example(n, &mut rng)
                } else {
                    language.negative_example(n, &mut rng)
                };
                let Some(word) = word else { continue };
                let outcome = runner.run(protocol, &word)?;
                checked += 1;
                if outcome.accepted() != want {
                    mismatches += 1;
                }
            }
        }
    }
    Ok(VerificationReport { checked, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_core::{CollectAll, DfaOnePass, ThreeCounters};
    use ringleader_langs::{AnBnCn, DfaLanguage};
    use std::sync::Arc;

    #[test]
    fn sweep_measures_exact_linear_costs() {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let config = SweepConfig::with_sizes(vec![8, 16, 32]);
        let points = sweep_protocol(&proto, &lang, &config).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.bits, proto.predicted_bits(p.n));
            assert_eq!(p.messages, p.n);
        }
    }

    #[test]
    fn sweep_skips_sizes_with_no_examples() {
        // (ab)* has no words at odd lengths, but negatives exist at every
        // length ≥ 1 — so odd sizes still measure (rejecting runs).
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let config = SweepConfig::with_sizes(vec![7, 8]);
        let points = sweep_protocol(&proto, &lang, &config).unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn grid_is_canonical_and_seeds_are_coordinate_pure() {
        let config = SweepConfig { sizes: vec![4, 9], samples_per_size: 2, ..Default::default() };
        let grid = SweepGrid::new(&config);
        assert_eq!(grid.len(), 8);
        // Canonical order: n outermost, then sample, then positive first.
        let coords: Vec<(usize, usize, bool)> =
            grid.points().iter().map(|p| (p.n, p.sample, p.positive)).collect();
        assert_eq!(
            coords,
            vec![
                (4, 0, true),
                (4, 0, false),
                (4, 1, true),
                (4, 1, false),
                (9, 0, true),
                (9, 0, false),
                (9, 1, true),
                (9, 1, false),
            ]
        );
        // Seeds: pure in coordinates (rebuilding reproduces them) and
        // distinct across points.
        let again = SweepGrid::new(&config);
        assert_eq!(grid, again);
        let mut seeds: Vec<u64> = grid.points().iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "per-point seeds must be distinct");
    }

    #[test]
    fn duplicate_sizes_each_produce_a_point() {
        // Grouping is positional: a size listed twice yields two output
        // points (byte-identical, because point seeds are pure in the
        // coordinates — same n, same sample index, same seed).
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let config = SweepConfig::with_sizes(vec![8, 8, 16]);
        let points = sweep_protocol(&proto, &lang, &config).unwrap();
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], points[1]);
        assert_eq!(points[2].n, 16);
    }

    #[test]
    fn executors_are_interchangeable() {
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let config = SweepConfig::with_sizes(vec![6, 12, 24]);
        let serial = sweep_protocol_with(&proto, &lang, &config, &Serial).unwrap();
        let par1 = sweep_protocol_with(&proto, &lang, &config, &Parallel(1)).unwrap();
        let par4 = sweep_protocol_with(&proto, &lang, &config, &Parallel(4)).unwrap();
        assert_eq!(serial, par1);
        assert_eq!(serial, par4);
    }

    #[test]
    fn executor_for_picks_the_right_strategy() {
        // 0 = one worker per CPU, same convention as Parallel(0).
        assert_eq!(executor_for(0).workers(), Parallel(0).workers());
        assert_eq!(executor_for(1).workers(), 1);
        assert_eq!(executor_for(6).workers(), 6);
        assert!(Parallel(0).workers() >= 1, "auto worker count is positive");
    }

    #[test]
    fn serial_executor_short_circuits_on_error() {
        // A failing grid point must abort the sweep like the historical
        // serial loop's `?` did: later points never run.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let config = SweepConfig { sizes: vec![4, 8], samples_per_size: 1, ..Default::default() };
        let grid = SweepGrid::new(&config);
        let ran = AtomicUsize::new(0);
        let results = Serial.run_grid(&grid, &|p| {
            ran.fetch_add(1, Ordering::SeqCst);
            if p.n == 4 && !p.positive {
                Err(SimError::EmptyRing)
            } else {
                Ok(RunStats { n: p.n, ran: true, bits: 1, messages: 1, max_message_bits: 1 })
            }
        });
        assert_eq!(ran.load(Ordering::SeqCst), 2, "points after the error must not run");
        assert_eq!(results.len(), 2, "grid-order prefix ending at the error");
        assert!(results.last().unwrap().is_err());
    }

    #[test]
    fn run_independent_preserves_order() {
        let exec = Parallel(3);
        let out = run_independent(&exec, 17, |i| i * i);
        assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_sweep_reports_spread_and_constant() {
        // Unidirectional token protocol: identical bits across schedules.
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use ringleader_langs::Language as _;
        let word = lang.positive_example(12, &mut rng).unwrap();
        let bits = bits_across_schedules(&proto, &word, 4).unwrap();
        assert_eq!(bits.len(), 6);
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:?}");
    }

    #[test]
    fn verify_passes_for_correct_protocols() {
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let report = verify_protocol(&proto, &lang, &[3, 6, 9, 12], 4, 7).unwrap();
        assert!(report.all_correct(), "{report:?}");
        assert!(report.checked > 10);
    }

    #[test]
    fn verify_detects_wrong_protocols() {
        // CollectAll wired to the WRONG language must show mismatches.
        // WcW's alphabet also has three letters, so the wire format is
        // compatible and only the decisions diverge.
        let truth = AnBnCn::new();
        let wrong = CollectAll::new(Arc::new(ringleader_langs::WcW::new()));
        let report = verify_protocol(&wrong, &truth, &[3, 6, 9], 4, 7).unwrap();
        assert!(report.mismatches > 0, "{report:?}");
    }

    #[test]
    #[should_panic(expected = "decided wrongly")]
    fn sweep_panics_on_wrong_decisions() {
        let truth = AnBnCn::new();
        let wrong = CollectAll::new(Arc::new(ringleader_langs::WcW::new()));
        let config = SweepConfig::with_sizes(vec![3, 6]);
        let _ = sweep_protocol(&wrong, &truth, &config);
    }

    #[test]
    #[should_panic(expected = "decided wrongly")]
    fn parallel_sweep_panics_on_wrong_decisions_too() {
        // The pool re-raises the earliest grid point's panic on this
        // thread, so the failure mode is executor-independent.
        let truth = AnBnCn::new();
        let wrong = CollectAll::new(Arc::new(ringleader_langs::WcW::new()));
        let config = SweepConfig::with_sizes(vec![3, 6]);
        let _ = sweep_protocol_with(&wrong, &truth, &config, &Parallel(4));
    }
}
