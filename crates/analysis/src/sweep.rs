//! Protocol sweeps over ring sizes, with ground-truth verification.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use ringleader_langs::Language;
use ringleader_sim::{Protocol, RingRunner, Scheduler, SimError};

/// One measurement of a protocol at one ring size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Ring size.
    pub n: usize,
    /// Worst-case bits observed across the sampled words at this size.
    pub bits: usize,
    /// Message count of the worst-case execution.
    pub messages: usize,
    /// Largest single message across all samples, in bits.
    pub max_message_bits: usize,
}

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Ring sizes to measure.
    pub sizes: Vec<usize>,
    /// Words sampled per size (positives and negatives each, when they
    /// exist).
    pub samples_per_size: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Run in the paper's Note 7.4 known-`n` mode.
    pub known_ring_size: bool,
    /// Delivery schedule.
    pub scheduler: Scheduler,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            sizes: vec![16, 32, 64, 128, 256, 512, 1024],
            samples_per_size: 3,
            seed: 0xB17C0DE,
            known_ring_size: false,
            scheduler: Scheduler::Fifo,
        }
    }
}

impl SweepConfig {
    /// A sweep over the given sizes with the remaining defaults.
    #[must_use]
    pub fn with_sizes(sizes: Vec<usize>) -> Self {
        Self { sizes, ..Self::default() }
    }
}

/// Runs `protocol` over `config.sizes`, sampling member and non-member
/// words of `language` at each size and recording the worst-case bits.
///
/// Every decision is cross-checked against `language.contains`; a mismatch
/// is reported as [`SimError::Process`]-like failure via panic — a sweep
/// is an experiment, and a wrong decision invalidates it loudly.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if the protocol's decision contradicts the language's ground
/// truth (the experiment's precondition).
pub fn sweep_protocol(
    protocol: &dyn Protocol,
    language: &dyn Language,
    config: &SweepConfig,
) -> Result<Vec<SweepPoint>, SimError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut runner = RingRunner::new();
    runner.known_ring_size(config.known_ring_size);
    runner.scheduler(config.scheduler.clone());
    let mut out = Vec::with_capacity(config.sizes.len());
    for &n in &config.sizes {
        let mut best: Option<SweepPoint> = None;
        let mut max_message_bits = 0usize;
        for _ in 0..config.samples_per_size {
            for want in [true, false] {
                let word = if want {
                    language.positive_example(n, &mut rng)
                } else {
                    language.negative_example(n, &mut rng)
                };
                let Some(word) = word else { continue };
                let outcome = runner.run(protocol, &word)?;
                assert_eq!(
                    outcome.accepted(),
                    want,
                    "{} decided wrongly on a length-{n} {} example of {}",
                    protocol.name(),
                    if want { "positive" } else { "negative" },
                    language.name(),
                );
                max_message_bits = max_message_bits.max(outcome.stats.max_message_bits);
                if best.as_ref().is_none_or(|b| outcome.stats.total_bits > b.bits) {
                    best = Some(SweepPoint {
                        n,
                        bits: outcome.stats.total_bits,
                        messages: outcome.stats.message_count,
                        max_message_bits: 0, // patched below
                    });
                }
            }
        }
        if let Some(mut point) = best {
            point.max_message_bits = max_message_bits;
            out.push(point);
        }
    }
    Ok(out)
}

/// Measures one word under many delivery schedules, returning each
/// execution's total bits.
///
/// `BIT_A(n)` quantifies over *all* executions; for schedule-sensitive
/// (bidirectional) protocols a FIFO-only measurement underestimates the
/// worst case. This helper sweeps the schedule space: FIFO, the
/// adversarial longest-queue policy, and `random_seeds` seeded shuffles.
/// Decisions are asserted identical across schedules (protocol
/// correctness must be schedule-independent even when costs are not).
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if two schedules produce different decisions.
pub fn bits_across_schedules(
    protocol: &dyn Protocol,
    word: &ringleader_automata::Word,
    random_seeds: u64,
) -> Result<Vec<usize>, SimError> {
    let mut schedules = vec![Scheduler::Fifo, Scheduler::LongestQueue];
    for seed in 0..random_seeds {
        schedules.push(Scheduler::Random { seed });
    }
    let mut bits = Vec::with_capacity(schedules.len());
    let mut decision: Option<bool> = None;
    for sched in schedules {
        let mut runner = RingRunner::new();
        runner.scheduler(sched.clone());
        let outcome = runner.run(protocol, word)?;
        match decision {
            None => decision = outcome.decision,
            Some(d) => assert_eq!(
                Some(d),
                outcome.decision,
                "{} changed its decision under {sched:?}",
                protocol.name()
            ),
        }
        bits.push(outcome.stats.total_bits);
    }
    Ok(bits)
}

/// Result of a correctness verification run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Total decisions checked.
    pub checked: usize,
    /// Decisions that disagreed with ground truth.
    pub mismatches: usize,
}

impl VerificationReport {
    /// Whether every decision was correct.
    #[must_use]
    pub fn all_correct(&self) -> bool {
        self.mismatches == 0 && self.checked > 0
    }
}

/// Checks `protocol` against `language` on sampled words of each length,
/// without asserting — returns the mismatch count for reporting.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn verify_protocol(
    protocol: &dyn Protocol,
    language: &dyn Language,
    lengths: &[usize],
    samples_per_length: usize,
    seed: u64,
) -> Result<VerificationReport, SimError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let runner = RingRunner::new();
    let mut checked = 0usize;
    let mut mismatches = 0usize;
    for &n in lengths {
        for _ in 0..samples_per_length {
            for want in [true, false] {
                let word = if want {
                    language.positive_example(n, &mut rng)
                } else {
                    language.negative_example(n, &mut rng)
                };
                let Some(word) = word else { continue };
                let outcome = runner.run(protocol, &word)?;
                checked += 1;
                if outcome.accepted() != want {
                    mismatches += 1;
                }
            }
        }
    }
    Ok(VerificationReport { checked, mismatches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_core::{CollectAll, DfaOnePass, ThreeCounters};
    use ringleader_langs::{AnBnCn, DfaLanguage};
    use std::sync::Arc;

    #[test]
    fn sweep_measures_exact_linear_costs() {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let config = SweepConfig::with_sizes(vec![8, 16, 32]);
        let points = sweep_protocol(&proto, &lang, &config).unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.bits, proto.predicted_bits(p.n));
            assert_eq!(p.messages, p.n);
        }
    }

    #[test]
    fn sweep_skips_sizes_with_no_examples() {
        // (ab)* has no words at odd lengths, but negatives exist at every
        // length ≥ 1 — so odd sizes still measure (rejecting runs).
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let proto = DfaOnePass::new(&lang);
        let config = SweepConfig::with_sizes(vec![7, 8]);
        let points = sweep_protocol(&proto, &lang, &config).unwrap();
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn schedule_sweep_reports_spread_and_constant() {
        // Unidirectional token protocol: identical bits across schedules.
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        use ringleader_langs::Language as _;
        let word = lang.positive_example(12, &mut rng).unwrap();
        let bits = bits_across_schedules(&proto, &word, 4).unwrap();
        assert_eq!(bits.len(), 6);
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "{bits:?}");
    }

    #[test]
    fn verify_passes_for_correct_protocols() {
        let lang = AnBnCn::new();
        let proto = ThreeCounters::new();
        let report = verify_protocol(&proto, &lang, &[3, 6, 9, 12], 4, 7).unwrap();
        assert!(report.all_correct(), "{report:?}");
        assert!(report.checked > 10);
    }

    #[test]
    fn verify_detects_wrong_protocols() {
        // CollectAll wired to the WRONG language must show mismatches.
        // WcW's alphabet also has three letters, so the wire format is
        // compatible and only the decisions diverge.
        let truth = AnBnCn::new();
        let wrong = CollectAll::new(Arc::new(ringleader_langs::WcW::new()));
        let report = verify_protocol(&wrong, &truth, &[3, 6, 9], 4, 7).unwrap();
        assert!(report.mismatches > 0, "{report:?}");
    }

    #[test]
    #[should_panic(expected = "decided wrongly")]
    fn sweep_panics_on_wrong_decisions() {
        let truth = AnBnCn::new();
        let wrong = CollectAll::new(Arc::new(ringleader_langs::WcW::new()));
        let config = SweepConfig::with_sizes(vec![3, 6]);
        let _ = sweep_protocol(&wrong, &truth, &config);
    }
}
