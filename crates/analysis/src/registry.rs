//! Data-driven experiment registry: specs, scale profiles, and the
//! harness that runs them.
//!
//! Every reproduced claim used to be a bespoke driver function that
//! hand-rolled the same sweep → fit → table → verdict plumbing. This
//! module turns that plumbing into data:
//!
//! * an [`ExperimentSpec`] declares an experiment — id, title, paper
//!   claim, a [`GridProfile`] of per-[`Scale`] sweep grids, optionally an
//!   expected [`GrowthModel`] and a [`ScheduleScenario`] — plus a run
//!   closure (or, for the common single-protocol shape, a declarative
//!   [`SweepPlan`] with no closure at all);
//! * a [`Registry`] holds the specs in presentation order and answers
//!   id lookup, substring filtering, and scenario collection — the
//!   single source of truth for `--list` and dispatch;
//! * an [`ExperimentHarness`] binds a [`SweepExecutor`] to a [`Scale`]
//!   and runs specs through it, so callers never touch grid resolution.
//!
//! # Scale profiles
//!
//! Each spec carries four grids: [`Scale::Smoke`] is a seconds-fast
//! end-to-end slice for CI, [`Scale::Paper`] reproduces the historical
//! (seed) numbers byte for byte, [`Scale::Large`] pushes the
//! asymptotic experiments to rings in the tens of thousands of
//! processors — sized per experiment so the quadratic-cost sweeps stay
//! inside the nightly soak budget — and [`Scale::Massive`] takes the
//! linear and `n log n` tiers to single runs at up to a million
//! processors, where the sharded engine (`--shards`) earns its keep.
//! Specs that never override it inherit their large grid at massive
//! scale.
//!
//! # Adding an experiment
//!
//! A fully declarative registration is ~20 lines: declare the metadata,
//! the grids, and a [`SweepPlan`] (protocol factory, language factory,
//! expected growth model); the harness sweeps, fits, fills the table,
//! and derives the verdict.
//!
//! ```rust
//! use ringleader_analysis::{
//!     ExperimentHarness, ExperimentSpec, GridProfile, GrowthModel, Registry, Scale, ScaleGrid,
//!     Serial, SweepPlan, Verdict,
//! };
//! use ringleader_core::ThreeCounters;
//! use ringleader_langs::AnBnCn;
//!
//! let mut registry = Registry::new();
//! registry.register(ExperimentSpec::sweep(
//!     "X1",
//!     "0^n 1^n 2^n stays Theta(n log n)",
//!     "Note 7.2: three counters recognize 0^n 1^n 2^n in O(n log n) bits",
//!     GridProfile::per_scale(
//!         ScaleGrid::new(vec![24, 48, 96], 1),
//!         ScaleGrid::new(vec![24, 48, 96, 192, 384], 2),
//!         ScaleGrid::new(vec![384, 1536, 6144], 1),
//!     ),
//!     SweepPlan::new(
//!         || Box::new(ThreeCounters::new()),
//!         || Box::new(AnBnCn::new()),
//!         GrowthModel::NLogN,
//!     ),
//! ));
//! let harness = ExperimentHarness::new(&Serial, Scale::Smoke);
//! let result = harness.run(registry.get("x1").expect("registered"));
//! assert_eq!(result.verdict, Verdict::Reproduced, "{result}");
//! ```

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use ringleader_automata::Word;
use ringleader_langs::Language;
use ringleader_obs::Metrics;
use ringleader_sim::{Protocol, RingRunner, Scheduler, ThreadedRunner};

use crate::fit::{fit_series, FitResult, GrowthModel};
use crate::report::{ExperimentResult, Verdict};
use crate::sweep::{run_independent, sweep_protocol_with, SweepConfig, SweepExecutor};

/// How big the experiment grids should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scale {
    /// A seconds-fast slice of every experiment — the CI end-to-end run.
    Smoke,
    /// The historical grids: reproduces the seed numbers byte for byte.
    Paper,
    /// Asymptotic experiments at rings in the tens of thousands of
    /// processors — the nightly soak profile.
    Large,
    /// Single runs at rings up to a million processors on the linear and
    /// `n log n` tiers — the profile the sharded engine targets. Specs
    /// without an explicit massive grid fall back to their large grid.
    Massive,
}

impl Scale {
    /// All scales, smallest first.
    #[must_use]
    pub fn all() -> [Scale; 4] {
        [Scale::Smoke, Scale::Paper, Scale::Large, Scale::Massive]
    }

    /// Parses a profile name (case-insensitive).
    #[must_use]
    pub fn parse(text: &str) -> Option<Scale> {
        match text.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "paper" => Some(Scale::Paper),
            "large" => Some(Scale::Large),
            "massive" => Some(Scale::Massive),
            _ => None,
        }
    }

    /// The canonical lowercase name (`smoke` / `paper` / `large` /
    /// `massive`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Paper => "paper",
            Scale::Large => "large",
            Scale::Massive => "massive",
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One scale's sweep grid: the ring sizes and how many words are sampled
/// per size (each sample measures a member and a non-member word).
///
/// Serialized into the `experiments --json` envelope so downstream diffs
/// know exactly what was measured.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScaleGrid {
    /// Ring sizes, ascending.
    pub sizes: Vec<usize>,
    /// Words sampled per size and side.
    pub samples_per_size: usize,
}

impl ScaleGrid {
    /// A grid over `sizes` with `samples_per_size` samples each.
    #[must_use]
    pub fn new(sizes: Vec<usize>, samples_per_size: usize) -> Self {
        ScaleGrid { sizes, samples_per_size }
    }

    /// The largest ring size, if the grid has any.
    #[must_use]
    pub fn max_size(&self) -> Option<usize> {
        self.sizes.iter().copied().max()
    }
}

/// An experiment's grids across all [`Scale`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridProfile {
    smoke: ScaleGrid,
    paper: ScaleGrid,
    large: ScaleGrid,
    massive: ScaleGrid,
}

impl GridProfile {
    /// Distinct grids per scale. The massive grid defaults to the large
    /// one; experiments cheap enough for million-process rings override
    /// it with [`GridProfile::massive`].
    #[must_use]
    pub fn per_scale(smoke: ScaleGrid, paper: ScaleGrid, large: ScaleGrid) -> Self {
        let massive = large.clone();
        GridProfile { smoke, paper, large, massive }
    }

    /// The same grid at every scale — for experiments whose cost does not
    /// grow with the profile.
    #[must_use]
    pub fn uniform(grid: ScaleGrid) -> Self {
        GridProfile { smoke: grid.clone(), paper: grid.clone(), large: grid.clone(), massive: grid }
    }

    /// Overrides the grid used at [`Scale::Massive`].
    #[must_use]
    pub fn massive(mut self, grid: ScaleGrid) -> Self {
        self.massive = grid;
        self
    }

    /// A scale-independent workload that is not a size sweep (closed-form
    /// checks, graph explorations). `sizes` records the fixed workload
    /// sizes for the JSON envelope; empty means "no ring-size dimension".
    #[must_use]
    pub fn fixed(sizes: Vec<usize>) -> Self {
        GridProfile::uniform(ScaleGrid::new(sizes, 1))
    }

    /// The grid for `scale`.
    #[must_use]
    pub fn grid(&self, scale: Scale) -> &ScaleGrid {
        match scale {
            Scale::Smoke => &self.smoke,
            Scale::Paper => &self.paper,
            Scale::Large => &self.large,
            Scale::Massive => &self.massive,
        }
    }
}

/// Everything a spec's run closure needs: the executor, the resolved
/// grid for the requested scale, and the spec's identity (so the closure
/// never re-states id/title/claim).
pub struct RunCtx<'a> {
    spec: &'a ExperimentSpec,
    exec: &'a dyn SweepExecutor,
    scale: Scale,
    shards: usize,
    trace_ring: Option<usize>,
    metrics: Metrics,
}

impl RunCtx<'_> {
    /// The sweep executor to fan grid points out with.
    #[must_use]
    pub fn exec(&self) -> &dyn SweepExecutor {
        self.exec
    }

    /// The requested scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Shards per single run (`1` = serial engine).
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Bounded-trace capacity per run, if requested (`--trace-ring`).
    #[must_use]
    pub fn trace_ring(&self) -> Option<usize> {
        self.trace_ring
    }

    /// The metrics registry every run records into (`--metrics`). The
    /// default disabled handle records nothing.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The spec's grid at the requested scale.
    #[must_use]
    pub fn grid(&self) -> &ScaleGrid {
        self.spec.grid(self.scale)
    }

    /// The grid's ring sizes.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.grid().sizes
    }

    /// The grid's largest ring size.
    ///
    /// # Panics
    ///
    /// Panics if the grid is size-less ([`GridProfile::fixed`] with no
    /// sizes) — such specs should not ask.
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.grid().max_size().expect("grid declares at least one size")
    }

    /// A [`SweepConfig`] over the grid's sizes and sample count, with the
    /// shared defaults (seed, FIFO schedule, unknown ring size).
    #[must_use]
    pub fn sweep_config(&self) -> SweepConfig {
        let grid = self.grid();
        SweepConfig {
            sizes: grid.sizes.clone(),
            samples_per_size: grid.samples_per_size,
            shards: self.shards,
            trace_ring: self.trace_ring,
            metrics: self.metrics.clone(),
            ..SweepConfig::default()
        }
    }

    /// Starts this spec's [`ExperimentResult`] with the given columns.
    #[must_use]
    pub fn new_result(&self, columns: Vec<String>) -> ExperimentResult {
        ExperimentResult::new(self.spec.id(), self.spec.title(), self.spec.paper_claim(), columns)
    }
}

impl fmt::Debug for RunCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunCtx")
            .field("spec", &self.spec.id())
            .field("scale", &self.scale)
            .field("grid", self.grid())
            .finish()
    }
}

type RunFn = Box<dyn Fn(&RunCtx<'_>) -> ExperimentResult + Send + Sync>;
type ProtocolFactory = Box<dyn Fn() -> Box<dyn Protocol> + Send + Sync>;
type LanguageFactory = Box<dyn Fn() -> Box<dyn Language> + Send + Sync>;
type Predictor = Box<dyn Fn(usize) -> usize + Send + Sync>;

/// The declarative core of a standard sweep experiment: which protocol
/// to run on which language, the expected growth model, and (optionally)
/// a closed-form bit-count predictor that every measured point must hit
/// exactly.
///
/// [`ExperimentSpec::sweep`] turns a plan into a full spec; the harness
/// sweeps the grid, fills a `n / bits / normalized / max msg bits`
/// table, fits the series, and derives the verdict.
pub struct SweepPlan {
    protocol: ProtocolFactory,
    language: LanguageFactory,
    expected: GrowthModel,
    norm_label: Option<String>,
    norm_decimals: usize,
    predictor: Option<Predictor>,
}

impl SweepPlan {
    /// A plan running `protocol` over `language`, expecting `expected`.
    #[must_use]
    pub fn new(
        protocol: impl Fn() -> Box<dyn Protocol> + Send + Sync + 'static,
        language: impl Fn() -> Box<dyn Language> + Send + Sync + 'static,
        expected: GrowthModel,
    ) -> Self {
        SweepPlan {
            protocol: Box::new(protocol),
            language: Box::new(language),
            expected,
            norm_label: None,
            norm_decimals: 4,
            predictor: None,
        }
    }

    /// Overrides the normalized column's header (default
    /// `bits/<model label>`).
    #[must_use]
    pub fn norm_label(mut self, label: impl Into<String>) -> Self {
        self.norm_label = Some(label.into());
        self
    }

    /// Decimal places of the normalized column (default 4).
    #[must_use]
    pub fn norm_decimals(mut self, decimals: usize) -> Self {
        self.norm_decimals = decimals;
        self
    }

    /// Requires every measured point to equal `predictor(n)` exactly.
    #[must_use]
    pub fn predictor(mut self, predictor: impl Fn(usize) -> usize + Send + Sync + 'static) -> Self {
        self.predictor = Some(Box::new(predictor));
        self
    }

    fn run(&self, ctx: &RunCtx<'_>) -> ExperimentResult {
        let norm_label =
            self.norm_label.clone().unwrap_or_else(|| format!("bits/{}", self.expected.label()));
        let mut result =
            ctx.new_result(vec!["n".into(), "bits".into(), norm_label, "max msg bits".into()]);
        let protocol = (self.protocol)();
        let language = (self.language)();
        let config = ctx.sweep_config();
        let points =
            match sweep_protocol_with(protocol.as_ref(), language.as_ref(), &config, ctx.exec()) {
                Ok(p) => p,
                Err(e) => {
                    result.set_verdict(Verdict::Failed(format!("simulation error: {e}")));
                    return result;
                }
            };
        let mut exact = true;
        for p in &points {
            if let Some(predict) = &self.predictor {
                if p.bits != predict(p.n) {
                    exact = false;
                }
            }
            let norm = p.bits as f64 / self.expected.shape(p.n);
            result.push_row(vec![
                p.n.to_string(),
                p.bits.to_string(),
                format!("{norm:.prec$}", prec = self.norm_decimals),
                p.max_message_bits.to_string(),
            ]);
        }
        let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
        let fit = fit_series(&series);
        result.push_note(fit_note(&fit));
        result.set_verdict(if fit.best_model != self.expected {
            Verdict::Failed(format!("expected {}, measured {}", self.expected, fit.best_model))
        } else if !exact {
            Verdict::Failed("a measured point missed the closed form".into())
        } else {
            Verdict::Reproduced
        });
        result
    }
}

impl fmt::Debug for SweepPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepPlan")
            .field("expected", &self.expected)
            .field("predictor", &self.predictor.is_some())
            .finish()
    }
}

/// One declared experiment: identity, per-scale grids, optional expected
/// model and schedule scenario, and the measurement itself.
pub struct ExperimentSpec {
    id: &'static str,
    title: &'static str,
    paper_claim: &'static str,
    grid: GridProfile,
    expected_model: Option<GrowthModel>,
    scenarios: Vec<ScheduleScenario>,
    run: RunFn,
}

impl ExperimentSpec {
    /// A spec with a custom run closure — for experiments whose table or
    /// verdict logic is genuinely bespoke. The closure receives a
    /// [`RunCtx`] and must measure at the ctx's grid.
    #[must_use]
    pub fn new(
        id: &'static str,
        title: &'static str,
        paper_claim: &'static str,
        grid: GridProfile,
        run: impl Fn(&RunCtx<'_>) -> ExperimentResult + Send + Sync + 'static,
    ) -> Self {
        ExperimentSpec {
            id,
            title,
            paper_claim,
            grid,
            expected_model: None,
            scenarios: Vec::new(),
            run: Box::new(run),
        }
    }

    /// A fully declarative spec: the harness runs the [`SweepPlan`] over
    /// the grid and derives table, fit note, and verdict.
    #[must_use]
    pub fn sweep(
        id: &'static str,
        title: &'static str,
        paper_claim: &'static str,
        grid: GridProfile,
        plan: SweepPlan,
    ) -> Self {
        let expected = plan.expected;
        let mut spec = ExperimentSpec::new(id, title, paper_claim, grid, move |ctx| plan.run(ctx));
        spec.expected_model = Some(expected);
        spec
    }

    /// Declares the growth model this experiment's headline series is
    /// expected to follow (informational for custom-run specs).
    #[must_use]
    pub fn with_expected_model(mut self, model: GrowthModel) -> Self {
        self.expected_model = Some(model);
        self
    }

    /// Attaches a schedule-independence scenario; the registry's model
    /// validity experiment replays every registered scenario under the
    /// full scheduler matrix.
    #[must_use]
    pub fn with_scenario(mut self, scenario: ScheduleScenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Experiment id, e.g. `"E7"`.
    #[must_use]
    pub fn id(&self) -> &'static str {
        self.id
    }

    /// One-line title.
    #[must_use]
    pub fn title(&self) -> &'static str {
        self.title
    }

    /// The paper claim being reproduced.
    #[must_use]
    pub fn paper_claim(&self) -> &'static str {
        self.paper_claim
    }

    /// The grid at `scale`.
    #[must_use]
    pub fn grid(&self, scale: Scale) -> &ScaleGrid {
        self.grid.grid(scale)
    }

    /// The declared expected growth model, if any.
    #[must_use]
    pub fn expected_model(&self) -> Option<GrowthModel> {
        self.expected_model
    }

    /// The spec's schedule-independence scenarios.
    #[must_use]
    pub fn scenarios(&self) -> &[ScheduleScenario] {
        &self.scenarios
    }

    /// Runs the experiment with the given executor at the given scale,
    /// on the serial (one-shard) engine.
    #[must_use]
    pub fn run(&self, exec: &dyn SweepExecutor, scale: Scale) -> ExperimentResult {
        self.run_sharded(exec, scale, 1)
    }

    /// Runs the experiment with every single run split across `shards`
    /// engine shards. Sharding is byte-identical to serial execution, so
    /// the result is the same as [`ExperimentSpec::run`]'s — only the
    /// wall-clock profile changes.
    #[must_use]
    pub fn run_sharded(
        &self,
        exec: &dyn SweepExecutor,
        scale: Scale,
        shards: usize,
    ) -> ExperimentResult {
        self.run_configured(exec, scale, shards, None, Metrics::disabled())
    }

    /// Runs the experiment with the full engine configuration: shard
    /// count, an optional bounded-trace capacity, and a metrics registry
    /// forwarded to every run. None of the knobs changes any measurement.
    #[must_use]
    pub fn run_configured(
        &self,
        exec: &dyn SweepExecutor,
        scale: Scale,
        shards: usize,
        trace_ring: Option<usize>,
        metrics: Metrics,
    ) -> ExperimentResult {
        let ctx = RunCtx { spec: self, exec, scale, shards: shards.max(1), trace_ring, metrics };
        (self.run)(&ctx)
    }
}

impl fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("id", &self.id)
            .field("title", &self.title)
            .field("expected_model", &self.expected_model)
            .field("scenarios", &self.scenarios.len())
            .finish()
    }
}

/// The ordered collection of registered experiments — the single source
/// of truth for listing, dispatch, and the scenario matrix.
#[derive(Debug, Default)]
pub struct Registry {
    specs: Vec<ExperimentSpec>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry { specs: Vec::new() }
    }

    /// Adds a spec at the end of the presentation order.
    ///
    /// # Panics
    ///
    /// Panics if a spec with the same id (case-insensitive) is already
    /// registered — duplicate ids would make dispatch ambiguous.
    pub fn register(&mut self, spec: ExperimentSpec) {
        assert!(
            self.get(spec.id()).is_none(),
            "duplicate experiment id {:?} registered",
            spec.id()
        );
        self.specs.push(spec);
    }

    /// The specs in presentation order.
    #[must_use]
    pub fn specs(&self) -> &[ExperimentSpec] {
        &self.specs
    }

    /// Number of registered experiments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Looks an experiment up by id, case-insensitively.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&ExperimentSpec> {
        self.specs.iter().find(|s| s.id().eq_ignore_ascii_case(id))
    }

    /// All experiment ids, in presentation order.
    #[must_use]
    pub fn ids(&self) -> Vec<&'static str> {
        self.specs.iter().map(ExperimentSpec::id).collect()
    }

    /// The specs whose id or title contains `needle` (case-insensitive),
    /// in presentation order.
    #[must_use]
    pub fn filter(&self, needle: &str) -> Vec<&ExperimentSpec> {
        let needle = needle.to_ascii_lowercase();
        self.specs
            .iter()
            .filter(|s| {
                s.id().to_ascii_lowercase().contains(&needle)
                    || s.title().to_ascii_lowercase().contains(&needle)
            })
            .collect()
    }

    /// Every registered schedule scenario, in presentation order — the
    /// scenario matrix the model-validity experiment replays.
    #[must_use]
    pub fn schedule_scenarios(&self) -> Vec<ScheduleScenario> {
        self.specs.iter().flat_map(|s| s.scenarios().iter().cloned()).collect()
    }
}

/// Binds a [`SweepExecutor`] and a [`Scale`] and runs specs through
/// them — what the `experiments` binary and the tests drive.
#[derive(Debug, Clone)]
pub struct ExperimentHarness<'a> {
    exec: &'a dyn SweepExecutor,
    scale: Scale,
    shards: usize,
    trace_ring: Option<usize>,
    metrics: Metrics,
}

impl<'a> ExperimentHarness<'a> {
    /// A harness running on `exec` at `scale` with the serial engine.
    #[must_use]
    pub fn new(exec: &'a dyn SweepExecutor, scale: Scale) -> Self {
        ExperimentHarness { exec, scale, shards: 1, trace_ring: None, metrics: Metrics::disabled() }
    }

    /// The harness's scale.
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Splits every single run across `shards` engine shards. Results
    /// are byte-identical to the serial engine's at any shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Bounds every run's trace to the last `capacity` events (a
    /// [`TraceRing`](ringleader_sim::TraceRing)); `0` disables. Purely a
    /// memory knob — measurements are unchanged.
    #[must_use]
    pub fn with_trace_ring(mut self, capacity: usize) -> Self {
        self.trace_ring = (capacity > 0).then_some(capacity);
        self
    }

    /// Records every run's telemetry into `metrics` (`--metrics`).
    /// Observability only: measurements are byte-identical with any
    /// registry attached, enabled or not.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Runs one spec.
    #[must_use]
    pub fn run(&self, spec: &ExperimentSpec) -> ExperimentResult {
        spec.run_configured(
            self.exec,
            self.scale,
            self.shards,
            self.trace_ring,
            self.metrics.clone(),
        )
    }

    /// Runs every spec of `registry` in presentation order.
    #[must_use]
    pub fn run_all(&self, registry: &Registry) -> Vec<ExperimentResult> {
        registry.specs().iter().map(|s| self.run(s)).collect()
    }

    /// Runs the spec with the given id, if registered.
    #[must_use]
    pub fn run_id(&self, registry: &Registry, id: &str) -> Option<ExperimentResult> {
        registry.get(id).map(|s| self.run(s))
    }
}

/// The standard fit note: model, constant, dispersion, log-log slope.
#[must_use]
pub fn fit_note(fit: &FitResult) -> String {
    format!(
        "fit: {} (c={:.3}, dispersion={:.3}, log-log slope {:.3})",
        fit.best_model, fit.constant, fit.dispersion, fit.log_log_slope
    )
}

/// The compact fit cell used in per-language tables: `model (c=X.XX)`.
#[must_use]
pub fn fit_label(fit: &FitResult) -> String {
    format!("{} (c={:.2})", fit.best_model, fit.constant)
}

/// One schedule-independence check: a deterministic protocol and a fixed
/// word whose decision *and* exact bit count must be identical under
/// every delivery schedule and on real OS threads.
///
/// Specs register scenarios via [`ExperimentSpec::with_scenario`]; the
/// model-validity experiment replays the whole matrix via
/// [`run_schedule_matrix`].
#[derive(Clone)]
pub struct ScheduleScenario {
    label: String,
    protocol: Arc<dyn Fn() -> Box<dyn Protocol> + Send + Sync>,
    word: Word,
}

impl ScheduleScenario {
    /// A scenario running `protocol()` on `word`.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        protocol: impl Fn() -> Box<dyn Protocol> + Send + Sync + 'static,
        word: Word,
    ) -> Self {
        ScheduleScenario { label: label.into(), protocol: Arc::new(protocol), word }
    }

    /// The scenario's display label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The word the scenario measures.
    #[must_use]
    pub fn word(&self) -> &Word {
        &self.word
    }
}

impl fmt::Debug for ScheduleScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScheduleScenario")
            .field("label", &self.label)
            .field("word_len", &self.word.len())
            .finish()
    }
}

/// One scenario's outcome under the schedule matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Error notes, if any runs failed.
    pub notes: Vec<String>,
    /// The rendered table row: label, n, schedules tested, bit counts,
    /// threaded agreement.
    pub row: Vec<String>,
    /// Whether every schedule and the threaded backend agreed.
    pub good: bool,
}

/// Replays every scenario under FIFO, adversarial longest-queue, and
/// `random_seeds` seeded-shuffle schedules, then cross-checks the
/// event-driven result against real OS threads.
///
/// Scenarios are independent; they fan out through `exec` and the
/// outcomes return in scenario order.
#[must_use]
pub fn run_schedule_matrix(
    exec: &dyn SweepExecutor,
    scenarios: &[ScheduleScenario],
    random_seeds: u64,
) -> Vec<ScenarioOutcome> {
    run_independent(exec, scenarios.len(), |i| {
        let scenario = &scenarios[i];
        let name = scenario.label();
        let word = scenario.word();
        let proto = (scenario.protocol)();
        let mut notes: Vec<String> = Vec::new();
        let mut good = true;
        let mut schedules = vec![Scheduler::Fifo, Scheduler::LongestQueue];
        for seed in 0..random_seeds {
            schedules.push(Scheduler::Random { seed });
        }
        let mut bits = Vec::new();
        let mut decisions = Vec::new();
        for sched in &schedules {
            let mut runner = RingRunner::new();
            runner.scheduler(sched.clone());
            match runner.run(proto.as_ref(), word) {
                Ok(o) => {
                    bits.push(o.stats.total_bits);
                    decisions.push(o.accepted());
                }
                Err(e) => {
                    good = false;
                    notes.push(format!("{name} under {sched:?}: {e}"));
                }
            }
        }
        let bits_agree = bits.windows(2).all(|w| w[0] == w[1]);
        let decisions_agree = decisions.windows(2).all(|w| w[0] == w[1]);
        if !bits_agree || !decisions_agree {
            good = false;
        }

        let threaded = ThreadedRunner::new().run(proto.as_ref(), word);
        let threads_agree = match threaded {
            Ok(t) => {
                !bits.is_empty()
                    && t.total_bits == bits[0]
                    && Some(t.decision) == decisions.first().copied()
            }
            Err(e) => {
                notes.push(format!("{name} threaded: {e}"));
                false
            }
        };
        if !threads_agree {
            good = false;
        }

        let row = vec![
            name.into(),
            word.len().to_string(),
            format!("{} tested", schedules.len()),
            if bits_agree {
                format!("identical ({})", bits.first().copied().unwrap_or(0))
            } else {
                format!("DIVERGED {bits:?}")
            },
            if threads_agree { "agree".into() } else { "DISAGREE".into() },
        ];
        ScenarioOutcome { notes, row, good }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::Serial;
    use ringleader_core::{DfaOnePass, ThreeCounters};
    use ringleader_langs::{AnBnCn, DfaLanguage};

    fn counters_spec() -> ExperimentSpec {
        ExperimentSpec::sweep(
            "T1",
            "counters test spec",
            "Note 7.2",
            GridProfile::per_scale(
                ScaleGrid::new(vec![12, 24], 1),
                ScaleGrid::new(vec![24, 48, 96, 192, 384], 2),
                ScaleGrid::new(vec![384, 768], 1),
            ),
            SweepPlan::new(
                || Box::new(ThreeCounters::new()),
                || Box::new(AnBnCn::new()),
                GrowthModel::NLogN,
            ),
        )
    }

    #[test]
    fn scale_parses_and_displays() {
        for scale in Scale::all() {
            assert_eq!(Scale::parse(scale.label()), Some(scale));
            assert_eq!(Scale::parse(&scale.label().to_ascii_uppercase()), Some(scale));
            assert_eq!(scale.to_string(), scale.label());
        }
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::parse(""), None);
    }

    #[test]
    fn grid_profile_resolves_per_scale() {
        let profile = GridProfile::per_scale(
            ScaleGrid::new(vec![8], 1),
            ScaleGrid::new(vec![8, 16], 2),
            ScaleGrid::new(vec![1024], 1),
        );
        assert_eq!(profile.grid(Scale::Smoke).sizes, vec![8]);
        assert_eq!(profile.grid(Scale::Paper).samples_per_size, 2);
        assert_eq!(profile.grid(Scale::Large).max_size(), Some(1024));
        let uniform = GridProfile::uniform(ScaleGrid::new(vec![4, 9], 3));
        for scale in Scale::all() {
            assert_eq!(uniform.grid(scale).sizes, vec![4, 9]);
        }
        assert_eq!(GridProfile::fixed(vec![]).grid(Scale::Paper).max_size(), None);
    }

    #[test]
    fn massive_grid_defaults_to_large_until_overridden() {
        let profile = GridProfile::per_scale(
            ScaleGrid::new(vec![8], 1),
            ScaleGrid::new(vec![8, 16], 2),
            ScaleGrid::new(vec![1024], 1),
        );
        assert_eq!(profile.grid(Scale::Massive), profile.grid(Scale::Large));
        let profile = profile.massive(ScaleGrid::new(vec![1 << 20], 1));
        assert_eq!(profile.grid(Scale::Massive).sizes, vec![1 << 20]);
        assert_eq!(profile.grid(Scale::Large).sizes, vec![1024]);
    }

    #[test]
    fn harness_shards_thread_into_the_sweep_config() {
        let spec = ExperimentSpec::new(
            "T3",
            "shards probe",
            "none",
            GridProfile::uniform(ScaleGrid::new(vec![4], 1)),
            |ctx| {
                let config = ctx.sweep_config();
                assert_eq!(config.shards, ctx.shards());
                let mut result = ctx.new_result(vec!["shards".into()]);
                result.push_row(vec![config.shards.to_string()]);
                result.set_verdict(Verdict::Reproduced);
                result
            },
        );
        let serial = ExperimentHarness::new(&Serial, Scale::Smoke).run(&spec);
        assert_eq!(serial.rows[0][0], "1");
        let sharded = ExperimentHarness::new(&Serial, Scale::Smoke).with_shards(4).run(&spec);
        assert_eq!(sharded.rows[0][0], "4");
        // Clamped: zero means serial.
        let clamped = ExperimentHarness::new(&Serial, Scale::Smoke).with_shards(0).run(&spec);
        assert_eq!(clamped.rows[0][0], "1");
    }

    #[test]
    fn sharded_runs_reproduce_serial_results_byte_for_byte() {
        let spec = counters_spec();
        let serial = spec.run(&Serial, Scale::Smoke);
        let sharded = spec.run_sharded(&Serial, Scale::Smoke, 3);
        assert_eq!(serial.rows, sharded.rows, "sharding must not change measurements");
        assert_eq!(serial.verdict, sharded.verdict);
    }

    #[test]
    fn declarative_sweep_spec_runs_end_to_end() {
        let spec = counters_spec();
        let result = spec.run(&Serial, Scale::Paper);
        assert_eq!(result.id, "T1");
        assert_eq!(result.verdict, Verdict::Reproduced, "{result}");
        // 5 sizes → 5 rows; the fit note is present.
        assert_eq!(result.rows.len(), 5);
        assert!(result.notes.iter().any(|n| n.starts_with("fit: n log n")), "{result}");
        // Columns derive from the expected model.
        assert_eq!(result.columns[2], "bits/n log n");
    }

    #[test]
    fn sweep_spec_scales_change_the_grid() {
        let spec = counters_spec();
        let smoke = spec.run(&Serial, Scale::Smoke);
        assert_eq!(smoke.rows.len(), 2);
        assert_eq!(smoke.rows[0][0], "12");
        let large = spec.run(&Serial, Scale::Large);
        assert_eq!(large.rows[1][0], "768");
    }

    #[test]
    fn predictor_mismatch_fails_the_verdict() {
        let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
        let spec = ExperimentSpec::sweep(
            "T2",
            "wrong predictor",
            "none",
            GridProfile::uniform(ScaleGrid::new(vec![8, 16, 32], 1)),
            SweepPlan::new(
                move || Box::new(DfaOnePass::new(&lang)),
                || {
                    Box::new(
                        DfaLanguage::from_regex(
                            "(a|b)*abb",
                            &ringleader_automata::Alphabet::from_chars("ab").unwrap(),
                        )
                        .unwrap(),
                    )
                },
                GrowthModel::Linear,
            )
            .predictor(|_| usize::MAX),
        );
        let result = spec.run(&Serial, Scale::Paper);
        assert!(matches!(result.verdict, Verdict::Failed(_)), "{result}");
    }

    #[test]
    fn registry_lookup_is_case_insensitive_and_ordered() {
        let mut registry = Registry::new();
        registry.register(counters_spec());
        assert_eq!(registry.len(), 1);
        assert!(!registry.is_empty());
        assert!(registry.get("t1").is_some());
        assert!(registry.get("T1").is_some());
        assert!(registry.get("T2").is_none());
        assert_eq!(registry.ids(), vec!["T1"]);
    }

    #[test]
    #[should_panic(expected = "duplicate experiment id")]
    fn duplicate_registration_panics() {
        let mut registry = Registry::new();
        registry.register(counters_spec());
        registry.register(counters_spec());
    }

    #[test]
    fn filter_matches_id_and_title_substrings() {
        let mut registry = Registry::new();
        registry.register(counters_spec());
        assert_eq!(registry.filter("t1").len(), 1);
        assert_eq!(registry.filter("COUNTERS").len(), 1);
        assert_eq!(registry.filter("zzz").len(), 0);
    }

    #[test]
    fn harness_runs_by_id() {
        let mut registry = Registry::new();
        registry.register(counters_spec());
        let harness = ExperimentHarness::new(&Serial, Scale::Smoke);
        assert_eq!(harness.scale(), Scale::Smoke);
        let result = harness.run_id(&registry, "t1").expect("registered id");
        assert_eq!(result.verdict, Verdict::Reproduced, "{result}");
        assert!(harness.run_id(&registry, "nope").is_none());
        assert_eq!(harness.run_all(&registry).len(), 1);
    }

    #[test]
    fn schedule_matrix_agrees_for_deterministic_protocols() {
        let tri = ringleader_automata::Alphabet::from_chars("012").unwrap();
        let word = ringleader_automata::Word::from_str(
            &("0".repeat(4) + &"1".repeat(4) + &"2".repeat(4)),
            &tri,
        )
        .unwrap();
        let scenario =
            ScheduleScenario::new("three-counters", || Box::new(ThreeCounters::new()), word);
        assert_eq!(scenario.label(), "three-counters");
        assert_eq!(scenario.word().len(), 12);
        let outcomes = run_schedule_matrix(&Serial, &[scenario], 3);
        assert_eq!(outcomes.len(), 1);
        let outcome = &outcomes[0];
        assert!(outcome.good, "{outcome:?}");
        assert!(outcome.notes.is_empty());
        assert_eq!(outcome.row[2], "5 tested");
        assert!(outcome.row[3].starts_with("identical ("));
        assert_eq!(outcome.row[4], "agree");
    }

    #[test]
    fn scenarios_collect_in_registration_order() {
        let unary = ringleader_automata::Alphabet::from_chars("a").unwrap();
        let word = ringleader_automata::Word::from_str("aaa", &unary).unwrap();
        let mut registry = Registry::new();
        registry.register(counters_spec().with_scenario(ScheduleScenario::new(
            "first",
            || Box::new(ThreeCounters::new()),
            word.clone(),
        )));
        let labels: Vec<String> =
            registry.schedule_scenarios().iter().map(|s| s.label().to_owned()).collect();
        assert_eq!(labels, vec!["first"]);
    }
}
