//! Experiment harness: sweeps, growth-model fitting, and reporting.
//!
//! The paper's claims are asymptotic (`O(n)`, `Θ(n log n)`, `Θ(n²)`,
//! `Θ(g(n))`); reproducing them means measuring bit counts across ring
//! sizes and checking the measured *shape*. This crate provides the four
//! pieces every experiment shares:
//!
//! * sweeping — [`sweep_protocol`] runs a protocol over a size sweep with
//!   per-language workloads, collecting exact bit counts and cross-checking
//!   every decision against the language's ground truth;
//! * fitting — [`fit_series`] classifies a `(n, bits)` series against the
//!   paper's growth models (`n`, `n log n`, `n^1.5`, `n²`) by ratio
//!   stability and log-log slope;
//! * reporting — [`ExperimentResult`] renders experiment tables (text for
//!   the terminal, JSON for `EXPERIMENTS.md` regeneration);
//! * the registry — [`ExperimentSpec`] declares an experiment as data
//!   (grids per [`Scale`] profile, factories, expected model), a
//!   [`Registry`] is the single source of truth for listing and dispatch,
//!   and an [`ExperimentHarness`] executes specs — see the
//!   [`registry`](crate::registry#adding-an-experiment) module docs for
//!   the ~20-line "add an experiment" walkthrough.
//!
//! # Examples
//!
//! Classify a perfectly linear series:
//!
//! ```rust
//! # use ringleader_analysis::{fit_series, GrowthModel};
//! let points: Vec<(usize, f64)> = (4..12).map(|k| (1 << k, 3.0 * (1 << k) as f64)).collect();
//! let fit = fit_series(&points);
//! assert_eq!(fit.best_model, GrowthModel::Linear);
//! assert!((fit.constant - 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod fit;
pub mod registry;
mod report;
mod sweep;

pub use checkpoint::{LedgerEntry, RunLedger, LEDGER_VERSION};
pub use fit::{fit_series, log_log_slope, FitResult, GrowthModel};
pub use registry::{
    fit_label, fit_note, run_schedule_matrix, ExperimentHarness, ExperimentSpec, GridProfile,
    Registry, RunCtx, Scale, ScaleGrid, ScenarioOutcome, ScheduleScenario, SweepPlan,
};
pub use report::{ExperimentResult, Verdict};
pub use sweep::{
    bits_across_schedules, executor_for, run_independent, sweep_protocol, sweep_protocol_with,
    verify_protocol, GridPoint, Parallel, PointJob, RunStats, Serial, SweepConfig, SweepExecutor,
    SweepGrid, SweepPoint, VerificationReport,
};
