//! Experiment result records: terminal tables + JSON.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Did the measurement reproduce the paper's claim?
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The measured shape matches the claim.
    Reproduced,
    /// Matches with caveats (explained in the note).
    Partial(String),
    /// The measurement contradicts the claim.
    Failed(String),
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Reproduced => f.write_str("REPRODUCED"),
            Verdict::Partial(note) => write!(f, "PARTIAL — {note}"),
            Verdict::Failed(note) => write!(f, "FAILED — {note}"),
        }
    }
}

/// One experiment's complete record: identity, claim, data, verdict.
///
/// Displays as an aligned text table; serializes to JSON for the
/// `EXPERIMENTS.md` pipeline.
///
/// # Examples
///
/// ```rust
/// # use ringleader_analysis::{ExperimentResult, Verdict};
/// let mut result = ExperimentResult::new(
///     "E1",
///     "Regular languages cost O(n) bits",
///     "Theorem 1: BIT(n) = n·ceil(log |Q|)",
///     vec!["n".into(), "bits".into()],
/// );
/// result.push_row(vec!["16".into(), "32".into()]);
/// result.set_verdict(Verdict::Reproduced);
/// let text = result.to_string();
/// assert!(text.contains("E1"));
/// assert!(text.contains("REPRODUCED"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "E7").
    pub id: String,
    /// One-line title.
    pub title: String,
    /// The paper claim being reproduced, quoted or paraphrased.
    pub paper_claim: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified — the table is for humans; exact values
    /// live in the JSON).
    pub rows: Vec<Vec<String>>,
    /// Reproduction verdict.
    pub verdict: Verdict,
    /// Free-form notes (fit results, constants, caveats).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Starts a record with an undecided (failed-by-default) verdict.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        paper_claim: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            paper_claim: paper_claim.into(),
            columns,
            rows: Vec::new(),
            verdict: Verdict::Failed("verdict never set".into()),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width must match columns");
        self.rows.push(row);
    }

    /// Appends a note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Sets the verdict.
    pub fn set_verdict(&mut self, verdict: Verdict) {
        self.verdict = verdict;
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics in practice: the struct contains only strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("string-only struct serializes")
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        writeln!(f, "paper: {}", self.paper_claim)?;
        // Column widths.
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, " ")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {cell:>width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        render(f, &self.columns)?;
        let total: usize = widths.iter().sum::<usize>() + widths.len() + 2;
        writeln!(f, " {}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, " note: {note}")?;
        }
        writeln!(f, " verdict: {}", self.verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new(
            "E7",
            "0^n 1^n 2^n in Θ(n log n)",
            "Note 7.2",
            vec!["n".into(), "bits".into(), "bits/(n log n)".into()],
        );
        r.push_row(vec!["27".into(), "540".into(), "4.2".into()]);
        r.push_row(vec!["81".into(), "2100".into(), "4.1".into()]);
        r.push_note("fit: n log n, dispersion 0.02");
        r.set_verdict(Verdict::Reproduced);
        r
    }

    #[test]
    fn table_renders_aligned() {
        let text = sample().to_string();
        assert!(text.contains("== E7"));
        assert!(text.contains("bits/(n log n)"));
        assert!(text.contains("verdict: REPRODUCED"));
        assert!(text.contains("note: fit"));
        // Numbers right-aligned under their headers.
        let lines: Vec<&str> = text.lines().collect();
        let header_pos = lines.iter().position(|l| l.contains("bits/(n log n)")).unwrap();
        assert!(lines[header_pos + 2].ends_with("4.2"));
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut r = sample();
        r.push_row(vec!["just one".into()]);
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Reproduced.to_string(), "REPRODUCED");
        assert!(Verdict::Partial("tiny rings".into()).to_string().contains("tiny rings"));
        assert!(Verdict::Failed("wrong slope".into()).to_string().starts_with("FAILED"));
    }
}
