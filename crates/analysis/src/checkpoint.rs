//! Crash-safe experiment driving: the [`RunLedger`].
//!
//! A massive `experiments` invocation is hours of compute across many
//! specs; an interruption (OOM kill, pre-emption, ctrl-C) should not
//! throw away the specs that already finished. The ledger is the
//! analysis-layer half of the crash-safety story (the engine half is
//! [`ringleader_sim::EngineSnapshot`]): after each spec completes, its
//! full [`ExperimentResult`] is appended to a JSON ledger file on disk;
//! a resumed invocation loads the ledger, skips every completed spec,
//! and splices the stored results into the final envelope **in spec
//! order** — so the resumed run's JSON output is byte-identical to what
//! the uninterrupted run would have produced.
//!
//! Writes are atomic (write to a sibling temp file, then rename), so a
//! crash *during* a ledger write leaves the previous ledger intact
//! rather than a torn file.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::registry::Scale;
use crate::report::ExperimentResult;

/// Current ledger schema version; bumped on incompatible layout change.
pub const LEDGER_VERSION: u32 = 1;

/// One completed spec in a [`RunLedger`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// The experiment id, as registered (`E1`, `E7`, ...).
    pub id: String,
    /// The spec's complete result, exactly as the run produced it.
    pub result: ExperimentResult,
}

/// A persistent record of which specs a (possibly interrupted) batch run
/// has already completed, with their full results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunLedger {
    /// Schema version ([`LEDGER_VERSION`]).
    pub version: u32,
    /// The scale profile the run was started at. A ledger only resumes a
    /// run of the *same* profile — mixing grids would splice results
    /// measured on different workloads into one envelope.
    pub scale: String,
    completed: Vec<LedgerEntry>,
}

impl RunLedger {
    /// An empty ledger for a run at `scale`.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        RunLedger {
            version: LEDGER_VERSION,
            scale: scale.label().to_string(),
            completed: Vec::new(),
        }
    }

    /// Whether this ledger belongs to a run at `scale`.
    #[must_use]
    pub fn matches_scale(&self, scale: Scale) -> bool {
        self.scale == scale.label()
    }

    /// Records a completed spec. Re-recording an id replaces the stored
    /// result (last write wins), keeping one entry per spec.
    pub fn record(&mut self, result: ExperimentResult) {
        let id = result.id.clone();
        if let Some(entry) = self.completed.iter_mut().find(|e| e.id == id) {
            entry.result = result;
        } else {
            self.completed.push(LedgerEntry { id, result });
        }
    }

    /// The stored result for `id`, if that spec completed.
    #[must_use]
    pub fn get(&self, id: &str) -> Option<&ExperimentResult> {
        self.completed.iter().find(|e| e.id == id).map(|e| &e.result)
    }

    /// Whether `id` already completed.
    #[must_use]
    pub fn is_complete(&self, id: &str) -> bool {
        self.get(id).is_some()
    }

    /// Completed entries, in completion order.
    #[must_use]
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.completed
    }

    /// Number of completed specs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether nothing has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// Atomically writes the ledger to `path` (temp file + rename), so an
    /// interrupted save never corrupts an existing ledger.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, json)?;
        fs::rename(&tmp, path)
    }

    /// Loads a ledger from `path`, rejecting unknown schema versions.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::InvalidData`] on malformed JSON or a
    /// version mismatch; propagates filesystem errors otherwise.
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        let ledger: RunLedger = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if ledger.version != LEDGER_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("ledger schema v{} (this build reads v{LEDGER_VERSION})", ledger.version),
            ));
        }
        Ok(ledger)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Verdict;

    fn result(id: &str, bits: usize) -> ExperimentResult {
        let mut r = ExperimentResult::new(id, "t", "c", vec!["n".into(), "bits".into()]);
        r.push_row(vec!["8".into(), bits.to_string()]);
        r.set_verdict(Verdict::Reproduced);
        r
    }

    #[test]
    fn record_get_and_replace() {
        let mut ledger = RunLedger::new(Scale::Smoke);
        assert!(ledger.is_empty());
        ledger.record(result("E1", 16));
        ledger.record(result("E2", 24));
        assert_eq!(ledger.len(), 2);
        assert!(ledger.is_complete("E1"));
        assert!(!ledger.is_complete("E3"));
        // Last write wins, without duplicating the entry.
        ledger.record(result("E1", 99));
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.get("E1").unwrap().rows[0][1], "99");
    }

    #[test]
    fn save_load_round_trips() {
        let dir = std::env::temp_dir().join("ringleader-ledger-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round-trip.json");
        let mut ledger = RunLedger::new(Scale::Paper);
        ledger.record(result("E1", 16));
        ledger.save(&path).unwrap();
        let back = RunLedger::load(&path).unwrap();
        assert_eq!(back, ledger);
        assert!(back.matches_scale(Scale::Paper));
        assert!(!back.matches_scale(Scale::Smoke));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_future_versions() {
        let dir = std::env::temp_dir().join("ringleader-ledger-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("future.json");
        let mut ledger = RunLedger::new(Scale::Smoke);
        ledger.version = LEDGER_VERSION + 1;
        let json = serde_json::to_string(&ledger).unwrap();
        fs::write(&path, json).unwrap();
        let err = RunLedger::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_file(&path).unwrap();
    }
}
