//@ file: crates/core/src/bad.rs
fn f(x: Option<u8>) -> u8 {
    let a = x.unwrap(); //~ panic-in-lib
    let b = x.expect(""); //~ panic-in-lib
    let c = x.expect("invariant: caller checked is_some");
    if a > b {
        panic!("boom"); //~ panic-in-lib
    }
    if b > c {
        unreachable!() //~ panic-in-lib
    } else {
        c
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        Some(1u8).unwrap();
        panic!("fine here");
    }
}
//@ file: crates/core/tests/ok.rs
// Integration tests are structurally exempt.
fn g() {
    None::<u8>.unwrap();
}
//@ file: vendor/parking_lot/src/extra.rs
// Vendor shims mirror upstream APIs whose contract panics.
fn h(x: Option<u8>) -> u8 {
    x.unwrap()
}
