//@ file: crates/core/src/annotated.rs
// A well-formed allow with a justification suppresses its rule, both
// inline and standalone; nothing in this file is a finding.
use std::collections::HashMap; // detlint: allow(nondet-hash-iter): lookup-only intern table
fn f() {
    // detlint: allow(wallclock-in-sim): watchdog heartbeat, not simulation state
    let _t = std::time::Instant::now();
    let _m: HashMap<u8, u8> = HashMap::new(); // detlint: allow(nondet-hash-iter): never iterated
}
