//@ file: crates/core/src/bad.rs
use std::collections::HashMap; // detlint: allow(nondet-hash-iter): //~ detlint-allow nondet-hash-iter
fn f(y: Option<u8>) {
    let _x = y.unwrap(); // detlint: allow(bogus-rule): sincere but unknown //~ detlint-allow panic-in-lib
    let _z = y.unwrap(); // detlint: allow panic-in-lib //~ detlint-allow panic-in-lib
}
