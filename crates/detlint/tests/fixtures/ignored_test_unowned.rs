//@ file: crates/sim/tests/soak.rs
// No soak.yml in this fixture: a reason alone is not ownership.
#[test]
#[ignore = "soak: heavy"] //~ ignored-test-has-owner
fn nobody_runs_this() {}
