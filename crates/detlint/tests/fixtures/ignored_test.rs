//@ soak: run: cargo test -q --workspace -- --include-ignored
//@ file: crates/sim/tests/soak.rs
#[test]
#[ignore] //~ ignored-test-has-owner
fn bare_ignore_needs_a_reason() {}

#[test]
#[ignore = ""] //~ ignored-test-has-owner
fn empty_reason_is_no_reason() {}

#[test]
#[ignore = "soak rig; run with --include-ignored"]
fn owned_by_the_blanket_pass() {}
