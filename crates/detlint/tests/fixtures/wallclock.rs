//@ file: crates/sim/src/bad.rs
fn f() {
    let _t = std::time::Instant::now(); //~ wallclock-in-sim
    let _s = std::time::SystemTime::now(); //~ wallclock-in-sim
}
#[cfg(test)]
mod tests {
    // Test regions inside src/ may time things.
    fn ok() {
        let _t = std::time::Instant::now();
    }
}
//@ file: crates/sim/benches/ok.rs
// benches/ measure elapsed time by design.
fn b() {
    let _t = std::time::Instant::now();
}
//@ file: crates/sim/tests/ok.rs
// tests/ are structurally exempt too.
fn t() {
    let _t = std::time::SystemTime::now();
}
