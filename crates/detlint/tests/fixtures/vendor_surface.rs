//@ file: vendor/widget/src/lib.rs
//! Offline vendored shim of `widget`.
//!
//! Policy: this shim implements exactly the API surface the workspace
//! uses.
pub fn used_by_workspace() {}
pub fn dead_export() {} //~ vendor-surface
pub struct UsedType;
pub use internal::AlsoDead; //~ vendor-surface
mod internal {
    pub struct AlsoDead;
}
#[cfg(test)]
mod tests {
    #[test]
    fn own_tests_do_not_keep_surface_alive() {
        super::dead_export();
    }
}
//@ file: vendor/gadget/src/lib.rs
// Wrong header: no `//! Offline vendored` first line, no Policy. //~ vendor-surface
pub fn g() {}
//@ file: crates/core/src/uses.rs
fn f() -> widget::UsedType {
    widget::used_by_workspace();
    gadget::g();
    widget::UsedType
}
