//@ file: crates/sim/src/bad.rs
fn f() {
    let _r = rand::thread_rng(); //~ unseeded-rng
    let _x: u8 = rand::random(); //~ unseeded-rng
    let _s = StdRng::from_entropy(); //~ unseeded-rng
}
//@ file: vendor/rand/src/extra.rs
// The rule applies inside vendor too: the shim must never grow an
// entropy source.
fn g() {
    let _r = OsRng; //~ unseeded-rng
}
//@ file: crates/sim/tests/also_flagged.rs
#[test]
fn t() {
    let _r = rand::thread_rng(); //~ unseeded-rng
}
//@ file: crates/sim/src/ok.rs
// `random` not rooted at `rand::` is a plain identifier (e.g. a local
// helper) and seeded constructors are fine.
fn h(random: u8) -> u8 {
    let _rng = StdRng::seed_from_u64(7);
    random
}
