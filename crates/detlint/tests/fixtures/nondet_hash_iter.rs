//@ file: crates/core/src/bad.rs
use std::collections::HashMap; //~ nondet-hash-iter
use std::collections::hash_set::HashSet; //~ nondet-hash-iter nondet-hash-iter
fn f() {
    let m: HashMap<u32, u32> = HashMap::new(); //~ nondet-hash-iter nondet-hash-iter
    let _ = m;
}
#[cfg(test)]
mod tests {
    // The rule covers tests too: test assertions on iteration order are
    // exactly how nondeterminism sneaks into "passing" suites.
    use std::collections::HashSet; //~ nondet-hash-iter
}
//@ file: crates/langs/src/ok.rs
// `langs` is not result-affecting: no findings here.
use std::collections::HashMap;
fn g() {
    let _m: HashMap<u32, u32> = HashMap::new();
}
//@ file: crates/core/src/comments_ok.rs
// A HashMap mentioned in comments or strings is not a finding:
// HashMap HashSet
fn h() -> &'static str {
    "HashMap in a string literal"
}
