//! Fixture-based rule tests: each file under `tests/fixtures/` is a
//! virtual multi-file workspace. `//@ file: <rel-path>` starts a new
//! virtual file, `//@ soak: <line>` contributes a line to the virtual
//! `.github/workflows/soak.yml`, and a `//~ <rule> [<rule> …]` marker at
//! the end of a line declares the findings expected on that line. The
//! markers are stripped before linting (so an allow directive's
//! justification stays exactly what the fixture wrote), then the lint
//! output is compared against the declared multiset of
//! `(path, line, rule)` triples — nothing extra, nothing missing.
//!
//! The fixtures directory is skipped by the detlint binary's walker:
//! these snippets are deliberately bad.

use std::collections::BTreeMap;

use detlint::{lint, SourceFile};

/// One expected finding: (virtual path, 1-based line, rule).
type Expectation = (String, u32, String);

fn run_fixture(name: &str) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).expect("fixture file exists");

    let mut files: Vec<(String, String)> = Vec::new();
    let mut soak_lines: Vec<String> = Vec::new();
    let mut expected: Vec<Expectation> = Vec::new();
    for raw in text.lines() {
        if let Some(rel) = raw.strip_prefix("//@ file: ") {
            files.push((rel.trim().to_string(), String::new()));
            continue;
        }
        if let Some(line) = raw.strip_prefix("//@ soak: ") {
            soak_lines.push(line.to_string());
            continue;
        }
        let (current, body) = files.last_mut().expect("//@ file: before content");
        let kept = match raw.rsplit_once("//~") {
            Some((code, rules)) => {
                let line_no = body.lines().count() as u32 + 1;
                for rule in rules.split_whitespace() {
                    expected.push((current.clone(), line_no, rule.to_string()));
                }
                code
            }
            None => raw,
        };
        body.push_str(kept);
        body.push('\n');
    }

    let sources: Vec<SourceFile> =
        files.into_iter().map(|(rel, src)| SourceFile::new(rel, src)).collect();
    let soak_yml = (!soak_lines.is_empty()).then(|| soak_lines.join("\n"));
    let findings = lint(&sources, soak_yml.as_deref());

    let mut got: Vec<Expectation> =
        findings.iter().map(|f| (f.path.clone(), f.line, f.rule.to_string())).collect();
    got.sort();
    expected.sort();
    if got != expected {
        let render = |list: &[Expectation]| {
            let mut counts: BTreeMap<&Expectation, usize> = BTreeMap::new();
            for e in list {
                *counts.entry(e).or_insert(0) += 1;
            }
            counts
                .iter()
                .map(|((p, l, r), n)| format!("  {p}:{l} {r} x{n}"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        panic!(
            "{name}: findings do not match markers\nexpected:\n{}\ngot:\n{}\nraw:\n{}",
            render(&expected),
            render(&got),
            findings.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n"),
        );
    }
}

#[test]
fn nondet_hash_iter_fixture() {
    run_fixture("nondet_hash_iter.rs");
}

#[test]
fn wallclock_fixture() {
    run_fixture("wallclock.rs");
}

#[test]
fn unseeded_rng_fixture() {
    run_fixture("unseeded_rng.rs");
}

#[test]
fn panic_in_lib_fixture() {
    run_fixture("panic_in_lib.rs");
}

#[test]
fn allow_ok_fixture() {
    run_fixture("allow_ok.rs");
}

#[test]
fn allow_bad_fixture() {
    run_fixture("allow_bad.rs");
}

#[test]
fn ignored_test_fixture() {
    run_fixture("ignored_test.rs");
}

#[test]
fn ignored_test_unowned_fixture() {
    run_fixture("ignored_test_unowned.rs");
}

#[test]
fn vendor_surface_fixture() {
    run_fixture("vendor_surface.rs");
}
