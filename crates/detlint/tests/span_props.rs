//! Property tests for the hand-rolled lexer: on *any* input — valid
//! Rust, Rust-ish fragment soup, or arbitrary unicode — the token spans
//! must tile the source exactly: the first token starts at byte 0, each
//! token starts where the previous one ended, every boundary is a char
//! boundary, no token is empty, and the last token ends at `len`. Every
//! rule and the line table build on this invariant.

use detlint::lexer::Lexed;
use proptest::prelude::*;

fn assert_tiles(src: &str) -> Result<(), TestCaseError> {
    let lx = Lexed::new(src.to_string());
    let mut pos = 0usize;
    for t in lx.tokens() {
        prop_assert_eq!(t.start, pos, "gap or overlap before {:?} in {:?}", t, src);
        prop_assert!(t.end > t.start, "empty token {:?} in {:?}", t, src);
        prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
        pos = t.end;
    }
    prop_assert_eq!(pos, src.len(), "tokens do not reach end of {src:?}");
    Ok(())
}

/// Fragments chosen to hit every lexer branch, including unterminated
/// strings/comments when a closing fragment never gets appended.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "pub ",
    "ident",
    "r#type",
    "x1_y",
    "0",
    "42u32",
    "0x1f",
    "1_000.25",
    "1e9",
    "2.5e-3f64",
    "'a'",
    "'\\n'",
    "'\\''",
    "'static",
    "'a ",
    "\"str\\\"esc\"",
    "\"unterminated",
    "b\"bytes\"",
    "r\"raw\"",
    "r#\"raw # quote\"#",
    "r##\"nested \"# inside\"##",
    "br#\"raw bytes\"#",
    "// line comment\n",
    "//! inner doc\n",
    "/// outer doc\n",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    "::",
    ";",
    "->",
    "=>",
    "#[attr]",
    " ",
    "\n",
    "\t",
    "\r\n",
    "é",
    "∀x",
    "日本語",
];

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(512))]

    /// Concatenations of Rust-ish fragments tile exactly.
    #[test]
    fn fragment_soup_tiles(picks in proptest::collection::vec(0..FRAGMENTS.len(), 0..40)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiles(&src)?;
    }

    /// Arbitrary character soup (including non-ASCII) tiles exactly and
    /// never panics the lexer.
    #[test]
    fn char_soup_tiles(chars in proptest::collection::vec(any::<char>(), 0..120)) {
        let src: String = chars.into_iter().collect();
        assert_tiles(&src)?;
    }

    /// Tiling implies the line table is consistent: `line_of` is
    /// monotone in the offset and `line_col` columns are ≥ 1.
    #[test]
    fn line_table_is_monotone(picks in proptest::collection::vec(0..FRAGMENTS.len(), 0..30)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let lx = Lexed::new(src.clone());
        let mut last = 0u32;
        for t in lx.tokens() {
            let (line, col) = lx.line_col(t.start);
            prop_assert!(line >= last);
            prop_assert!(line >= 1 && col >= 1);
            last = line;
        }
    }
}
