//! End-to-end checks of the `detlint` binary: the real workspace tree
//! must be clean (exit 0), and a seeded violation in a scratch
//! workspace must produce exit 1 with a rustc-style `file:line:col`
//! diagnostic pointing at the planted token.

use std::path::{Path, PathBuf};
use std::process::Command;

fn detlint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_detlint"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/detlint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn real_workspace_is_clean() {
    let out = detlint().current_dir(repo_root()).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "detlint found violations in the tree:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("files clean"), "unexpected output: {stdout}");
}

#[test]
fn seeded_violation_fails_with_location() {
    let scratch = std::env::temp_dir().join(format!("detlint-seeded-{}", std::process::id()));
    let crate_src = scratch.join("crates/core/src");
    std::fs::create_dir_all(&crate_src).expect("scratch dirs");
    std::fs::write(scratch.join("Cargo.toml"), "[workspace]\nmembers = []\n")
        .expect("scratch manifest");
    // Line 3, column 23 holds the planted `HashMap`.
    std::fs::write(
        crate_src.join("lib.rs"),
        "//! Scratch crate.\n\nuse std::collections::HashMap;\n",
    )
    .expect("scratch source");

    let out = detlint().current_dir(&scratch).output().expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_dir_all(&scratch).ok();

    assert_eq!(out.status.code(), Some(1), "expected deny exit, got: {stdout}");
    assert!(
        stdout.contains("crates/core/src/lib.rs:3:23: deny[nondet-hash-iter]"),
        "diagnostic does not point at the planted violation:\n{stdout}"
    );
}

#[test]
fn outside_any_workspace_is_an_environment_error() {
    let scratch = std::env::temp_dir().join(format!("detlint-noroot-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let out = detlint().current_dir(&scratch).output().expect("binary runs");
    std::fs::remove_dir_all(&scratch).ok();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no workspace Cargo.toml"));
}
