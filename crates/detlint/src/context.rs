//! Per-file context: path classification, `#[cfg(test)]` regions, and
//! `// detlint: allow(...)` directives.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Token, TokenKind};
use crate::report::Finding;

/// Which cargo target family a file belongs to, by path convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// `src/` — library or binary code shipped in the crate.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `benches/` — benchmarks.
    Benches,
    /// `examples/` — example programs.
    Examples,
}

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Short crate name: `core`, `automata`, … for `crates/<name>`,
    /// `ringleader` for the root package, or the vendor crate name for
    /// `vendor/<name>`.
    pub crate_name: String,
    /// True for `vendor/*` shims.
    pub is_vendor: bool,
    /// Target family.
    pub section: Section,
}

/// Classifies a workspace-relative, `/`-separated path.
#[must_use]
pub fn classify(rel_path: &str) -> FileClass {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let section_of = |s: &str| match s {
        "tests" => Section::Tests,
        "benches" => Section::Benches,
        "examples" => Section::Examples,
        _ => Section::Src,
    };
    match parts.as_slice() {
        ["crates", name, sec, ..] => FileClass {
            crate_name: (*name).to_string(),
            is_vendor: false,
            section: section_of(sec),
        },
        ["vendor", name, sec, ..] => {
            FileClass { crate_name: (*name).to_string(), is_vendor: true, section: section_of(sec) }
        }
        [sec, ..] => FileClass {
            crate_name: "ringleader".to_string(),
            is_vendor: false,
            section: section_of(sec),
        },
        [] => FileClass {
            crate_name: "ringleader".to_string(),
            is_vendor: false,
            section: Section::Src,
        },
    }
}

/// Byte ranges covered by `#[test]` / `#[cfg(test)]` items (usually the
/// trailing `mod tests { … }` block). Rules that only apply to shipped
/// library code skip findings inside these.
#[must_use]
pub fn test_regions(lx: &Lexed) -> Vec<(usize, usize)> {
    let sig: Vec<(usize, Token)> = lx.significant().map(|(i, t)| (i, *t)).collect();
    let text = |t: &Token| lx.text(t);
    let mut regions: Vec<(usize, usize)> = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if text(&sig[i].1) != "#" || i + 1 >= sig.len() || text(&sig[i + 1].1) != "[" {
            i += 1;
            continue;
        }
        // Collect the attribute tokens up to the matching `]`.
        let mut depth = 1usize;
        let mut j = i + 2;
        let mut inner: Vec<&str> = Vec::new();
        while j < sig.len() && depth > 0 {
            match text(&sig[j].1) {
                "[" => depth += 1,
                "]" => depth -= 1,
                s if depth >= 1 => inner.push(s),
                _ => {}
            }
            if depth > 0 {
                j += 1;
            }
        }
        let attr_end = j; // index of the closing `]`
        let is_test_attr = inner == ["test"] || inner == ["cfg", "(", "test", ")"];
        if !is_test_attr {
            i = attr_end.min(sig.len() - 1) + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end + 1;
        while k + 1 < sig.len() && text(&sig[k].1) == "#" && text(&sig[k + 1].1) == "[" {
            let mut d = 1usize;
            k += 2;
            while k < sig.len() && d > 0 {
                match text(&sig[k].1) {
                    "[" => d += 1,
                    "]" => d -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        // Scan to the item's body `{` (or a bodiless `;`) at bracket
        // depth 0 — `fn f(x: [u8; 3])` must not end the item early.
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut end_offset = None;
        while k < sig.len() {
            match text(&sig[k].1) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => {
                    end_offset = Some(sig[k].1.end);
                    break;
                }
                "{" if paren == 0 && bracket == 0 => {
                    // Match braces to the end of the body.
                    let mut braces = 0usize;
                    while k < sig.len() {
                        match text(&sig[k].1) {
                            "{" => braces += 1,
                            "}" => {
                                braces -= 1;
                                if braces == 0 {
                                    end_offset = Some(sig[k].1.end);
                                }
                            }
                            _ => {}
                        }
                        if end_offset.is_some() {
                            break;
                        }
                        k += 1;
                    }
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        let start = sig[i].1.start;
        let end = end_offset.unwrap_or(lx.src().len());
        regions.push((start, end));
        // Resume after the region (nested test attrs inside are moot).
        while i < sig.len() && sig[i].1.start < end {
            i += 1;
        }
    }
    regions
}

/// True when `offset` falls inside any of `regions`.
#[must_use]
pub fn in_regions(regions: &[(usize, usize)], offset: usize) -> bool {
    regions.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Parsed `// detlint: allow(<rule>): <justification>` directives for
/// one file: which rules are suppressed on which lines, plus findings
/// for malformed directives (wrong syntax, unknown rule, or an empty
/// justification — the escape hatch *requires* a reason).
#[derive(Debug, Default)]
pub struct Allows {
    by_line: BTreeMap<u32, BTreeSet<String>>,
    /// Diagnostics for malformed directives; never suppressible.
    pub malformed: Vec<Finding>,
}

impl Allows {
    /// Whether `rule` is allowed on `line`.
    #[must_use]
    pub fn covers(&self, line: u32, rule: &str) -> bool {
        self.by_line.get(&line).is_some_and(|rules| rules.contains(rule))
    }
}

/// Scans comments for allow directives. An inline directive covers its
/// own line; a directive alone on its line covers the next line that
/// holds a significant token.
#[must_use]
pub fn parse_allows(rel_path: &str, lx: &Lexed, known_rules: &[&str]) -> Allows {
    let mut allows = Allows::default();
    for (idx, token) in lx.tokens().iter().enumerate() {
        if token.kind != TokenKind::LineComment {
            continue;
        }
        let body = lx.text(token).trim_start_matches('/');
        // Doc comments (`///`, `//!`) are prose, not directives.
        if lx.text(token).starts_with("///") || lx.text(token).starts_with("//!") {
            continue;
        }
        let Some(rest) = body.trim_start().strip_prefix("detlint:") else {
            continue;
        };
        let (line, col) = lx.line_col(token.start);
        let mut bad = |message: String| {
            allows.malformed.push(Finding {
                rule: "detlint-allow",
                path: rel_path.to_string(),
                line,
                col,
                message,
            });
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            bad("malformed directive: expected `detlint: allow(<rule>): <justification>`"
                .to_string());
            continue;
        };
        let Some((rule, after)) = rest.split_once(')') else {
            bad("malformed directive: missing `)` after rule name".to_string());
            continue;
        };
        let rule = rule.trim();
        if !known_rules.contains(&rule) {
            bad(format!("unknown rule `{rule}` in allow directive"));
            continue;
        }
        let Some(justification) = after.trim_start().strip_prefix(':') else {
            bad(format!("allow({rule}) is missing its `: <justification>`"));
            continue;
        };
        if justification.trim().is_empty() {
            bad(format!("allow({rule}) must carry a non-empty justification"));
            continue;
        }
        // Inline (code before the comment on the same line) covers this
        // line; standalone covers the next significant line.
        let standalone = !lx.tokens()[..idx]
            .iter()
            .rev()
            .take_while(|t| {
                lx.line_of(t.start) == line || lx.line_of(t.end.saturating_sub(1)) == line
            })
            .any(|t| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            });
        let target = if standalone {
            lx.significant().map(|(_, t)| lx.line_of(t.start)).find(|&l| l > line)
        } else {
            Some(line)
        };
        if let Some(target) = target {
            allows.by_line.entry(target).or_default().insert(rule.to_string());
        }
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/graph.rs"),
            FileClass { crate_name: "core".into(), is_vendor: false, section: Section::Src }
        );
        assert!(classify("vendor/rand/src/lib.rs").is_vendor);
        assert_eq!(classify("crates/sim/tests/determinism.rs").section, Section::Tests);
        assert_eq!(classify("crates/bench/benches/protocols.rs").section, Section::Benches);
        assert_eq!(classify("src/bin/ringsim.rs").crate_name, "ringleader");
        assert_eq!(classify("tests/end_to_end.rs").section, Section::Tests);
        assert_eq!(classify("examples/quickstart.rs").section, Section::Examples);
    }

    #[test]
    fn cfg_test_mod_is_a_region() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lx = Lexed::new(src.to_string());
        let regions = test_regions(&lx);
        assert_eq!(regions.len(), 1);
        let unwrap_at = src.find("unwrap").expect("present");
        let tail_at = src.find("tail").expect("present");
        assert!(in_regions(&regions, unwrap_at));
        assert!(!in_regions(&regions, tail_at));
        assert!(!in_regions(&regions, 0));
    }

    #[test]
    fn cfg_not_test_is_not_a_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() {} }\n";
        let lx = Lexed::new(src.to_string());
        assert!(test_regions(&lx).is_empty());
    }

    #[test]
    fn test_fn_with_tricky_signature() {
        let src = "#[test]\nfn f(x: [u8; 3]) { body(); }\nfn after() {}\n";
        let lx = Lexed::new(src.to_string());
        let regions = test_regions(&lx);
        assert_eq!(regions.len(), 1);
        assert!(in_regions(&regions, src.find("body").expect("present")));
        assert!(!in_regions(&regions, src.find("after").expect("present")));
    }

    #[test]
    fn allow_inline_and_standalone() {
        let src = "\
use x::HashMap; // detlint: allow(nondet-hash-iter): lookup only\n\
// detlint: allow(wallclock-in-sim): watchdog, not sim state\n\
let t = Instant::now();\n";
        let lx = Lexed::new(src.to_string());
        let allows = parse_allows("f.rs", &lx, &["nondet-hash-iter", "wallclock-in-sim"]);
        assert!(allows.malformed.is_empty(), "{:?}", allows.malformed);
        assert!(allows.covers(1, "nondet-hash-iter"));
        assert!(allows.covers(3, "wallclock-in-sim"));
        assert!(!allows.covers(2, "wallclock-in-sim"));
    }

    #[test]
    fn allow_requires_justification_and_known_rule() {
        let src = "let a = 1; // detlint: allow(nondet-hash-iter):\nlet b = 2; // detlint: allow(bogus): why\n";
        let lx = Lexed::new(src.to_string());
        let allows = parse_allows("f.rs", &lx, &["nondet-hash-iter"]);
        assert_eq!(allows.malformed.len(), 2);
        assert!(!allows.covers(1, "nondet-hash-iter"));
        assert!(allows.malformed[0].message.contains("justification"));
        assert!(allows.malformed[1].message.contains("unknown rule"));
    }
}
