//! detlint — the workspace determinism & concurrency lint pass.
//!
//! The ringleader workspace reproduces a theory result (Mansour–Zaks,
//! PODC 1986), so its experiments must be *byte-identical* across
//! reruns, worker counts, and machines. `rustc` and `clippy` cannot see
//! the repo-specific contracts that make that true, so this crate
//! hand-rolls a Rust lexer (no `syn` — the workspace is offline and
//! vendors only thin shims) and enforces them token-structurally over
//! every workspace and vendor source file. CI runs it deny-by-default:
//! any finding is a non-zero exit.
//!
//! # Rules
//!
//! - **`nondet-hash-iter`** — `HashMap`/`HashSet` are banned in
//!   result-affecting crates (`core`, `automata`, `sim`, `analysis`,
//!   `bench`, the root `ringleader` package, and `detlint` itself),
//!   tests included. Hash iteration order varies per process (and per
//!   `RandomState`), so any escape of that order — into a golden file,
//!   a proof transcript, a renumbering — silently breaks reproduction.
//!   Use `BTreeMap`/`BTreeSet` or a sorted collect; allow-annotate only
//!   where order provably cannot escape (e.g. a lookup-only intern
//!   table keyed by a type without `Ord`).
//! - **`wallclock-in-sim`** — `Instant`/`SystemTime` are banned in
//!   shipped `src/` code. Simulated executions must depend only on
//!   inputs and seeds; wall-clock reads belong in `tests/`/`benches/`
//!   (structurally exempt) or the vendored timing shims (crossbeam's
//!   deadline plumbing, criterion's timer — vendor is exempt), or
//!   behind an explicit allow naming the watchdog role. A crate outside
//!   the result-affecting set may carve itself out wholesale by
//!   declaring `Policy:` + `wallclock-in-sim` in its leading `//!` doc
//!   header — how `ringleader_obs` hosts the workspace's only monotonic
//!   clock.
//! - **`unseeded-rng`** — `from_entropy`, `thread_rng`, `OsRng`,
//!   `getrandom`, and `rand::random` are banned *everywhere*, vendor
//!   and tests included. Every random stream must derive from an
//!   explicit seed (`StdRng::seed_from_u64`) so reruns and
//!   `--workers 1` vs `--workers 8` sweeps agree byte-for-byte.
//! - **`panic-in-lib`** — `.unwrap()`, `panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!`, and `.expect` without a non-empty
//!   string literal are banned in shipped `src/` code outside
//!   `#[cfg(test)]` regions. The sanctioned form is
//!   `.expect("reason")` — the message is the machine-checked
//!   justification. Tests, benches, and examples may panic freely;
//!   vendor shims are exempt (they mirror upstream APIs whose contract
//!   panics).
//! - **`obs-boundary`** — the value-reading accessors of
//!   `ringleader_obs::Metrics` (`.run_report()`, `.counter_value()`,
//!   `.gauge_value()`) are banned in shipped `src/` code of
//!   result-affecting crates outside `#[cfg(test)]` regions. Recording
//!   telemetry is always fine; *reading* it back where results are
//!   computed would let outputs depend on whether metrics are enabled.
//!   Reads belong in tests, benches, and report writers.
//! - **`vendor-surface`** — every `vendor/*/src/lib.rs` must open with
//!   its `//! Offline vendored …` policy doc header (including a
//!   `Policy:` line), and every module-level `pub` item a shim exports
//!   must be referenced by the workspace. Dead shim surface is
//!   unreviewed, untested-by-use code; delete it or start using it.
//!   See [`vendor_surface`] for the liveness analysis.
//! - **`ignored-test-has-owner`** — every `#[ignore]` needs a
//!   non-empty reason string *and* an owner in
//!   `.github/workflows/soak.yml` (named there, or covered by a
//!   blanket `--workspace … --include-ignored` pass). An ignored test
//!   nobody runs is dead coverage.
//!
//! # The escape hatch
//!
//! ```text
//! // detlint: allow(<rule>): <justification>
//! ```
//!
//! Inline (after code) it covers its own line; alone on a line it
//! covers the next line holding code. The justification is mandatory
//! and must be non-empty; an empty justification, an unknown rule
//! name, or malformed syntax is itself reported (rule `detlint-allow`)
//! and suppresses nothing — a broken allow never hides the finding it
//! meant to excuse.
//!
//! # Diagnostics
//!
//! Findings render rustc-style, `file:line:col: deny[rule]: message`,
//! sorted by `(path, line, col, rule)` so output is stable across runs
//! — the linter holds itself to the determinism bar it enforces.

pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod vendor_surface;

use std::collections::BTreeSet;

use context::{classify, parse_allows, test_regions, Allows, FileClass};
use lexer::{Lexed, TokenKind};
use report::Finding;

/// One source file, lexed and classified, ready for the rules.
pub struct SourceFile {
    /// Workspace-relative, `/`-separated path.
    pub rel_path: String,
    /// The lexed source.
    pub lexed: Lexed,
    /// Path-derived crate/section classification.
    pub class: FileClass,
    /// Byte ranges of `#[test]` / `#[cfg(test)]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Every identifier token in the file (for cross-file liveness).
    pub idents: BTreeSet<String>,
    /// Parsed allow directives.
    pub allows: Allows,
}

impl SourceFile {
    /// Lexes and classifies `src` as the file at `rel_path`.
    #[must_use]
    pub fn new(rel_path: String, src: String) -> Self {
        let lexed = Lexed::new(src);
        let class = classify(&rel_path);
        let test_regions = test_regions(&lexed);
        let idents = lexed
            .tokens()
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| lexed.text(t).to_string())
            .collect();
        let allows = parse_allows(&rel_path, &lexed, rules::RULES);
        Self { rel_path, lexed, class, test_regions, idents, allows }
    }
}

/// Lints a set of files as one workspace: runs every per-file rule and
/// the cross-file vendor-surface rule, applies allow directives, adds
/// findings for malformed directives, and returns the result sorted by
/// `(path, line, col, rule)`.
#[must_use]
pub fn lint(files: &[SourceFile], soak_yml: Option<&str>) -> Vec<Finding> {
    let mut raw = Vec::new();
    for file in files {
        rules::run_file_rules(file, soak_yml, &mut raw);
    }
    vendor_surface::run(files, &mut raw);

    let mut findings = Vec::new();
    for finding in raw {
        let suppressed = files
            .iter()
            .find(|f| f.rel_path == finding.path)
            .is_some_and(|f| f.allows.covers(finding.line, finding.rule));
        if !suppressed {
            findings.push(finding);
        }
    }
    for file in files {
        findings.extend(file.allows.malformed.iter().cloned());
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel_path: &str, src: &str) -> Vec<SourceFile> {
        vec![SourceFile::new(rel_path.to_string(), src.to_string())]
    }

    #[test]
    fn allow_suppresses_matching_rule_only() {
        let files = one(
            "crates/core/src/x.rs",
            "use std::collections::HashMap; // detlint: allow(nondet-hash-iter): lookup only\n\
             fn f() { let t = Instant::now(); }\n",
        );
        let findings = lint(&files, None);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "wallclock-in-sim");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn malformed_allow_reports_and_does_not_suppress() {
        let files = one(
            "crates/core/src/x.rs",
            "use std::collections::HashMap; // detlint: allow(nondet-hash-iter):\n",
        );
        let findings = lint(&files, None);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"nondet-hash-iter"), "{findings:?}");
        assert!(rules.contains(&"detlint-allow"), "{findings:?}");
    }

    #[test]
    fn obs_boundary_bans_value_reads_in_result_affecting_src() {
        let files = one(
            "crates/sim/src/x.rs",
            "fn f(m: &Metrics) { let v = m.counter_value(\"c\"); let r = m.run_report(); }\n",
        );
        let findings = lint(&files, None);
        let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
        assert_eq!(rules.iter().filter(|r| **r == "obs-boundary").count(), 2, "{findings:?}");
    }

    #[test]
    fn obs_boundary_permits_recording_and_exempt_contexts() {
        // Recording methods in src are fine.
        let recording = one(
            "crates/sim/src/x.rs",
            "fn f(m: &Metrics) { m.counter_add(\"c\", 1); m.write_report(p); }\n",
        );
        assert!(lint(&recording, None).is_empty(), "{:?}", lint(&recording, None));
        // Reads in tests/ and #[cfg(test)] regions are fine.
        let in_tests =
            one("crates/sim/tests/x.rs", "fn f(m: &Metrics) { let v = m.counter_value(\"c\"); }\n");
        assert!(lint(&in_tests, None).is_empty());
        let in_cfg_test = one(
            "crates/sim/src/x.rs",
            "#[cfg(test)]\nmod tests { fn f(m: &Metrics) { m.gauge_value(\"g\"); } }\n",
        );
        assert!(lint(&in_cfg_test, None).is_empty());
        // Non-result-affecting crates (obs itself) may read.
        let in_obs =
            one("crates/obs/src/x.rs", "fn f(m: &Metrics) { let v = m.counter_value(\"c\"); }\n");
        assert!(lint(&in_obs, None).is_empty());
    }

    #[test]
    fn wallclock_policy_header_carves_out_non_result_affecting_crates() {
        let header = "//! Timing home.\n//!\n//! Policy: wallclock-in-sim carve-out — this \
                      crate owns the monotonic clock.\n";
        let with_header =
            one("crates/obs/src/lib.rs", &format!("{header}fn f() {{ Instant::now(); }}\n"));
        assert!(lint(&with_header, None).is_empty(), "{:?}", lint(&with_header, None));
        // No header → still flagged, even outside the result set.
        let bare = one("crates/obs/src/lib.rs", "fn f() { Instant::now(); }\n");
        assert_eq!(lint(&bare, None).len(), 1);
        // A result-affecting crate cannot carve itself out.
        let in_sim =
            one("crates/sim/src/lib.rs", &format!("{header}fn f() {{ Instant::now(); }}\n"));
        assert_eq!(lint(&in_sim, None).len(), 1);
    }

    #[test]
    fn findings_are_sorted() {
        let files = vec![
            SourceFile::new(
                "crates/sim/src/b.rs".to_string(),
                "fn f() { x.unwrap(); let t = Instant::now(); }\n".to_string(),
            ),
            SourceFile::new(
                "crates/core/src/a.rs".to_string(),
                "use std::collections::HashSet;\n".to_string(),
            ),
        ];
        let findings = lint(&files, None);
        let mut sorted = findings.clone();
        sorted.sort_by(|a, b| {
            (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule))
        });
        assert_eq!(findings, sorted);
        assert_eq!(findings[0].path, "crates/core/src/a.rs");
    }
}
