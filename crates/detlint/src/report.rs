//! Diagnostics: one [`Finding`] per violation, rendered rustc-style as
//! `file:line:col: deny[rule]: message` so terminals and editors make
//! them clickable.

use std::fmt;

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `nondet-hash-iter`.
    pub rule: &'static str,
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column (chars) of the offending token.
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}: deny[{}]: {}", self.path, self.line, self.col, self.rule, self.message)
    }
}
