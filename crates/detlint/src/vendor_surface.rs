//! **vendor-surface** — the cross-file rule over `vendor/*/src/lib.rs`.
//!
//! Two checks:
//!
//! 1. **Policy header** — every vendor shim's `lib.rs` must open with a
//!    `//! Offline vendored …` doc header and state the maintenance
//!    policy (a line containing `Policy:`): shims implement exactly the
//!    API surface the workspace uses and are extended, not worked
//!    around, when new code needs more.
//! 2. **Dead `pub` surface** — every module-level `pub` item a shim
//!    exports must be referenced somewhere. Liveness is decided
//!    token-structurally, since there is no name resolution here:
//!    an item is alive if its identifier occurs in any workspace file
//!    outside the shim's own directory (its own tests do not keep it
//!    alive — a shim API only its own tests exercise is dead weight),
//!    or if it occurs inside the shim's `src/` in a *using* position:
//!    not its declaration, not an `impl`-header mention, not inside an
//!    `impl` block of the item itself, not `::`-qualified through a
//!    foreign path root, and not inside `#[cfg(test)]` regions. Items
//!    declared `pub(crate)`/`pub(super)` are not surface. A `pub fn`
//!    carrying `#[proc_macro_derive(Name)]` exports `Name`, and `Name`
//!    is what must be referenced.

use std::collections::{BTreeMap, BTreeSet};

use crate::context::in_regions;
use crate::lexer::{Token, TokenKind};
use crate::report::Finding;
use crate::rules::Walker;
use crate::SourceFile;

/// A module-level `pub` export of a vendor shim.
#[derive(Debug)]
struct PubItem {
    /// The exported name to search for.
    name: String,
    /// Byte offset of the name's declaration token (excluded from
    /// liveness so a declaration does not keep itself alive).
    decl_offset: usize,
    /// Token index of the name (for diagnostics).
    sig_index: usize,
    /// Item kind for the message (`fn`, `struct`, `pub use`, …).
    kind: String,
}

/// Keywords that introduce a nameable item after `pub`.
const ITEM_KEYWORDS: &[&str] =
    &["fn", "struct", "enum", "union", "trait", "type", "const", "static", "mod"];

/// Extracts module-level `pub` items, `impl` regions (tagged with the
/// self-type name), and module names from one vendor `lib.rs`.
struct LibSurface {
    items: Vec<PubItem>,
    /// (self-type name, start, end) byte regions of `impl` blocks.
    impl_regions: Vec<(String, usize, usize)>,
    /// Names of `mod` items — path roots that stay in-crate.
    mod_names: BTreeSet<String>,
}

/// True for tokens that may precede the self-type in an impl header
/// without being the self-type themselves.
fn impl_header_filler(text: &str) -> bool {
    matches!(text, "mut" | "dyn" | "const" | "&" | "?" | "!")
}

fn scan_lib(file: &SourceFile) -> LibSurface {
    let w = Walker::new(&file.lexed);
    let sig: &[Token] = w.tokens();
    let mut items = Vec::new();
    let mut impl_regions = Vec::new();
    let mut mod_names = BTreeSet::new();

    // Brace stack: (is_mod, is_pub_mod) per open brace. Items inside
    // `mod` braces are still module-level; they are exported *surface*
    // only when every enclosing mod is itself `pub`.
    let mut stack: Vec<(bool, bool)> = Vec::new();
    let mut pending_mod: Option<bool> = None;
    let mut i = 0;
    while i < sig.len() {
        let text = w.text(i);
        let at_module_level = stack.iter().all(|&(is_mod, _)| is_mod);
        let surface_level = at_module_level && stack.iter().all(|&(_, is_pub)| is_pub);
        match text {
            "{" => {
                stack.push((pending_mod.is_some(), pending_mod == Some(true)));
                pending_mod = None;
            }
            "}" => {
                stack.pop();
            }
            ";" => pending_mod = None,
            "mod" if at_module_level => {
                pending_mod = Some(w.text(i.wrapping_sub(1)) == "pub");
                // Every mod name (pub or not) is an in-crate path root.
                if w.kind(i + 1) == Some(TokenKind::Ident) {
                    mod_names.insert(w.text(i + 1).to_string());
                }
            }
            "impl" if at_module_level && !in_regions(&file.test_regions, sig[i].start) => {
                // Header runs to the body `{`; self-type is the first
                // depth-0 ident (after `for`, when present).
                let mut j = i + 1;
                let mut header: Vec<usize> = Vec::new();
                while j < sig.len() && w.text(j) != "{" && w.text(j) != ";" {
                    header.push(j);
                    j += 1;
                }
                // With a `for`, the self-type follows the depth-0 `for`;
                // otherwise it is the first depth-0 path in the header.
                let mut angle = 0i32;
                let mut scan_from = 0usize;
                for (p, &k) in header.iter().enumerate() {
                    match w.text(k) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        "for" if angle == 0 => scan_from = p + 1,
                        _ => {}
                    }
                }
                angle = 0;
                let mut self_name = None;
                for &k in &header[scan_from..] {
                    match w.text(k) {
                        "<" => angle += 1,
                        ">" => angle -= 1,
                        t if angle == 0
                            && sig[k].kind == TokenKind::Ident
                            && !impl_header_filler(t)
                            && w.text(k + 1) != "!" =>
                        {
                            // Take the *last* segment of a path like
                            // `fmt::Display` by preferring a later ident
                            // only when this one is followed by `::`.
                            if w.text(k + 1) == ":" && w.text(k + 2) == ":" {
                                continue;
                            }
                            self_name = Some(t.to_string());
                            break;
                        }
                        _ => {}
                    }
                }
                if w.text(j) == "{" {
                    // Find the matching close brace.
                    let mut depth = 0i32;
                    let mut k = j;
                    let mut end = file.lexed.src().len();
                    while k < sig.len() {
                        match w.text(k) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    end = sig[k].end;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    if let Some(name) = self_name {
                        impl_regions.push((name, sig[i].start, end));
                    }
                    // The impl body is a non-mod block; let the main
                    // loop walk it (it pushes/pops the braces).
                }
            }
            "pub" if surface_level && !in_regions(&file.test_regions, sig[i].start) => {
                // `pub(crate)`/`pub(super)` are not exported surface.
                if w.text(i + 1) == "(" {
                    i += 1;
                    continue;
                }
                // Derive exports: attribute sits before `pub`, e.g.
                // `#[proc_macro_derive(Serialize)] pub fn derive_…`.
                if let Some((name, kind)) = derive_export(&w, i) {
                    items.push(PubItem { name, decl_offset: sig[i].start, sig_index: i, kind });
                    i += 1;
                    continue;
                }
                if w.text(i + 1) == "use" {
                    collect_use_leaves(&w, i + 2, &mut items);
                    i += 1;
                    continue;
                }
                // Skip qualifiers to the item keyword, then the name.
                let mut j = i + 1;
                while matches!(w.text(j), "unsafe" | "async" | "extern")
                    || w.kind(j) == Some(TokenKind::Str)
                {
                    j += 1;
                }
                let mut kw = w.text(j).to_string();
                if kw == "const" && w.text(j + 1) == "fn" {
                    j += 1;
                    kw = "fn".to_string();
                }
                if ITEM_KEYWORDS.contains(&kw.as_str()) && w.kind(j + 1) == Some(TokenKind::Ident) {
                    let name = w.text(j + 1).to_string();
                    items.push(PubItem {
                        name,
                        decl_offset: sig[j + 1].start,
                        sig_index: j + 1,
                        kind: kw,
                    });
                }
            }
            // Only `#[macro_export]` macros are public surface.
            "macro_rules"
                if w.text(i + 1) == "!"
                    && at_module_level
                    && has_macro_export_attr(&w, i)
                    && w.kind(i + 2) == Some(TokenKind::Ident) =>
            {
                items.push(PubItem {
                    name: w.text(i + 2).to_string(),
                    decl_offset: sig[i + 2].start,
                    sig_index: i + 2,
                    kind: "macro".to_string(),
                });
            }
            _ => {}
        }
        i += 1;
    }
    LibSurface { items, impl_regions, mod_names }
}

/// If the attribute block immediately before `pub_index` is
/// `#[proc_macro_derive(Name, …)]`, returns `Name`.
fn derive_export(w: &Walker<'_>, pub_index: usize) -> Option<(String, String)> {
    // Walk back over the closing `]` of an attribute.
    if w.text(pub_index.wrapping_sub(1)) != "]" {
        return None;
    }
    let mut k = pub_index - 1;
    let mut depth = 0i32;
    loop {
        match w.text(k) {
            "]" => depth += 1,
            "[" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if w.text(k.wrapping_sub(1)) != "#" {
        return None;
    }
    if w.text(k + 1) == "proc_macro_derive" && w.text(k + 2) == "(" {
        return Some((w.text(k + 3).to_string(), "derive macro".to_string()));
    }
    None
}

/// True when one of the attributes directly above token `i` is
/// `#[macro_export]`.
fn has_macro_export_attr(w: &Walker<'_>, i: usize) -> bool {
    let mut k = i;
    while k >= 2 && w.text(k.wrapping_sub(1)) == "]" {
        // Walk back to the matching `[`.
        let mut depth = 0i32;
        let mut j = k - 1;
        let mut saw_export = false;
        loop {
            match w.text(j) {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "macro_export" => saw_export = true,
                _ => {}
            }
            if j == 0 {
                return false;
            }
            j -= 1;
        }
        if j == 0 || w.text(j - 1) != "#" {
            return false;
        }
        if saw_export {
            return true;
        }
        k = j - 1;
    }
    false
}

/// Collects the leaf names of a `pub use` tree starting at token `from`
/// (just past `use`): `a::b::C` → `C`, `x::{A, B as R}` → `A`, `R`;
/// glob imports export no checkable name.
fn collect_use_leaves(w: &Walker<'_>, from: usize, items: &mut Vec<PubItem>) {
    let mut pending: Option<(String, usize, usize)> = None;
    let mut j = from;
    while j < w.tokens().len() {
        let text = w.text(j);
        match text {
            ";" => break,
            "," | "}" => {
                if let Some((name, off, idx)) = pending.take() {
                    items.push(PubItem {
                        name,
                        decl_offset: off,
                        sig_index: idx,
                        kind: "use".to_string(),
                    });
                }
            }
            "{" | ":" | "*" => {
                if text == "*" {
                    pending = None;
                }
            }
            _ => {
                if w.kind(j) == Some(TokenKind::Ident) {
                    let tok = w.tokens()[j];
                    pending = Some((text.to_string(), tok.start, j));
                }
            }
        }
        j += 1;
    }
    if let Some((name, off, idx)) = pending.take() {
        items.push(PubItem { name, decl_offset: off, sig_index: idx, kind: "use".to_string() });
    }
}

/// Path roots that always resolve outside the shim.
const FOREIGN_ROOTS: &[&str] = &["std", "core", "alloc"];

/// Runs the vendor-surface rule over all files.
pub fn run(files: &[SourceFile], findings: &mut Vec<Finding>) {
    // Group vendor lib.rs files by crate.
    let mut libs: BTreeMap<&str, &SourceFile> = BTreeMap::new();
    for f in files {
        if f.class.is_vendor && f.rel_path.ends_with("/src/lib.rs") {
            libs.insert(f.class.crate_name.as_str(), f);
        }
    }
    for (vendor, lib) in libs {
        check_header(lib, findings);
        let surface = scan_lib(lib);
        let own_dir = format!("vendor/{vendor}/");
        for item in &surface.items {
            if referenced_outside(files, &own_dir, &item.name)
                || referenced_in_crate(lib, &surface, item)
            {
                continue;
            }
            let w = Walker::new(&lib.lexed);
            findings.push(w.finding_at(
                lib,
                "vendor-surface",
                item.sig_index,
                format!(
                    "dead vendor shim surface: pub {} `{}` is referenced nowhere in the \
                     workspace — delete it or start using it",
                    item.kind, item.name
                ),
            ));
        }
    }
}

/// Policy header check: `//! Offline vendored …` first line plus a
/// `Policy:` line somewhere in the leading doc block.
fn check_header(lib: &SourceFile, findings: &mut Vec<Finding>) {
    let src = lib.lexed.src();
    let first = src.lines().next().unwrap_or("");
    let header: String = src
        .lines()
        .take_while(|l| l.starts_with("//!") || l.trim().is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    if !first.starts_with("//! Offline vendored") || !header.contains("Policy:") {
        findings.push(Finding {
            rule: "vendor-surface",
            path: lib.rel_path.clone(),
            line: 1,
            col: 1,
            message: "vendor shim must open with its `//! Offline vendored …` policy doc \
                      header (including a `Policy:` line)"
                .to_string(),
        });
    }
}

/// Any occurrence of `name` as a code identifier outside the vendor
/// crate's own directory.
fn referenced_outside(files: &[SourceFile], own_dir: &str, name: &str) -> bool {
    files.iter().filter(|f| !f.rel_path.starts_with(own_dir)).any(|f| f.idents.contains(name))
}

/// A *using* in-crate occurrence inside the shim's own src (see module
/// docs for the exclusions).
fn referenced_in_crate(lib: &SourceFile, surface: &LibSurface, item: &PubItem) -> bool {
    let w = Walker::new(&lib.lexed);
    let sig = w.tokens();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokenKind::Ident || w.text(i) != item.name || t.start == item.decl_offset {
            continue;
        }
        if in_regions(&lib.test_regions, t.start) {
            continue;
        }
        // Inside an impl block of the item itself (or its header).
        if surface
            .impl_regions
            .iter()
            .any(|(n, s, e)| n == &item.name && t.start >= *s && t.start < *e)
        {
            continue;
        }
        // Declaration-position mention elsewhere (e.g. shadowing).
        let prev = w.text(i.wrapping_sub(1));
        if ITEM_KEYWORDS.contains(&prev) {
            continue;
        }
        // `::`-qualified: count only paths rooted in this crate.
        if prev == ":" && w.text(i.wrapping_sub(2)) == ":" {
            if let Some(root) = path_root(&w, i) {
                let own = root == "crate"
                    || root == "self"
                    || root == "super"
                    || surface.mod_names.contains(&root)
                    || root == item.name;
                if !own || FOREIGN_ROOTS.contains(&root.as_str()) {
                    continue;
                }
            }
        }
        return true;
    }
    false
}

/// Walks `seg1::seg2::name` back to `seg1` from the index of `name`.
fn path_root(w: &Walker<'_>, mut i: usize) -> Option<String> {
    loop {
        if w.text(i.wrapping_sub(1)) == ":" && w.text(i.wrapping_sub(2)) == ":" {
            let prev = i.checked_sub(3)?;
            if w.kind(prev) == Some(TokenKind::Ident) {
                i = prev;
                continue;
            }
            // Non-ident path root, e.g. `<T as Trait>::name`.
            return None;
        }
        return Some(w.text(i).to_string());
    }
}
