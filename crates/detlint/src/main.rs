//! The detlint binary: walk the workspace, lint every `.rs` file, and
//! exit non-zero on any finding (deny-by-default). Exit codes: 0 clean,
//! 1 findings, 2 I/O or environment error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use detlint::{lint, SourceFile};

/// Directories under the workspace root that hold lintable sources.
const ROOTS: &[&str] = &["src", "tests", "benches", "examples", "crates", "vendor"];

fn main() -> ExitCode {
    let root = match workspace_root() {
        Ok(root) => root,
        Err(message) => {
            eprintln!("detlint: {message}");
            return ExitCode::from(2);
        }
    };
    let mut rel_paths = Vec::new();
    for top in ROOTS {
        if let Err(message) = collect_rs(&root, &root.join(top), &mut rel_paths) {
            eprintln!("detlint: {message}");
            return ExitCode::from(2);
        }
    }
    rel_paths.sort();

    let mut files = Vec::with_capacity(rel_paths.len());
    for rel in rel_paths {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => files.push(SourceFile::new(rel, src)),
            Err(err) => {
                eprintln!("detlint: failed to read {rel}: {err}");
                return ExitCode::from(2);
            }
        }
    }
    let soak_yml = std::fs::read_to_string(root.join(".github/workflows/soak.yml")).ok();

    let findings = lint(&files, soak_yml.as_deref());
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("detlint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "detlint: {} finding(s) across {} files — fix, or annotate with \
             `// detlint: allow(<rule>): <justification>`",
            findings.len(),
            files.len()
        );
        ExitCode::from(1)
    }
}

/// Finds the workspace root: the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let start = std::env::current_dir().map_err(|e| format!("cannot read current dir: {e}"))?;
    for dir in start.ancestors() {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir.to_path_buf());
            }
        }
    }
    Err(format!("no workspace Cargo.toml above {}", start.display()))
}

/// Recursively collects workspace-relative `/`-separated paths of `.rs`
/// files under `dir`, skipping build output and detlint's own lint
/// fixtures (deliberately-bad snippets).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(()), // optional roots (e.g. no examples/)
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("while walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("path {} outside root: {e}", path.display()))?;
            let rel = rel
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
