//! The per-file rules: nondet-hash-iter, wallclock-in-sim,
//! unseeded-rng, panic-in-lib, obs-boundary, and
//! ignored-test-has-owner.
//!
//! Each rule walks the significant-token stream of one file; the
//! cross-file vendor-surface rule lives in [`crate::vendor_surface`].
//! Rule scoping (which crates/sections a rule covers) is documented per
//! rule and summarized in the crate-level docs.

use crate::context::{in_regions, Section};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::report::Finding;
use crate::SourceFile;

/// Every rule detlint knows, in reporting order. `detlint-allow`
/// (malformed directives) is implicit and never suppressible.
pub const RULES: &[&str] = &[
    "nondet-hash-iter",
    "wallclock-in-sim",
    "unseeded-rng",
    "panic-in-lib",
    "obs-boundary",
    "vendor-surface",
    "ignored-test-has-owner",
];

/// Crates whose outputs feed golden files, proofs, or benchmarks —
/// where hash-iteration order could silently change results.
const RESULT_AFFECTING: &[&str] =
    &["core", "automata", "sim", "analysis", "bench", "ringleader", "detlint"];

/// Significant tokens of a file with index-based lookaround.
pub struct Walker<'a> {
    lexed: &'a Lexed,
    sig: Vec<Token>,
}

impl<'a> Walker<'a> {
    /// Collects the significant tokens of `lexed`.
    #[must_use]
    pub fn new(lexed: &'a Lexed) -> Self {
        Self { lexed, sig: lexed.significant().map(|(_, t)| *t).collect() }
    }

    /// The significant tokens.
    #[must_use]
    pub fn tokens(&self) -> &[Token] {
        &self.sig
    }

    /// Text of significant token `i`, or `""` out of range.
    #[must_use]
    pub fn text(&self, i: usize) -> &str {
        self.sig.get(i).map_or("", |t| self.lexed.text(t))
    }

    /// Kind of significant token `i`, if in range.
    #[must_use]
    pub fn kind(&self, i: usize) -> Option<TokenKind> {
        self.sig.get(i).map(|t| t.kind)
    }

    pub fn finding_at(
        &self,
        file: &SourceFile,
        rule: &'static str,
        i: usize,
        message: String,
    ) -> Finding {
        let (line, col) = self.lexed.line_col(self.sig[i].start);
        Finding { rule, path: file.rel_path.clone(), line, col, message }
    }
}

/// True when a string literal token holds a non-empty message (more
/// than its delimiters).
fn nonempty_str(text: &str) -> bool {
    let inner = text
        .trim_start_matches(['b', 'c', 'r'])
        .trim_start_matches('#')
        .trim_start_matches('"')
        .trim_end_matches('#')
        .trim_end_matches('"');
    !inner.trim().is_empty()
}

/// Runs all per-file rules over `file`, appending to `findings`.
/// `soak_yml` is the text of `.github/workflows/soak.yml` when present.
pub fn run_file_rules(file: &SourceFile, soak_yml: Option<&str>, findings: &mut Vec<Finding>) {
    let walker = Walker::new(&file.lexed);
    nondet_hash_iter(file, &walker, findings);
    wallclock_in_sim(file, &walker, findings);
    unseeded_rng(file, &walker, findings);
    panic_in_lib(file, &walker, findings);
    obs_boundary(file, &walker, findings);
    ignored_test_has_owner(file, &walker, soak_yml, findings);
}

/// **nondet-hash-iter** — `HashMap`/`HashSet` (and their `hash_map`/
/// `hash_set` module paths) are banned in result-affecting crates, in
/// *all* sections including tests: iteration order varies per process,
/// so any escape of that order breaks byte-identical reproduction.
/// Use `BTreeMap`/`BTreeSet` or a sorted collect, or allow-annotate
/// where order provably cannot escape (e.g. a lookup-only intern table).
fn nondet_hash_iter(file: &SourceFile, w: &Walker<'_>, findings: &mut Vec<Finding>) {
    if file.class.is_vendor || !RESULT_AFFECTING.contains(&file.class.crate_name.as_str()) {
        return;
    }
    for (i, t) in w.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = w.text(i);
        if matches!(name, "HashMap" | "HashSet" | "hash_map" | "hash_set") {
            findings.push(w.finding_at(
                file,
                "nondet-hash-iter",
                i,
                format!(
                    "`{name}` in result-affecting crate `{}`: hash iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or a sorted collect",
                    file.class.crate_name
                ),
            ));
        }
    }
}

/// **wallclock-in-sim** — `Instant`/`SystemTime` are banned in shipped
/// `src/` code of workspace crates: simulated executions must depend
/// only on inputs and seeds, never on wall-clock time. The allowlist is
/// structural: `tests/` and `benches/` measure elapsed time by design,
/// and the vendored shims (channel deadline plumbing, the criterion
/// timer) are the designated timing modules. A crate *outside* the
/// result-affecting set may also opt out wholesale by declaring the
/// carve-out in its crate doc header — a leading `//!` block containing
/// `Policy:` and naming `wallclock-in-sim` (how `ringleader_obs` hosts
/// the workspace's only monotonic clock).
fn wallclock_in_sim(file: &SourceFile, w: &Walker<'_>, findings: &mut Vec<Finding>) {
    if file.class.is_vendor || file.class.section != Section::Src {
        return;
    }
    if !RESULT_AFFECTING.contains(&file.class.crate_name.as_str()) {
        let src = file.lexed.src();
        let header: String = src
            .lines()
            .take_while(|l| l.starts_with("//!") || l.trim().is_empty())
            .collect::<Vec<_>>()
            .join("\n");
        if header.contains("Policy:") && header.contains("wallclock-in-sim") {
            return;
        }
    }
    for (i, t) in w.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = w.text(i);
        if matches!(name, "Instant" | "SystemTime") && !in_regions(&file.test_regions, t.start) {
            findings.push(w.finding_at(
                file,
                "wallclock-in-sim",
                i,
                format!(
                    "`{name}` in simulation/library code: results must not depend on wall-clock \
                     time; route timing through a watchdog/bench module or allow-annotate"
                ),
            ));
        }
    }
}

/// **unseeded-rng** — `from_entropy`, `thread_rng`, `OsRng`,
/// `getrandom`, and `rand::random` are banned everywhere, vendor and
/// tests included: every random stream in this workspace must come from
/// an explicit seed (`StdRng::seed_from_u64`) so reruns are
/// byte-identical. (The vendored rand shim deliberately implements no
/// entropy source; this rule keeps one from ever being added.)
fn unseeded_rng(file: &SourceFile, w: &Walker<'_>, findings: &mut Vec<Finding>) {
    for (i, t) in w.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = w.text(i);
        let flagged = matches!(name, "from_entropy" | "thread_rng" | "OsRng" | "getrandom")
            || (name == "random"
                && w.text(i.wrapping_sub(1)) == ":"
                && w.text(i.wrapping_sub(2)) == ":"
                && w.text(i.wrapping_sub(3)) == "rand");
        if flagged {
            findings.push(w.finding_at(
                file,
                "unseeded-rng",
                i,
                format!(
                    "`{name}` draws unseeded randomness: derive every RNG from an explicit \
                     seed (StdRng::seed_from_u64) so runs reproduce byte-identically"
                ),
            ));
        }
    }
}

/// **panic-in-lib** — in shipped `src/` code of workspace crates,
/// `.unwrap()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!`,
/// and `.expect("")` are banned outside `#[cfg(test)]` regions. The
/// sanctioned form is `.expect("non-empty reason")` — the message is
/// the machine-checked justification, mirroring the allow syntax —
/// or a real `Result`. Tests, benches, and examples may panic freely;
/// vendored shims are exempt (they mirror upstream APIs whose contract
/// panics, e.g. assertion macros and poison recovery).
fn panic_in_lib(file: &SourceFile, w: &Walker<'_>, findings: &mut Vec<Finding>) {
    if file.class.is_vendor || file.class.section != Section::Src {
        return;
    }
    for (i, t) in w.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident || in_regions(&file.test_regions, t.start) {
            continue;
        }
        let name = w.text(i);
        let message = match name {
            "panic" | "unreachable" | "todo" | "unimplemented" if w.text(i + 1) == "!" => {
                format!(
                    "`{name}!` in library code: return an error (or prove the case \
                         impossible and allow-annotate)"
                )
            }
            "unwrap" if w.text(i.wrapping_sub(1)) == "." => {
                "`.unwrap()` in library code: use `.expect(\"reason\")` so the invariant is \
                 named, or propagate the error"
                    .to_string()
            }
            "expect" if w.text(i.wrapping_sub(1)) == "." => {
                let has_reason = w.text(i + 1) == "("
                    && w.kind(i + 2) == Some(TokenKind::Str)
                    && nonempty_str(w.text(i + 2));
                if has_reason {
                    continue;
                }
                "`.expect` without a non-empty literal message: name the invariant that \
                 makes the panic unreachable"
                    .to_string()
            }
            _ => continue,
        };
        findings.push(w.finding_at(file, "panic-in-lib", i, message));
    }
}

/// **obs-boundary** — telemetry must never feed back into results. In
/// shipped `src/` code of result-affecting crates, the value-reading
/// accessors of `ringleader_obs::Metrics` (`.run_report()`,
/// `.counter_value()`, `.gauge_value()`) are banned outside
/// `#[cfg(test)]` regions: recording into a registry is free game, but
/// a branch on a recorded value would make outputs depend on whether
/// metrics are enabled (and, for timings, on the wall clock). Tests and
/// benches read registries by design; so do CLI report writers via
/// `write_report`, which never exposes a value to the caller.
fn obs_boundary(file: &SourceFile, w: &Walker<'_>, findings: &mut Vec<Finding>) {
    if file.class.is_vendor
        || file.class.section != Section::Src
        || !RESULT_AFFECTING.contains(&file.class.crate_name.as_str())
    {
        return;
    }
    for (i, t) in w.tokens().iter().enumerate() {
        if t.kind != TokenKind::Ident || in_regions(&file.test_regions, t.start) {
            continue;
        }
        let name = w.text(i);
        if matches!(name, "run_report" | "counter_value" | "gauge_value")
            && w.text(i.wrapping_sub(1)) == "."
        {
            findings.push(w.finding_at(
                file,
                "obs-boundary",
                i,
                format!(
                    "`.{name}()` reads a metrics value in result-affecting crate `{}`: telemetry \
                     must never feed back into results; keep reads in tests/benches/report \
                     writers",
                    file.class.crate_name
                ),
            ));
        }
    }
}

/// **ignored-test-has-owner** — every `#[ignore]` must carry a
/// non-empty reason string (`#[ignore = "soak: …"]`) *and* be owned by
/// the nightly soak workflow: either `.github/workflows/soak.yml`
/// names the test function, or it runs a blanket
/// `--workspace … --include-ignored` pass. An ignored test nobody runs
/// is dead coverage.
fn ignored_test_has_owner(
    file: &SourceFile,
    w: &Walker<'_>,
    soak_yml: Option<&str>,
    findings: &mut Vec<Finding>,
) {
    let blanket =
        soak_yml.is_some_and(|s| s.contains("--include-ignored") && s.contains("--workspace"));
    for i in 0..w.tokens().len() {
        if !(w.text(i) == "#" && w.text(i + 1) == "[" && w.text(i + 2) == "ignore") {
            continue;
        }
        if w.text(i + 3) == "]" {
            findings.push(
                w.finding_at(
                    file,
                    "ignored-test-has-owner",
                    i + 2,
                    "bare `#[ignore]`: add a reason, e.g. `#[ignore = \"soak: run via soak.yml\"]`"
                        .to_string(),
                ),
            );
            continue;
        }
        if w.text(i + 3) == "=" {
            let ok_reason = w.kind(i + 4) == Some(TokenKind::Str) && nonempty_str(w.text(i + 4));
            if !ok_reason {
                findings.push(w.finding_at(
                    file,
                    "ignored-test-has-owner",
                    i + 2,
                    "`#[ignore]` reason must be a non-empty string literal".to_string(),
                ));
                continue;
            }
            // Find the test fn name (skip any further attributes).
            let mut j = i + 5;
            let mut name = None;
            while j < w.tokens().len() && j < i + 64 {
                if w.text(j) == "fn" {
                    name = Some(w.text(j + 1).to_string());
                    break;
                }
                j += 1;
            }
            let Some(name) = name else { continue };
            let owned = match soak_yml {
                Some(s) => blanket || s.contains(&name),
                None => false,
            };
            if !owned {
                findings.push(w.finding_at(
                    file,
                    "ignored-test-has-owner",
                    i + 2,
                    format!(
                        "ignored test `{name}` is not run by .github/workflows/soak.yml: \
                         name it there or keep a blanket `--workspace -- --include-ignored` pass"
                    ),
                ));
            }
        }
    }
}
