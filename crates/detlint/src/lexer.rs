//! Hand-rolled Rust lexer with exact span tiling.
//!
//! The rule engine needs just enough lexical structure to tell *code*
//! apart from comments and string literals (so `"HashMap"` in a message
//! is not a finding but `HashMap` in code is), to read `// detlint:
//! allow(...)` directives out of comments, and to walk significant
//! tokens with lookahead/lookbehind. A full parser is out of scope by
//! policy — the offline environment has neither `syn` nor `quote`, and
//! the vendored `serde_derive` sets the precedent of working directly
//! on token streams.
//!
//! The one hard invariant, enforced by proptests in
//! `tests/span_props.rs`, is that token spans **tile** the input: the
//! first token starts at byte 0, every token ends where the next one
//! starts, the last token ends at `len`, and every span is a non-empty,
//! char-boundary-valid slice. Whitespace is itself a token so the tiling
//! has no gaps, which in turn means no byte of input is ever silently
//! skipped or double-counted — a lexer bug cannot hide code from the
//! rules.

/// Lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A maximal run of whitespace.
    Whitespace,
    /// `// ...` to end of line, including `///` and `//!` doc comments.
    LineComment,
    /// `/* ... */`, nesting-aware, including `/** */` and `/*! */`.
    BlockComment,
    /// String-ish literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `r#"…"#`,
    /// `br#"…"#`, `cr"…"` — escapes and hash-delimited raw forms.
    Str,
    /// Character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime such as `'a` or `'_` (no closing quote).
    Lifetime,
    /// Numeric literal, including suffixes and exponents.
    Number,
    /// Identifier or keyword, including raw `r#ident` forms.
    Ident,
    /// Any single other character (`{`, `::` is two tokens, etc.).
    Punct,
}

/// One lexed token; `start..end` is a byte range into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

/// A source file tokenized once, with a line table for diagnostics.
#[derive(Debug, Clone)]
pub struct Lexed {
    src: String,
    tokens: Vec<Token>,
    line_starts: Vec<usize>,
}

impl Lexed {
    /// Tokenizes `src`.
    #[must_use]
    pub fn new(src: String) -> Self {
        let tokens = lex(&src);
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self { src, tokens, line_starts }
    }

    /// The original source text.
    #[must_use]
    pub fn src(&self) -> &str {
        &self.src
    }

    /// All tokens, in source order, tiling the input.
    #[must_use]
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The text of one token.
    #[must_use]
    pub fn text(&self, token: &Token) -> &str {
        &self.src[token.start..token.end]
    }

    /// 1-based line number containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> u32 {
        self.line_starts.partition_point(|s| *s <= offset) as u32
    }

    /// 1-based (line, column) of byte `offset`; columns count chars.
    #[must_use]
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = self.line_starts.partition_point(|s| *s <= offset);
        let line_start = self.line_starts[line - 1];
        let col = self.src[line_start..offset].chars().count() + 1;
        (line as u32, col as u32)
    }

    /// Indices and tokens that are neither whitespace nor comments.
    pub fn significant(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Advances from `pos` while `pred` holds; returns the new offset.
fn scan_while(src: &str, pos: usize, pred: impl Fn(char) -> bool) -> usize {
    let rest = &src[pos..];
    let len = rest.char_indices().find(|&(_, c)| !pred(c)).map_or(rest.len(), |(i, _)| i);
    pos + len
}

/// Scans a quote-delimited body with `\`-escapes starting *inside* the
/// quotes at `pos`; returns the offset past the closing quote (or EOF
/// for an unterminated literal).
fn scan_escaped(src: &str, pos: usize, quote: char) -> usize {
    let mut iter = src[pos..].char_indices();
    while let Some((i, c)) = iter.next() {
        if c == '\\' {
            iter.next();
        } else if c == quote {
            return pos + i + c.len_utf8();
        }
    }
    src.len()
}

/// Scans a nesting block comment starting at `pos` (which holds `/*`).
fn scan_block_comment(src: &str, pos: usize) -> usize {
    let mut depth = 0usize;
    let mut i = pos;
    while i < src.len() {
        if src[i..].starts_with("/*") {
            depth += 1;
            i += 2;
        } else if src[i..].starts_with("*/") {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            // `i` stays on a char boundary: we only ever advance by 2
            // over the ASCII delimiters or by one whole char here.
            let c = src[i..].chars().next();
            i += c.map_or(1, char::len_utf8);
        }
    }
    src.len()
}

/// Recognizes string-like literals (and raw identifiers) at `pos`.
/// Returns `None` when `pos` does not start one — e.g. a plain ident
/// that merely begins with `b`, `c`, or `r`.
fn scan_string_like(src: &str, pos: usize) -> Option<(usize, TokenKind)> {
    let rest = &src.as_bytes()[pos..];
    let mut i = 0;
    if matches!(rest.first(), Some(b'b' | b'c')) {
        i = 1;
    }
    let raw = rest.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    while rest.get(i + hashes) == Some(&b'#') {
        hashes += 1;
    }
    let next = rest.get(i + hashes).copied();
    if raw && next == Some(b'"') {
        // Raw string: body runs to `"` followed by `hashes` hashes.
        let body = pos + i + hashes + 1;
        let mut closer = String::from('"');
        closer.extend(std::iter::repeat_n('#', hashes));
        let end = src[body..].find(&closer).map_or(src.len(), |j| body + j + closer.len());
        return Some((end, TokenKind::Str));
    }
    if raw && i == 1 && hashes == 1 {
        // `r#ident` raw identifier.
        let after = pos + i + hashes;
        if src[after..].chars().next().is_some_and(is_ident_start) {
            return Some((scan_while(src, after, is_ident_continue), TokenKind::Ident));
        }
    }
    if !raw && hashes == 0 && next == Some(b'"') {
        return Some((scan_escaped(src, pos + i + 1, '"'), TokenKind::Str));
    }
    if !raw && hashes == 0 && i == 1 && rest.first() == Some(&b'b') && next == Some(b'\'') {
        return Some((scan_escaped(src, pos + 2, '\''), TokenKind::Char));
    }
    None
}

/// Disambiguates `'x'` char literals from `'a` lifetimes at a `'`.
fn scan_quote(src: &str, pos: usize) -> (usize, TokenKind) {
    let mut iter = src[pos + 1..].char_indices();
    match iter.next() {
        None => (src.len(), TokenKind::Punct),
        Some((_, '\\')) => (scan_escaped(src, pos + 1, '\''), TokenKind::Char),
        Some((_, c1)) => {
            if let Some((i2, '\'')) = iter.next() {
                if c1 != '\'' {
                    return (pos + 1 + i2 + 1, TokenKind::Char);
                }
            }
            if is_ident_start(c1) {
                (scan_while(src, pos + 1, is_ident_continue), TokenKind::Lifetime)
            } else {
                (pos + 1, TokenKind::Punct)
            }
        }
    }
}

/// Scans a numeric literal: digits, `0x`/`0b`/`0o` bodies, `_`
/// separators, type suffixes, one fractional part, and a signed
/// exponent. Range dots (`1..n`) are left to the next token.
fn scan_number(src: &str, pos: usize) -> usize {
    let alnum = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut end = scan_while(src, pos, alnum);
    if src[end..].starts_with('.')
        && src[end + 1..].chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        end = scan_while(src, end + 1, alnum);
    }
    if (src[..end].ends_with('e') || src[..end].ends_with('E'))
        && matches!(src[end..].chars().next(), Some('+' | '-'))
        && src[end + 1..].chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        end = scan_while(src, end + 1, alnum);
    }
    end
}

/// Tokenizes `src` into a tiling sequence of [`Token`]s.
fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut pos = 0;
    while pos < src.len() {
        let start = pos;
        let c = src[pos..].chars().next().expect("pos is kept on a char boundary");
        let kind = if c.is_whitespace() {
            pos = scan_while(src, pos, char::is_whitespace);
            TokenKind::Whitespace
        } else if src[pos..].starts_with("//") {
            pos = src[pos..].find('\n').map_or(src.len(), |i| pos + i);
            TokenKind::LineComment
        } else if src[pos..].starts_with("/*") {
            pos = scan_block_comment(src, pos);
            TokenKind::BlockComment
        } else if let Some((end, kind)) = scan_string_like(src, pos) {
            pos = end;
            kind
        } else if c == '\'' {
            let (end, kind) = scan_quote(src, pos);
            pos = end;
            kind
        } else if c.is_ascii_digit() {
            pos = scan_number(src, pos);
            TokenKind::Number
        } else if is_ident_start(c) {
            pos = scan_while(src, pos, is_ident_continue);
            TokenKind::Ident
        } else {
            pos += c.len_utf8();
            TokenKind::Punct
        };
        debug_assert!(pos > start, "every token must make progress");
        tokens.push(Token { kind, start, end: pos });
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let lx = Lexed::new(src.to_string());
        lx.tokens().iter().map(|t| (t.kind, lx.text(t).to_string())).collect()
    }

    fn tiles(src: &str) {
        let lx = Lexed::new(src.to_string());
        let mut at = 0;
        for t in lx.tokens() {
            assert_eq!(t.start, at, "gap/overlap at {at} in {src:?}");
            assert!(t.end > t.start);
            assert!(lx.src().get(t.start..t.end).is_some(), "span off char boundary");
            at = t.end;
        }
        assert_eq!(at, src.len(), "input not fully consumed: {src:?}");
    }

    #[test]
    fn idents_strings_and_comments_classify() {
        let got = kinds("let x = \"HashMap\"; // HashMap\n");
        assert!(got.contains(&(TokenKind::Str, "\"HashMap\"".into())));
        assert!(got.contains(&(TokenKind::LineComment, "// HashMap".into())));
        assert!(got.iter().any(|(k, s)| *k == TokenKind::Ident && s == "x"));
        assert!(!got.iter().any(|(k, s)| *k == TokenKind::Ident && s == "HashMap"));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let got = kinds(r###"r#"quote " inside"# r#struct br##"x"## b"bytes""###);
        assert_eq!(got[0], (TokenKind::Str, "r#\"quote \" inside\"#".into()));
        assert_eq!(got[2], (TokenKind::Ident, "r#struct".into()));
        assert_eq!(got[4], (TokenKind::Str, "br##\"x\"##".into()));
        assert_eq!(got[6], (TokenKind::Str, "b\"bytes\"".into()));
    }

    #[test]
    fn chars_versus_lifetimes() {
        let got = kinds("'a' '\\n' &'static str <'a> b'z'");
        assert_eq!(got[0], (TokenKind::Char, "'a'".into()));
        assert_eq!(got[2], (TokenKind::Char, "'\\n'".into()));
        assert!(got.contains(&(TokenKind::Lifetime, "'static".into())));
        assert!(got.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(got.contains(&(TokenKind::Char, "b'z'".into())));
    }

    #[test]
    fn numbers_with_suffixes_exponents_and_ranges() {
        let got = kinds("1..n 0x1F_u32 1.5e-3 2e10 7usize 1.max(2)");
        assert_eq!(got[0], (TokenKind::Number, "1".into()));
        assert!(got.contains(&(TokenKind::Number, "0x1F_u32".into())));
        assert!(got.contains(&(TokenKind::Number, "1.5e-3".into())));
        assert!(got.contains(&(TokenKind::Number, "2e10".into())));
        assert!(got.contains(&(TokenKind::Number, "7usize".into())));
        // `1.max(2)` keeps the dot out of the number.
        assert!(got.contains(&(TokenKind::Ident, "max".into())));
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("/* a /* b */ c */ x");
        assert_eq!(got[0], (TokenKind::BlockComment, "/* a /* b */ c */".into()));
        assert_eq!(got[2], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn tiling_on_awkward_inputs() {
        for src in [
            "",
            "é🦀 'é' \"🦀\"",
            "fn f(x: [u8; 3]) -> &'_ str { \"\\\"\" }",
            "r\"unterminated",
            "\"unterminated",
            "/* unterminated /* nested",
            "'",
            "1.",
            "b cr#\"raw c\"#",
        ] {
            tiles(src);
        }
    }

    #[test]
    fn line_col_counts_chars() {
        let lx = Lexed::new("é x\ny\n".to_string());
        // `x` is the third char on line 1 (byte offset 3).
        assert_eq!(lx.line_col(3), (1, 3));
        let y = lx.src().find('y').expect("y present");
        assert_eq!(lx.line_col(y), (2, 1));
        assert_eq!(lx.line_of(y), 2);
    }
}
