//! Property-based tests over the whole language corpus.
//!
//! The generators are the experiments' workload source, so their contract
//! — positives are members, negatives are not, lengths are exact — is
//! load-bearing for every measured number in EXPERIMENTS.md.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use ringleader_langs::{
    regular_corpus, AnBn, AnBnCn, Dyck, EqualAB, GrowthFunction, Language, LgLanguage, Palindrome,
    PowerOfTwoLength, TradeoffLanguage, WcW,
};

/// Every non-regular corpus language, boxed.
fn corpus() -> Vec<Box<dyn Language>> {
    let mut langs: Vec<Box<dyn Language>> = vec![
        Box::new(AnBn::new()),
        Box::new(AnBnCn::new()),
        Box::new(WcW::new()),
        Box::new(Palindrome::new()),
        Box::new(EqualAB::new()),
        Box::new(Dyck::new()),
        Box::new(PowerOfTwoLength::new()),
        Box::new(TradeoffLanguage::new(2)),
        Box::new(LgLanguage::new(GrowthFunction::NSqrtN)),
        Box::new(LgLanguage::fully_periodic(GrowthFunction::NLogN)),
    ];
    for lang in regular_corpus() {
        langs.push(Box::new(lang));
    }
    langs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator contract, for every language, length, and seed.
    #[test]
    fn generators_respect_membership(len in 1usize..48, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for lang in corpus() {
            if let Some(w) = lang.positive_example(len, &mut rng) {
                prop_assert_eq!(w.len(), len, "{} length", lang.name());
                prop_assert!(lang.contains(&w), "{} positive", lang.name());
            }
            if let Some(w) = lang.negative_example(len, &mut rng) {
                prop_assert_eq!(w.len(), len, "{} length", lang.name());
                prop_assert!(!lang.contains(&w), "{} negative", lang.name());
            }
        }
    }

    /// Membership is a pure function of the word (no hidden state).
    #[test]
    fn membership_is_deterministic(len in 0usize..32, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for lang in corpus() {
            let k = lang.alphabet().len() as u32;
            let symbols: Vec<_> = (0..len)
                .map(|_| ringleader_automata::Symbol((rng.next_u32() % k) as u16))
                .collect();
            let w = ringleader_automata::Word::from_symbols(symbols);
            let first = lang.contains(&w);
            prop_assert_eq!(first, lang.contains(&w), "{}", lang.name());
        }
    }

    /// The L_g variants agree wherever the tail is empty, and the
    /// fully-periodic variant is a subset of the literal one.
    #[test]
    fn lg_variants_nest(len in 1usize..64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquaredHalf] {
            let literal = LgLanguage::new(g);
            let periodic = LgLanguage::fully_periodic(g);
            // Subset: periodic-tail membership implies literal membership.
            if let Some(w) = periodic.positive_example(len, &mut rng) {
                prop_assert!(literal.contains(&w), "{} len={len}", literal.name());
            }
            // When m divides len the tail is empty: the variants coincide
            // on every word.
            let m = literal.period(len);
            if m > 0 && len % m == 0 {
                let k = literal.alphabet().len() as u32;
                let symbols: Vec<_> = (0..len)
                    .map(|_| ringleader_automata::Symbol((rng.next_u32() % k) as u16))
                    .collect();
                let w = ringleader_automata::Word::from_symbols(symbols);
                prop_assert_eq!(literal.contains(&w), periodic.contains(&w));
            }
        }
    }

    /// The tradeoff language's designated letter is consistent with
    /// membership under single-letter flips.
    #[test]
    fn tradeoff_flip_toggles_membership(len in 1usize..32, pos_seed: u64, k in 1u32..=4) {
        let lang = TradeoffLanguage::new(k);
        let mut rng = StdRng::seed_from_u64(pos_seed);
        let Some(w) = lang.positive_example(len, &mut rng) else {
            return Ok(());
        };
        let designated = lang.designated_letter(len);
        // Replacing a non-designated letter with the designated one (or
        // vice versa) flips parity ⇒ membership.
        let flip_at = (rng.next_u32() as usize) % len;
        let mut symbols = w.symbols().to_vec();
        let old = symbols[flip_at].index();
        symbols[flip_at] = if old == designated {
            // designated -> something else: parity decreases by 1
            ringleader_automata::Symbol(u16::from(designated == 0))
        } else {
            ringleader_automata::Symbol(designated as u16)
        };
        let flipped = ringleader_automata::Word::from_symbols(symbols);
        prop_assert!(!lang.contains(&flipped), "k={k} len={len}");
    }

    /// Regular corpus languages agree with their own DFA on random words
    /// (the `DfaLanguage` contract).
    #[test]
    fn dfa_language_contract(len in 0usize..24, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for lang in regular_corpus() {
            let k = lang.alphabet().len() as u32;
            let symbols: Vec<_> = (0..len)
                .map(|_| ringleader_automata::Symbol((rng.next_u32() % k) as u16))
                .collect();
            let w = ringleader_automata::Word::from_symbols(symbols);
            prop_assert_eq!(lang.contains(&w), lang.dfa().accepts(&w));
        }
    }
}
