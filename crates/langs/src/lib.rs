//! Language corpus for the ring pattern-recognition experiments.
//!
//! Every experiment in the Mansour & Zaks reproduction measures the bit
//! complexity of recognizing some language on a ring; this crate supplies
//! those languages with exact membership predicates (the ground truth every
//! protocol decision is checked against) and per-length positive/negative
//! word generators (the workloads).
//!
//! The corpus follows the paper's cast of characters:
//!
//! * **Regular languages** ([`DfaLanguage`]) — the `O(n)`-bit class of
//!   Theorems 1–3 and 6–7, built from regexes or explicit DFAs.
//! * **The trade-off family** ([`TradeoffLanguage`]) — Note 7.5's regular
//!   language over `2^k` letters whose one-pass cost is exponentially
//!   worse than its two-pass cost.
//! * **Classic non-regular languages** — `aⁿbⁿ`, `0ⁿ1ⁿ2ⁿ` (Note 7.2),
//!   `wcw` (Note 7.1), palindromes, `#a = #b`, and the unary powers-of-two
//!   language used in the known-`n` Note 7.4.
//! * **The `L_g` hierarchy** ([`LgLanguage`]) — Note 7.3's periodic-word
//!   family realizing every bit complexity between `n log n` and `n²`.
//!
//! # Examples
//!
//! ```rust
//! # use ringleader_langs::{Language, AnBnCn};
//! # use ringleader_automata::Word;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lang = AnBnCn::new();
//! let yes = Word::from_str("001122", lang.alphabet())?;
//! let no = Word::from_str("001212", lang.alphabet())?;
//! assert!(lang.contains(&yes));
//! assert!(!lang.contains(&no));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod language;
mod lg;
mod nonregular;
mod regular;

pub use language::{Language, LanguageClass};
pub use lg::{GrowthFunction, LgLanguage};
pub use nonregular::{AnBn, AnBnCn, Dyck, EqualAB, Palindrome, PowerOfTwoLength, WcW};
pub use regular::{regular_corpus, DfaLanguage, TradeoffLanguage};
