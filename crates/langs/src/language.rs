//! The `Language` abstraction.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ringleader_automata::{Alphabet, Word};

/// Where a language sits in the Chomsky hierarchy.
///
/// The paper's punchline for Section 7 is that the *bit-complexity*
/// hierarchy does **not** follow this one: a linear (context-free) language
/// can cost `Θ(n²)` bits while a context-sensitive one costs `O(n log n)`.
/// Carrying the class alongside each language lets the experiments print
/// that contrast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LanguageClass {
    /// Recognizable by a finite automaton.
    Regular,
    /// Context-free but not regular.
    ContextFree,
    /// Context-sensitive but not context-free.
    ContextSensitive,
}

impl fmt::Display for LanguageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LanguageClass::Regular => f.write_str("regular"),
            LanguageClass::ContextFree => f.write_str("context-free"),
            LanguageClass::ContextSensitive => f.write_str("context-sensitive"),
        }
    }
}

/// A formal language with exact membership and workload generation.
///
/// Implementations are the experiments' ground truth: a protocol "works"
/// iff its leader decision equals [`contains`](Language::contains) on every
/// tested word. The example generators produce the per-length workloads;
/// they return `None` when no word of that length exists on the requested
/// side (e.g. no word of odd length is in `aⁿbⁿ`, and no word at all is
/// outside `Σ*`).
pub trait Language: Send + Sync {
    /// Short descriptive name, used in reports.
    fn name(&self) -> String;

    /// The alphabet `Σ`.
    fn alphabet(&self) -> &Alphabet;

    /// Chomsky classification (see [`LanguageClass`]).
    fn class(&self) -> LanguageClass;

    /// Exact membership: whether `word ∈ L`.
    fn contains(&self, word: &Word) -> bool;

    /// Some member of `L` with exactly `len` letters, or `None` if none
    /// exists. Randomized implementations draw from `rng`; deterministic
    /// ones may ignore it.
    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word>;

    /// Some word of length `len` *not* in `L`, or `None` if every word of
    /// that length is a member.
    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word>;
}

/// Draws a uniformly random word of length `len` over `alphabet`.
pub(crate) fn random_word(alphabet: &Alphabet, len: usize, rng: &mut dyn RngCore) -> Word {
    let k = alphabet.len() as u32;
    let symbols = (0..len)
        .map(|_| {
            let r = rng.next_u32() % k;
            ringleader_automata::Symbol(r as u16)
        })
        .collect();
    Word::from_symbols(symbols)
}

/// Rejection-samples up to `attempts` random words matching `want` under
/// `lang`. Fine for dense target sets; sparse languages implement their
/// generators directly.
pub(crate) fn rejection_sample(
    lang: &dyn Language,
    len: usize,
    want: bool,
    attempts: usize,
    rng: &mut dyn RngCore,
) -> Option<Word> {
    for _ in 0..attempts {
        let w = random_word(lang.alphabet(), len, rng);
        if lang.contains(&w) == want {
            return Some(w);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn class_display() {
        assert_eq!(LanguageClass::Regular.to_string(), "regular");
        assert_eq!(LanguageClass::ContextFree.to_string(), "context-free");
        assert_eq!(LanguageClass::ContextSensitive.to_string(), "context-sensitive");
    }

    #[test]
    fn random_word_has_requested_length_and_alphabet() {
        let sigma = Alphabet::from_chars("abc").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for len in [0usize, 1, 7, 100] {
            let w = random_word(&sigma, len, &mut rng);
            assert_eq!(w.len(), len);
            for &s in w.symbols() {
                assert!(s.index() < 3);
            }
        }
    }
}
