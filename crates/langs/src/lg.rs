//! The `L_g` hierarchy family (Note 7.3).
//!
//! For any function `g` with `n log n ≤ g(n) ≤ n²`, the paper defines
//!
//! ```text
//! L_g = { w | ∃ x, y ∈ Σ*, i > 0 : w = xⁱy, |x| > |y|, |x| = ⌊g(|w|)/|w|⌋ }
//! ```
//!
//! i.e. the words whose first `⌊n/m⌋·m` letters repeat a block `x` of
//! length `m(n) = ⌊g(n)/n⌋`, followed by an *arbitrary* tail `y` shorter
//! than the block. The paper proves `L_g` needs `Θ(g(n))` bits on the ring
//! — the family realizes every growth rate in the `n log n … n²` band, so
//! the bit-complexity hierarchy between the two theorems' bounds is
//! *dense*.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use ringleader_automata::{Alphabet, Word};

use crate::language::{random_word, Language, LanguageClass};

/// A growth function `g(n)` in the admissible band
/// `Ω(n log n) ≤ g ≤ O(n²)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GrowthFunction {
    /// `g(n) = n·⌈log₂ n⌉` — the bottom of the band.
    NLogN,
    /// `g(n) = n·⌈√n⌉ ≈ n^{3/2}` — strictly between the endpoints.
    NSqrtN,
    /// `g(n) = n²` — the literal top of the band. Degenerate as a
    /// workload: the period is `m = n`, so a single copy of `x` covers the
    /// word, the constraint is vacuous, and `L_g = Σ⁺`. Kept for
    /// completeness; quadratic-tier experiments use
    /// [`NSquaredHalf`](GrowthFunction::NSquaredHalf).
    NSquared,
    /// `g(n) = n·⌊n/2⌋ = Θ(n²)` — the *effective* top of the band: the
    /// period `m = ⌊n/2⌋` leaves `n − m` constrained positions, so the
    /// paper's `(n − |x| − |y|)·|x|` lower bound is `Θ(n²)` as intended.
    NSquaredHalf,
    /// `g(n) = n·⌈n^{1/4}⌉·⌈log₂ n⌉` — a second interior point, closer to
    /// the bottom.
    NQuarterLog,
}

impl GrowthFunction {
    /// Evaluates `g(n)`.
    #[must_use]
    pub fn eval(self, n: u64) -> u64 {
        let log2 = |v: u64| -> u64 {
            if v <= 1 {
                1
            } else {
                u64::from(64 - (v - 1).leading_zeros()) // ceil(log2 v)
            }
        };
        let ceil_sqrt = |v: u64| -> u64 {
            let mut r = (v as f64).sqrt() as u64;
            while r * r < v {
                r += 1;
            }
            while r > 0 && (r - 1) * (r - 1) >= v {
                r -= 1;
            }
            r.max(1)
        };
        match self {
            GrowthFunction::NLogN => n * log2(n),
            GrowthFunction::NSqrtN => n * ceil_sqrt(n),
            GrowthFunction::NSquared => n * n,
            GrowthFunction::NSquaredHalf => n * (n / 2).max(1),
            GrowthFunction::NQuarterLog => n * ceil_sqrt(ceil_sqrt(n)) * log2(n),
        }
    }

    /// The period `m(n) = ⌊g(n)/n⌋` (clamped to at least 1).
    #[must_use]
    pub fn period(self, n: u64) -> u64 {
        if n == 0 {
            return 1;
        }
        (self.eval(n) / n).max(1)
    }

    /// Human-readable form of the function.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GrowthFunction::NLogN => "n log n",
            GrowthFunction::NSqrtN => "n^1.5",
            GrowthFunction::NSquared => "n^2",
            GrowthFunction::NSquaredHalf => "n^2/2",
            GrowthFunction::NQuarterLog => "n^1.25 log n",
        }
    }
}

/// Note 7.3's language `L_g` for a chosen [`GrowthFunction`].
///
/// # Examples
///
/// ```rust
/// # use ringleader_langs::{GrowthFunction, Language, LgLanguage};
/// # use ringleader_automata::Word;
/// let lang = LgLanguage::new(GrowthFunction::NSquared);
/// // With g(n) = n², the period is m = n: every word is x¹ (y = ε)...
/// let w = Word::from_str("abab", lang.alphabet()).unwrap();
/// assert!(lang.contains(&w));
/// ```
#[derive(Debug, Clone)]
pub struct LgLanguage {
    growth: GrowthFunction,
    alphabet: Alphabet,
    periodic_tail: bool,
}

impl LgLanguage {
    /// Creates `L_g` over `{a, b}` with the paper's literal definition:
    /// the tail `y` after the last full copy of `x` is arbitrary.
    #[must_use]
    pub fn new(growth: GrowthFunction) -> Self {
        Self {
            growth,
            alphabet: Alphabet::from_chars("ab").expect("valid alphabet"),
            periodic_tail: false,
        }
    }

    /// The fully-periodic variant: the tail must *continue* the period
    /// (`w[j] = w[j+m]` for every `j < n−m`).
    ///
    /// Used by the known-`n` experiments: recognizing this variant needs no
    /// position counters in the messages, so its protocol hits `Θ(g(n))`
    /// bits for every `g` down to `g(n) = n` — Note 7.4's "no gap" claim.
    /// The two variants have identical asymptotic bit complexity.
    #[must_use]
    pub fn fully_periodic(growth: GrowthFunction) -> Self {
        Self { periodic_tail: true, ..Self::new(growth) }
    }

    /// Whether the tail must continue the period (see
    /// [`fully_periodic`](LgLanguage::fully_periodic)).
    #[must_use]
    pub fn has_periodic_tail(&self) -> bool {
        self.periodic_tail
    }

    /// The growth function `g`.
    #[must_use]
    pub fn growth(&self) -> GrowthFunction {
        self.growth
    }

    /// The period `m(n) = ⌊g(n)/n⌋` a word of length `n` must have.
    #[must_use]
    pub fn period(&self, n: usize) -> usize {
        usize::try_from(self.growth.period(n as u64)).expect("period fits usize")
    }
}

impl Language for LgLanguage {
    fn name(&self) -> String {
        if self.periodic_tail {
            format!("L_g-periodic ({})", self.growth.label())
        } else {
            format!("L_g ({})", self.growth.label())
        }
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        // For any unbounded m(n) the language is non-regular (and not
        // context-free): periodicity with a length-dependent period.
        LanguageClass::ContextSensitive
    }

    fn contains(&self, word: &Word) -> bool {
        let n = word.len();
        if n == 0 {
            return false; // i > 0 requires at least one copy of x ⇒ n ≥ m ≥ 1.
        }
        let m = self.period(n);
        if n < m {
            return false; // cannot fit even one copy of x
        }
        // w = xⁱy with |x| = m, i = ⌊n/m⌋ ≥ 1 and |y| = n mod m < m.
        // Equivalent check: the first i·m letters are m-periodic; the tail
        // y is unconstrained by the paper's definition (or must continue
        // the period in the fully-periodic variant).
        let s = word.symbols();
        let checked = if self.periodic_tail { n - m } else { (n / m - 1) * m };
        (0..checked).all(|j| s[j] == s[j + m])
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None;
        }
        let m = self.period(len);
        if len < m {
            return None;
        }
        let x = random_word(&self.alphabet, m, rng);
        let tail = random_word(&self.alphabet, len % m, rng);
        let mut out = Word::new();
        for j in 0..(len / m) * m {
            out.push(x.get(j % m).expect("index < m"));
        }
        if self.periodic_tail {
            for j in (len / m) * m..len {
                out.push(x.get(j % m).expect("index < m"));
            }
        } else {
            for &s in tail.symbols() {
                out.push(s);
            }
        }
        debug_assert!(self.contains(&out));
        Some(out)
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None; // ε is out, but there is no word to return either.
        }
        let m = self.period(len);
        if len < m {
            // Every word of this length is out (cannot happen for in-band g,
            // kept for robustness).
            return Some(random_word(&self.alphabet, len, rng));
        }
        let i = len / m;
        let breakable = if self.periodic_tail { len - m } else { (i - 1) * m };
        if breakable == 0 {
            // Every word of this length satisfies the (vacuous) constraint.
            return None;
        }
        // Take a positive and break one periodic position: the hard
        // near-miss case a recognizer must catch.
        let pos = self.positive_example(len, rng)?;
        let mut symbols = pos.symbols().to_vec();
        let j = (rng.next_u64() as usize) % breakable;
        symbols[j + m] = ringleader_automata::Symbol(1 - symbols[j + m].0);
        let out = Word::from_symbols(symbols);
        debug_assert!(!self.contains(&out));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn growth_values() {
        assert_eq!(GrowthFunction::NSquared.eval(10), 100);
        assert_eq!(GrowthFunction::NLogN.eval(8), 24); // 8 * 3
        assert_eq!(GrowthFunction::NLogN.eval(9), 36); // 9 * 4
        assert_eq!(GrowthFunction::NSqrtN.eval(16), 64); // 16 * 4
        assert_eq!(GrowthFunction::NSqrtN.eval(17), 85); // 17 * 5
    }

    #[test]
    fn growth_band_is_respected() {
        // n log n ≤ g(n) ≤ n² for all functions once n is past the tiny
        // prefix where the ceilings dominate (e.g. n^{1/4}·log n > n at n=3).
        for n in 16..2000u64 {
            let lo = GrowthFunction::NLogN.eval(n);
            let hi = GrowthFunction::NSquared.eval(n);
            for g in [GrowthFunction::NSqrtN, GrowthFunction::NQuarterLog] {
                let v = g.eval(n);
                assert!(v >= lo / 2 && v <= hi, "{:?} at n={n}: {v} not in [{lo}, {hi}]", g);
            }
        }
    }

    #[test]
    fn period_is_g_over_n() {
        let lang = LgLanguage::new(GrowthFunction::NSqrtN);
        assert_eq!(lang.period(16), 4);
        assert_eq!(lang.period(100), 10);
        let lang = LgLanguage::new(GrowthFunction::NSquared);
        assert_eq!(lang.period(7), 7);
    }

    #[test]
    fn membership_is_periodicity() {
        let lang = LgLanguage::new(GrowthFunction::NSqrtN);
        let sigma = lang.alphabet().clone();
        // n = 16 → m = 4: "abba" repeated 4 times is in.
        let w = Word::from_str(&"abba".repeat(4), &sigma).unwrap();
        assert!(lang.contains(&w));
        // Break position 7 (mirror of 3).
        let mut symbols = w.symbols().to_vec();
        symbols[7] = ringleader_automata::Symbol(1 - symbols[7].0);
        assert!(!lang.contains(&Word::from_symbols(symbols)));
        // n = 18 → m = ⌊ 18*5 / 18 ⌋ = 5: period 5 with a 3-letter tail.
        assert_eq!(lang.period(18), 5);
        let base = "babab";
        let text: String = base.chars().cycle().take(18).collect();
        let w = Word::from_str(&text, &sigma).unwrap();
        assert!(lang.contains(&w));
    }

    #[test]
    fn empty_word_is_out() {
        for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquared] {
            assert!(!LgLanguage::new(g).contains(&Word::new()));
        }
    }

    #[test]
    fn examples_are_correct_across_band() {
        let mut rng = StdRng::seed_from_u64(77);
        for g in [
            GrowthFunction::NLogN,
            GrowthFunction::NSqrtN,
            GrowthFunction::NSquared,
            GrowthFunction::NQuarterLog,
        ] {
            let lang = LgLanguage::new(g);
            for len in [2usize, 5, 16, 64, 256] {
                if let Some(pos) = lang.positive_example(len, &mut rng) {
                    assert!(lang.contains(&pos), "{:?} len={len}", g);
                    assert_eq!(pos.len(), len);
                }
                if let Some(neg) = lang.negative_example(len, &mut rng) {
                    assert!(!lang.contains(&neg), "{:?} len={len}", g);
                }
            }
        }
    }

    #[test]
    fn nsquared_every_word_is_member() {
        // g(n) = n² ⇒ m = n ⇒ w = x¹ for any w: all words are in L_g, so
        // no negative example exists at any length.
        let lang = LgLanguage::new(GrowthFunction::NSquared);
        let mut rng = StdRng::seed_from_u64(3);
        for len in [1usize, 4, 9] {
            assert!(lang.contains(&random_word(lang.alphabet(), len, &mut rng)));
            assert!(lang.negative_example(len, &mut rng).is_none());
        }
    }

    #[test]
    fn paper_membership_definition_equivalence() {
        // Cross-check the periodicity formulation against a literal
        // implementation of "∃ x,y: w = xⁱy, i ≥ 1, |x| = m > |y|".
        let lang = LgLanguage::new(GrowthFunction::NSqrtN);
        let sigma = lang.alphabet().clone();
        let mut rng = StdRng::seed_from_u64(5);
        for len in 1..=24usize {
            for _ in 0..40 {
                let w = random_word(&sigma, len, &mut rng);
                let m = lang.period(len);
                let literal = {
                    if len < m {
                        false
                    } else {
                        // w = x^i y, x = first m letters, i = ⌊len/m⌋ ≥ 1,
                        // y = the remaining tail (arbitrary, |y| < m).
                        let x: Vec<_> = w.symbols()[..m].to_vec();
                        let i = len / m;
                        let mut ok = i >= 1;
                        for copy in 0..i {
                            for (j, &xj) in x.iter().enumerate() {
                                ok &= w.get(copy * m + j) == Some(xj);
                            }
                        }
                        ok
                    }
                };
                assert_eq!(lang.contains(&w), literal, "len={len}");
            }
        }
    }
}
