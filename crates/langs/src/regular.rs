//! Regular workloads: DFA-backed languages and the Note 7.5 trade-off
//! family.

use rand::RngCore;

use ringleader_automata::{Alphabet, Dfa, Regex, Word, WordSampler};

use crate::language::{Language, LanguageClass};

/// A regular language backed by an explicit [`Dfa`].
///
/// The Theorem 1 protocol runs the *minimized* automaton, so construction
/// minimizes eagerly; [`dfa`](DfaLanguage::dfa) is what the ring forwards
/// state ids of, and its size determines the `⌈log |Q|⌉` message width.
///
/// # Examples
///
/// ```rust
/// # use ringleader_langs::{DfaLanguage, Language};
/// # use ringleader_automata::{Alphabet, Word};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sigma = Alphabet::from_chars("ab")?;
/// let lang = DfaLanguage::from_regex("(ab)*", &sigma)?;
/// assert!(lang.contains(&Word::from_str("abab", &sigma)?));
/// assert_eq!(lang.dfa().state_count(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DfaLanguage {
    name: String,
    dfa: Dfa,
}

impl DfaLanguage {
    /// Wraps (and minimizes) an explicit automaton.
    #[must_use]
    pub fn from_dfa(name: impl Into<String>, dfa: &Dfa) -> Self {
        Self { name: name.into(), dfa: dfa.minimized() }
    }

    /// Compiles `pattern` over `alphabet` (then minimizes).
    ///
    /// # Errors
    ///
    /// Propagates [`ringleader_automata::AutomataError`] from parsing.
    pub fn from_regex(
        pattern: &str,
        alphabet: &Alphabet,
    ) -> Result<Self, ringleader_automata::AutomataError> {
        let dfa = Regex::parse(pattern, alphabet)?.compile().minimized();
        Ok(Self { name: format!("regex({pattern})"), dfa })
    }

    /// The minimal automaton for this language.
    #[must_use]
    pub fn dfa(&self) -> &Dfa {
        &self.dfa
    }

    fn sampler(&self, len: usize) -> WordSampler {
        WordSampler::new(&self.dfa, len)
    }
}

impl Language for DfaLanguage {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn alphabet(&self) -> &Alphabet {
        self.dfa.alphabet()
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::Regular
    }

    fn contains(&self, word: &Word) -> bool {
        self.dfa.accepts(word)
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        self.sampler(len).sample(len, rng)
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        WordSampler::new(&self.dfa.complement(), len).sample(len, rng)
    }
}

/// Note 7.5's pass/bit trade-off family, parameterized by `k`.
///
/// Over the alphabet `Σ = {σ₀, …, σ_{2^k−1}}`,
/// `L = { w : σ_{|w| mod (2^k−1)} appears an even number of times in w }`.
///
/// The language is regular, but its minimal DFA has on the order of
/// `(2^k−1)·2^{2^k}` states (it must track `|w| mod (2^k−1)` *and* the
/// parity of every letter simultaneously), which is why membership here is
/// computed directly rather than via [`Dfa`]. The paper shows a two-pass
/// ring algorithm needs only `(2k+1)n` bits while any one-pass algorithm
/// needs `(k + 2^k − 1)n`.
#[derive(Debug, Clone)]
pub struct TradeoffLanguage {
    k: u32,
    alphabet: Alphabet,
}

impl TradeoffLanguage {
    /// Builds the family member for `k` (alphabet size `2^k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or the alphabet would exceed 62 symbols
    /// (`k > 5`).
    #[must_use]
    pub fn new(k: u32) -> Self {
        assert!((1..=5).contains(&k), "k must be in 1..=5 (alphabet 2^k letters)");
        let alphabet = Alphabet::generated(1 << k).expect("2^k <= 32 fits the generated pool");
        Self { k, alphabet }
    }

    /// The parameter `k`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The modulus `2^k − 1` used on the word length.
    #[must_use]
    pub fn modulus(&self) -> usize {
        (1usize << self.k) - 1
    }

    /// Index of the letter whose parity matters for a word of length `n`.
    #[must_use]
    pub fn designated_letter(&self, n: usize) -> usize {
        n % self.modulus()
    }
}

impl Language for TradeoffLanguage {
    fn name(&self) -> String {
        format!("tradeoff(k={})", self.k)
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::Regular
    }

    fn contains(&self, word: &Word) -> bool {
        let designated = self.designated_letter(word.len());
        let count = word.symbols().iter().filter(|s| s.index() == designated).count();
        count % 2 == 0
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        // Dense target (about half of all words): rejection sampling with
        // a deterministic fallback fix-up.
        crate::language::rejection_sample(self, len, true, 64, rng).or_else(|| {
            let mut w = crate::language::random_word(&self.alphabet, len, rng);
            fixup(self, &mut w, true).then_some(w)
        })
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None; // ε has zero (even) occurrences of everything.
        }
        crate::language::rejection_sample(self, len, false, 64, rng).or_else(|| {
            let mut w = crate::language::random_word(&self.alphabet, len, rng);
            fixup(self, &mut w, false).then_some(w)
        })
    }
}

/// Flips one letter to set the designated-letter parity; returns success.
fn fixup(lang: &TradeoffLanguage, word: &mut Word, want_member: bool) -> bool {
    if lang.contains(word) == want_member {
        return true;
    }
    if word.is_empty() {
        return false;
    }
    let designated = lang.designated_letter(word.len());
    // Replace the first letter with/away-from the designated one to flip parity.
    let first = word.get(0).expect("non-empty");
    let replacement = if first.index() == designated {
        // Change it to a different letter.
        ringleader_automata::Symbol(u16::from(designated == 0))
    } else {
        ringleader_automata::Symbol(designated as u16)
    };
    let mut symbols = word.symbols().to_vec();
    symbols[0] = replacement;
    *word = Word::from_symbols(symbols);
    lang.contains(word) == want_member
}

/// The fixed regular corpus used by experiments E1/E5: a spread of
/// automaton sizes and structures over `{a, b}`.
///
/// # Panics
///
/// Panics only if the built-in patterns fail to compile (a bug caught by
/// this crate's tests).
#[must_use]
pub fn regular_corpus() -> Vec<DfaLanguage> {
    let sigma = Alphabet::from_chars("ab").expect("valid alphabet");
    let patterns = [
        "(ab)*",              // alternation, 3 states
        "a*b*",               // two-phase, 3 states
        "(a|b)*abb",          // suffix matching, 4 states
        "(a|b)*a(a|b)(a|b)",  // 3rd-from-end is 'a', 8 states
        "((a|b)(a|b)(a|b))*", // length ≡ 0 mod 3
    ];
    let mut corpus: Vec<DfaLanguage> = patterns
        .iter()
        .map(|p| DfaLanguage::from_regex(p, &sigma).expect("corpus patterns compile"))
        .collect();
    // Parity of 'a's — the classic 2-state automaton, built explicitly.
    let even_a = Dfa::from_fn(
        sigma.clone(),
        2,
        0,
        |q| q == 0,
        |q, s| {
            if s.index() == 0 {
                1 - q
            } else {
                q
            }
        },
    )
    .expect("2-state parity automaton is well-formed");
    corpus.push(DfaLanguage::from_dfa("even-#a", &even_a));
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dfa_language_membership_and_examples() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(lang.contains(&Word::from_str("", &sigma).unwrap()));
        assert!(!lang.contains(&Word::from_str("ba", &sigma).unwrap()));
        let pos = lang.positive_example(6, &mut rng).unwrap();
        assert!(lang.contains(&pos));
        assert_eq!(pos.render(&sigma), "ababab");
        let neg = lang.negative_example(6, &mut rng).unwrap();
        assert!(!lang.contains(&neg));
        // No positive example of odd length.
        assert!(lang.positive_example(5, &mut rng).is_none());
    }

    #[test]
    fn dfa_language_is_minimized_on_construction() {
        let sigma = Alphabet::from_chars("ab").unwrap();
        // Redundant pattern whose raw subset DFA is larger than minimal.
        let lang = DfaLanguage::from_regex("(a|a)(b|b)", &sigma).unwrap();
        assert_eq!(lang.dfa().state_count(), lang.dfa().minimized().state_count());
    }

    #[test]
    fn tradeoff_membership_tracks_designated_letter() {
        let lang = TradeoffLanguage::new(2); // Σ = {A,B,C,D}, modulus 3
        let sigma = lang.alphabet().clone();
        assert_eq!(lang.modulus(), 3);
        // |w| = 4 → designated letter index 1 ('B').
        let w = Word::from_str("AAAA", &sigma).unwrap();
        assert!(lang.contains(&w), "zero B's is even");
        let w = Word::from_str("ABAA", &sigma).unwrap();
        assert!(!lang.contains(&w), "one B is odd");
        let w = Word::from_str("ABBA", &sigma).unwrap();
        assert!(lang.contains(&w), "two B's is even");
    }

    #[test]
    fn tradeoff_examples_are_correct_both_ways() {
        let mut rng = StdRng::seed_from_u64(9);
        for k in 1..=4u32 {
            let lang = TradeoffLanguage::new(k);
            for len in [1usize, 2, 5, 16, 63] {
                let pos = lang.positive_example(len, &mut rng).unwrap();
                assert!(lang.contains(&pos), "k={k} len={len}");
                assert_eq!(pos.len(), len);
                let neg = lang.negative_example(len, &mut rng).unwrap();
                assert!(!lang.contains(&neg), "k={k} len={len}");
            }
            assert!(lang.negative_example(0, &mut rng).is_none());
        }
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=5")]
    fn tradeoff_k_zero_panics() {
        let _ = TradeoffLanguage::new(0);
    }

    #[test]
    fn corpus_members_are_consistent() {
        let mut rng = StdRng::seed_from_u64(3);
        for lang in regular_corpus() {
            assert_eq!(lang.class(), LanguageClass::Regular);
            // Each language must produce an example on at least one length
            // in 1..=12 on each side (sanity of the workload generators).
            let mut pos_found = false;
            let mut neg_found = false;
            for len in 1..=12usize {
                if let Some(w) = lang.positive_example(len, &mut rng) {
                    assert!(lang.contains(&w), "{}", lang.name());
                    pos_found = true;
                }
                if let Some(w) = lang.negative_example(len, &mut rng) {
                    assert!(!lang.contains(&w), "{}", lang.name());
                    neg_found = true;
                }
            }
            assert!(pos_found && neg_found, "{} generated no examples", lang.name());
        }
    }

    #[test]
    fn corpus_has_spread_of_sizes() {
        let sizes: Vec<usize> = regular_corpus().iter().map(|l| l.dfa().state_count()).collect();
        assert!(sizes.len() >= 6);
        assert!(sizes.iter().any(|&s| s <= 2));
        assert!(sizes.iter().any(|&s| s >= 4));
    }
}
