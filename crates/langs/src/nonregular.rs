//! The paper's non-regular cast: `aⁿbⁿ`, `0ⁿ1ⁿ2ⁿ`, `wcw`, palindromes,
//! `#a = #b`, and unary powers of two.

use rand::RngCore;

use ringleader_automata::{Alphabet, Symbol, Word};

use crate::language::{random_word, Language, LanguageClass};

/// `{ aⁿbⁿ : n ≥ 0 }` — the canonical context-free, non-regular language.
///
/// By Theorem 4 any ring algorithm for it needs `Ω(n log n)` bits; a
/// counter protocol achieves `O(n log n)`.
#[derive(Debug, Clone)]
pub struct AnBn {
    alphabet: Alphabet,
}

impl Default for AnBn {
    fn default() -> Self {
        Self::new()
    }
}

impl AnBn {
    /// Creates the language over `{a, b}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("ab").expect("valid alphabet") }
    }
}

impl Language for AnBn {
    fn name(&self) -> String {
        "a^n b^n".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextFree
    }

    fn contains(&self, word: &Word) -> bool {
        let n = word.len();
        if n % 2 != 0 {
            return false;
        }
        word.symbols()[..n / 2].iter().all(|s| s.index() == 0)
            && word.symbols()[n / 2..].iter().all(|s| s.index() == 1)
    }

    fn positive_example(&self, len: usize, _rng: &mut dyn RngCore) -> Option<Word> {
        (len % 2 == 0).then(|| {
            let mut w = Word::new();
            for _ in 0..len / 2 {
                w.push(Symbol(0));
            }
            for _ in 0..len / 2 {
                w.push(Symbol(1));
            }
            w
        })
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None; // ε ∈ L
        }
        // Random words are almost surely not in this sparse language.
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// `{ 0ⁿ1ⁿ2ⁿ : n > 0 }` — Note 7.2's context-sensitive language (the
/// paper's definition excludes the empty word).
///
/// Not context-free, yet recognizable in `O(n log n)` bits with three
/// counters: the bit-complexity hierarchy defies the Chomsky hierarchy.
#[derive(Debug, Clone)]
pub struct AnBnCn {
    alphabet: Alphabet,
}

impl Default for AnBnCn {
    fn default() -> Self {
        Self::new()
    }
}

impl AnBnCn {
    /// Creates the language over `{0, 1, 2}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("012").expect("valid alphabet") }
    }
}

impl Language for AnBnCn {
    fn name(&self) -> String {
        "0^n 1^n 2^n".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextSensitive
    }

    fn contains(&self, word: &Word) -> bool {
        let n = word.len();
        if n == 0 || n % 3 != 0 {
            return false;
        }
        let third = n / 3;
        word.symbols().iter().enumerate().all(|(i, s)| s.index() == i / third)
    }

    fn positive_example(&self, len: usize, _rng: &mut dyn RngCore) -> Option<Word> {
        (len % 3 == 0 && len > 0).then(|| {
            let third = len / 3;
            let mut w = Word::new();
            for phase in 0..3u16 {
                for _ in 0..third {
                    w.push(Symbol(phase));
                }
            }
            w
        })
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None; // ε is out, but there is no word to hand back.
        }
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// `{ wcw : w ∈ {a,b}* }` — Note 7.1's `Θ(n²)`-bit language.
///
/// Every letter of the first half must be compared against the
/// corresponding letter across the ring, forcing `Ω(n²)` bits
/// unidirectionally.
///
/// The paper labels this language "linear (see \[HU\])"; as stated
/// (`wcw`, the copy language with a separator) it is actually
/// context-sensitive — the textbook linear example is `wcwᴿ`, represented
/// in this corpus by [`Palindrome`]. The ring lower bound is `Θ(n²)`
/// either way, so the experiments run the language exactly as the paper
/// wrote it.
#[derive(Debug, Clone)]
pub struct WcW {
    alphabet: Alphabet,
}

impl Default for WcW {
    fn default() -> Self {
        Self::new()
    }
}

impl WcW {
    /// Creates the language over `{a, b, c}` (with `c` the separator).
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("abc").expect("valid alphabet") }
    }

    /// The separator symbol `c`.
    #[must_use]
    pub fn separator(&self) -> Symbol {
        Symbol(2)
    }
}

impl Language for WcW {
    fn name(&self) -> String {
        "w c w".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextSensitive
    }

    fn contains(&self, word: &Word) -> bool {
        let n = word.len();
        if n % 2 != 1 {
            return false;
        }
        let half = n / 2;
        if word.get(half) != Some(self.separator()) {
            return false;
        }
        (0..half).all(|i| {
            let front = word.get(i).expect("index < n");
            front != self.separator() && word.get(half + 1 + i) == Some(front)
        })
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len % 2 != 1 {
            return None;
        }
        let half = len / 2;
        let ab = Alphabet::from_chars("ab").expect("valid alphabet");
        let w = random_word(&ab, half, rng);
        let mut out = w.clone();
        out.push(self.separator());
        for &s in w.symbols() {
            out.push(s);
        }
        Some(out)
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None;
        }
        // Half the negatives: perturb one mirrored letter of a positive
        // (the adversarial case a recognizer must catch); otherwise a
        // random word (virtually never in the language).
        if len % 2 == 1 && len >= 3 && rng.next_u32() % 2 == 0 {
            let pos = self.positive_example(len, rng)?;
            let half = len / 2;
            let flip = (rng.next_u32() as usize) % half;
            let mut symbols = pos.symbols().to_vec();
            symbols[half + 1 + flip] = Symbol(1 - symbols[half + 1 + flip].0);
            return Some(Word::from_symbols(symbols));
        }
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// Even-length palindromes over `{a, b}` — another `Θ(n²)`-bit language,
/// used to diversify the quadratic tier of the hierarchy experiments.
#[derive(Debug, Clone)]
pub struct Palindrome {
    alphabet: Alphabet,
}

impl Default for Palindrome {
    fn default() -> Self {
        Self::new()
    }
}

impl Palindrome {
    /// Creates the language over `{a, b}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("ab").expect("valid alphabet") }
    }
}

impl Language for Palindrome {
    fn name(&self) -> String {
        "even palindromes".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextFree
    }

    fn contains(&self, word: &Word) -> bool {
        if word.len() % 2 != 0 {
            return false;
        }
        let s = word.symbols();
        (0..s.len() / 2).all(|i| s[i] == s[s.len() - 1 - i])
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len % 2 != 0 {
            return None;
        }
        let half = random_word(&self.alphabet, len / 2, rng);
        let mut out = half.clone();
        for &s in half.reversed().symbols() {
            out.push(s);
        }
        Some(out)
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len < 2 {
            return None; // ε and single letters... ε ∈ L; len 1 is odd → all out? len 1 odd → not in L; wait len<2: len 0 is ε∈L (no negative), len 1: every word is a negative.
        }
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// `{ w ∈ {a,b}* : #a(w) = #b(w) }` — context-free, non-regular, denser
/// than `aⁿbⁿ`; exercises counter protocols on unordered inputs.
#[derive(Debug, Clone)]
pub struct EqualAB {
    alphabet: Alphabet,
}

impl Default for EqualAB {
    fn default() -> Self {
        Self::new()
    }
}

impl EqualAB {
    /// Creates the language over `{a, b}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("ab").expect("valid alphabet") }
    }
}

impl Language for EqualAB {
    fn name(&self) -> String {
        "#a = #b".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextFree
    }

    fn contains(&self, word: &Word) -> bool {
        let a = word.symbols().iter().filter(|s| s.index() == 0).count();
        2 * a == word.len()
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len % 2 != 0 {
            return None;
        }
        // Random shuffle of len/2 a's and len/2 b's (Fisher-Yates).
        let mut symbols: Vec<Symbol> = std::iter::repeat_n(Symbol(0), len / 2)
            .chain(std::iter::repeat_n(Symbol(1), len / 2))
            .collect();
        for i in (1..symbols.len()).rev() {
            let j = (rng.next_u64() as usize) % (i + 1);
            symbols.swap(i, j);
        }
        Some(Word::from_symbols(symbols))
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None;
        }
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// The Dyck language of balanced parentheses over `{(, )}` — context-free
/// and non-regular.
///
/// Together with [`AnBnCn`] it populates the `Θ(n log n)` tier from two
/// different Chomsky classes: a single counter (depth) suffices, so the
/// one-counter ring protocol recognizes it in `O(n log n)` bits.
#[derive(Debug, Clone)]
pub struct Dyck {
    alphabet: Alphabet,
}

impl Default for Dyck {
    fn default() -> Self {
        Self::new()
    }
}

impl Dyck {
    /// Creates the language over `{(, )}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("()").expect("valid alphabet") }
    }

    /// The opening-parenthesis symbol.
    #[must_use]
    pub fn open(&self) -> Symbol {
        Symbol(0)
    }

    /// The closing-parenthesis symbol.
    #[must_use]
    pub fn close(&self) -> Symbol {
        Symbol(1)
    }
}

impl Language for Dyck {
    fn name(&self) -> String {
        "balanced parens".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextFree
    }

    fn contains(&self, word: &Word) -> bool {
        let mut depth: i64 = 0;
        for &s in word.symbols() {
            depth += if s.index() == 0 { 1 } else { -1 };
            if depth < 0 {
                return false;
            }
        }
        depth == 0
    }

    fn positive_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len % 2 != 0 {
            return None;
        }
        // Random balanced word: at each step, open with probability
        // proportional to remaining capacity, never letting depth go
        // negative or exceed what can still be closed.
        let mut symbols = Vec::with_capacity(len);
        let mut depth = 0usize;
        for i in 0..len {
            let remaining = len - i;
            let must_close = depth == remaining; // all the rest must close
            let must_open = depth == 0;
            let open = if must_close {
                false
            } else if must_open {
                true
            } else {
                rng.next_u32() % 2 == 0
            };
            if open {
                depth += 1;
                symbols.push(Symbol(0));
            } else {
                depth -= 1;
                symbols.push(Symbol(1));
            }
        }
        debug_assert_eq!(depth, 0);
        Some(Word::from_symbols(symbols))
    }

    fn negative_example(&self, len: usize, rng: &mut dyn RngCore) -> Option<Word> {
        if len == 0 {
            return None; // ε is balanced
        }
        loop {
            let w = random_word(&self.alphabet, len, rng);
            if !self.contains(&w) {
                return Some(w);
            }
        }
    }
}

/// `{ aⁿ : n is a power of two }` — a unary non-regular language.
///
/// The star of Note 7.4: when the ring size is *known*, the leader decides
/// it with a single 1-bit-per-hop validity pass (`O(n)` bits) — a
/// non-regular language below the `Ω(n log n)` bound, impossible when `n`
/// is unknown.
#[derive(Debug, Clone)]
pub struct PowerOfTwoLength {
    alphabet: Alphabet,
}

impl Default for PowerOfTwoLength {
    fn default() -> Self {
        Self::new()
    }
}

impl PowerOfTwoLength {
    /// Creates the language over the unary alphabet `{a}`.
    #[must_use]
    pub fn new() -> Self {
        Self { alphabet: Alphabet::from_chars("a").expect("valid alphabet") }
    }
}

impl Language for PowerOfTwoLength {
    fn name(&self) -> String {
        "a^(2^k)".into()
    }

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn class(&self) -> LanguageClass {
        LanguageClass::ContextSensitive
    }

    fn contains(&self, word: &Word) -> bool {
        word.len().is_power_of_two()
    }

    fn positive_example(&self, len: usize, _rng: &mut dyn RngCore) -> Option<Word> {
        len.is_power_of_two().then(|| Word::from_symbols(vec![Symbol(0); len]))
    }

    fn negative_example(&self, len: usize, _rng: &mut dyn RngCore) -> Option<Word> {
        (!len.is_power_of_two()).then(|| Word::from_symbols(vec![Symbol(0); len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    #[test]
    fn anbn_membership() {
        let l = AnBn::new();
        let sigma = l.alphabet().clone();
        for (text, expect) in [
            ("", true),
            ("ab", true),
            ("aabb", true),
            ("aab", false),
            ("ba", false),
            ("abab", false),
            ("a", false),
        ] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(l.contains(&w), expect, "{text:?}");
        }
    }

    #[test]
    fn anbn_examples() {
        let l = AnBn::new();
        let mut r = rng();
        assert_eq!(l.positive_example(6, &mut r).unwrap().render(l.alphabet()), "aaabbb");
        assert!(l.positive_example(5, &mut r).is_none());
        for len in [1usize, 2, 9, 20] {
            let neg = l.negative_example(len, &mut r).unwrap();
            assert!(!l.contains(&neg));
        }
        assert!(l.negative_example(0, &mut r).is_none());
    }

    #[test]
    fn anbncn_membership() {
        let l = AnBnCn::new();
        let sigma = l.alphabet().clone();
        for (text, expect) in [
            ("", false), // the paper's definition requires n > 0
            ("012", true),
            ("001122", true),
            ("010212", false),
            ("0012", false),
            ("00112", false),
            ("2", false),
        ] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(l.contains(&w), expect, "{text:?}");
        }
    }

    #[test]
    fn anbncn_examples() {
        let l = AnBnCn::new();
        let mut r = rng();
        assert_eq!(l.positive_example(9, &mut r).unwrap().render(l.alphabet()), "000111222");
        assert!(l.positive_example(7, &mut r).is_none());
        let neg = l.negative_example(9, &mut r).unwrap();
        assert!(!l.contains(&neg));
    }

    #[test]
    fn wcw_membership() {
        let l = WcW::new();
        let sigma = l.alphabet().clone();
        for (text, expect) in [
            ("c", true),
            ("aca", true),
            ("abcab", true),
            ("acb", false),
            ("abcba", false),
            ("ab", false),
            ("ccc", false), // 'c' inside w is not allowed
            ("", false),
        ] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(l.contains(&w), expect, "{text:?}");
        }
    }

    #[test]
    fn wcw_examples_both_ways() {
        let l = WcW::new();
        let mut r = rng();
        for len in [1usize, 3, 7, 21] {
            let pos = l.positive_example(len, &mut r).unwrap();
            assert!(l.contains(&pos), "len={len}");
        }
        assert!(l.positive_example(4, &mut r).is_none());
        for len in [1usize, 3, 7, 20, 21] {
            let neg = l.negative_example(len, &mut r).unwrap();
            assert!(!l.contains(&neg), "len={len}");
        }
        // Mirror-perturbed negatives really occur (seed-dependent but the
        // loop covers both branches over many draws).
        let mut saw_near_miss = false;
        for _ in 0..40 {
            let neg = l.negative_example(9, &mut r).unwrap();
            let has_c_middle = neg.get(4) == Some(l.separator());
            if has_c_middle {
                saw_near_miss = true;
            }
        }
        assert!(saw_near_miss, "expected at least one mirrored near-miss negative");
    }

    #[test]
    fn palindrome_membership() {
        let l = Palindrome::new();
        let sigma = l.alphabet().clone();
        for (text, expect) in [
            ("", true),
            ("aa", true),
            ("abba", true),
            ("ab", false),
            ("aba", false),
            ("aabb", false),
        ] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(l.contains(&w), expect, "{text:?}");
        }
    }

    #[test]
    fn palindrome_examples() {
        let l = Palindrome::new();
        let mut r = rng();
        for len in [0usize, 2, 8, 20] {
            let pos = l.positive_example(len, &mut r).unwrap();
            assert!(l.contains(&pos), "len={len}");
        }
        assert!(l.positive_example(3, &mut r).is_none());
        for len in [2usize, 5, 8] {
            let neg = l.negative_example(len, &mut r).unwrap();
            assert!(!l.contains(&neg), "len={len}");
        }
    }

    #[test]
    fn equal_ab_membership_and_examples() {
        let l = EqualAB::new();
        let sigma = l.alphabet().clone();
        assert!(l.contains(&Word::from_str("ab", &sigma).unwrap()));
        assert!(l.contains(&Word::from_str("baba", &sigma).unwrap()));
        assert!(!l.contains(&Word::from_str("aab", &sigma).unwrap()));
        let mut r = rng();
        for len in [2usize, 10, 30] {
            let pos = l.positive_example(len, &mut r).unwrap();
            assert!(l.contains(&pos));
            let neg = l.negative_example(len, &mut r).unwrap();
            assert!(!l.contains(&neg));
        }
        assert!(l.positive_example(7, &mut r).is_none());
    }

    #[test]
    fn dyck_membership() {
        let l = Dyck::new();
        let sigma = l.alphabet().clone();
        for (text, expect) in [
            ("", true),
            ("()", true),
            ("(())()", true),
            ("(", false),
            (")", false),
            (")(", false),
            ("(()", false),
            ("())(", false),
        ] {
            let w = Word::from_str(text, &sigma).unwrap();
            assert_eq!(l.contains(&w), expect, "{text:?}");
        }
    }

    #[test]
    fn dyck_examples() {
        let l = Dyck::new();
        let mut r = rng();
        for len in [2usize, 4, 10, 40] {
            let pos = l.positive_example(len, &mut r).unwrap();
            assert!(l.contains(&pos), "len={len}: {}", pos.render(l.alphabet()));
            assert_eq!(pos.len(), len);
            let neg = l.negative_example(len, &mut r).unwrap();
            assert!(!l.contains(&neg), "len={len}");
        }
        assert!(l.positive_example(5, &mut r).is_none());
        assert!(l.negative_example(0, &mut r).is_none());
        // Positive generator produces varied words, not always ()()().
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..30 {
            distinct.insert(l.positive_example(8, &mut r).unwrap());
        }
        assert!(distinct.len() > 3, "generator collapsed to {} shapes", distinct.len());
    }

    #[test]
    fn power_of_two_membership_and_examples() {
        let l = PowerOfTwoLength::new();
        let mut r = rng();
        for len in [1usize, 2, 4, 8, 1024] {
            assert!(l.contains(&l.positive_example(len, &mut r).unwrap()));
        }
        for len in [3usize, 5, 6, 7, 100] {
            assert!(!l.contains(&l.negative_example(len, &mut r).unwrap()));
            assert!(l.positive_example(len, &mut r).is_none());
        }
        assert!(l.negative_example(8, &mut r).is_none());
    }

    #[test]
    fn classes_are_as_documented() {
        assert_eq!(AnBn::new().class(), LanguageClass::ContextFree);
        assert_eq!(AnBnCn::new().class(), LanguageClass::ContextSensitive);
        assert_eq!(WcW::new().class(), LanguageClass::ContextSensitive);
        assert_eq!(Palindrome::new().class(), LanguageClass::ContextFree);
        assert_eq!(EqualAB::new().class(), LanguageClass::ContextFree);
    }
}
