//! End-to-end guard for the `experiments` binary: the machine-readable
//! pipeline behind EXPERIMENTS.md. Complements `json_pipeline.rs` (which
//! exercises the library API) by going through the real CLI surface:
//! argument parsing, table rendering, the `--json` dump, and exit codes.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

#[test]
fn list_names_every_experiment() {
    let out = experiments().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    for id in ["e1", "e7", "e12", "a1", "a2"] {
        assert!(
            text.lines().any(|l| l.split_whitespace().next() == Some(id)),
            "--list is missing {id}:\n{text}"
        );
    }
}

#[test]
fn unknown_id_fails_cleanly() {
    let out = experiments().arg("nope").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment id"), "stderr: {err}");
}

/// A fast slice of the acceptance bar for the parallel executor: the
/// CLI's `--json` dump is byte-identical for `--workers 1` and
/// `--workers 4` on two sweep-heavy experiments.
#[test]
fn workers_flag_does_not_change_json() {
    let dir = std::env::temp_dir();
    let mut dumps = Vec::new();
    for workers in ["1", "4"] {
        let path = dir.join(format!("ringleader_workers_{workers}_{}.json", std::process::id()));
        let out = experiments()
            .args(["e7", "e10", "--workers", workers, "--json"])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--workers {workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        dumps.push(std::fs::read_to_string(&path).expect("JSON written"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(dumps[0], dumps[1], "worker count changed experiment JSON");
}

/// The full acceptance bar: every experiment (E1–E12, A1, A2) dumps
/// byte-identical JSON under `--workers 1` and `--workers 8`. Minutes of
/// wall clock, so ignored by default; the CI soak job runs it.
#[test]
#[ignore = "runs the full suite twice; run with --include-ignored"]
fn soak_full_suite_json_is_worker_count_invariant() {
    let dir = std::env::temp_dir();
    let mut dumps = Vec::new();
    for workers in ["1", "8"] {
        let path =
            dir.join(format!("ringleader_full_workers_{workers}_{}.json", std::process::id()));
        let out = experiments()
            .args(["--workers", workers, "--json"])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--workers {workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        dumps.push(std::fs::read_to_string(&path).expect("JSON written"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(dumps[0], dumps[1], "worker count changed full-suite JSON");
}

#[test]
fn json_dump_is_valid_and_complete() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ringleader_experiments_{}.json", std::process::id()));
    let out = experiments().args(["e10", "a2", "--json"]).arg(&path).output().expect("binary runs");
    assert!(
        out.status.success(),
        "experiments e10 a2 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("summary: 2/2 experiments reproduced"), "stdout: {stdout}");

    let raw = std::fs::read_to_string(&path).expect("JSON file written");
    let _ = std::fs::remove_file(&path);
    let payload: Vec<serde_json::Value> = serde_json::from_str(&raw).expect("valid JSON");
    assert_eq!(payload.len(), 2);
    for entry in &payload {
        // Every record carries the fields EXPERIMENTS.md quotes.
        for field in ["id", "title", "paper_claim", "verdict", "rows"] {
            assert!(
                entry.map_get(field).is_some(),
                "experiment record is missing {field:?}: {entry:?}"
            );
        }
        assert_eq!(
            entry.map_get("verdict").and_then(|v| v.as_str()),
            Some("Reproduced"),
            "experiment not reproduced: {entry:?}"
        );
    }
}
