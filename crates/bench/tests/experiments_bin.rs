//! End-to-end guard for the `experiments` binary: the machine-readable
//! pipeline behind EXPERIMENTS.md. Complements `json_pipeline.rs` (which
//! exercises the library API) and `golden_paper.rs` (byte-identity of the
//! paper scale) by going through the real CLI surface: argument parsing,
//! table rendering, the versioned `--json` envelope, and exit codes.

use std::process::Command;

fn experiments() -> Command {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
}

/// `--list` derives from the registry: exactly the registered ids, in
/// registration order, every one of them runnable — no drift possible
/// between the listing and dispatch.
#[test]
fn list_is_the_registry() {
    let out = experiments().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8 output");
    let listed: Vec<String> =
        text.lines().filter_map(|l| l.split_whitespace().next()).map(str::to_owned).collect();
    let registry = ringleader_bench::registry();
    let registered: Vec<String> = registry.ids().iter().map(|id| id.to_ascii_lowercase()).collect();
    assert_eq!(listed, registered, "--list must mirror the registry:\n{text}");
    for id in &listed {
        assert!(registry.get(id).is_some(), "listed id {id:?} must dispatch");
    }
}

#[test]
fn unknown_id_fails_cleanly() {
    let out = experiments().arg("nope").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown experiment id"), "stderr: {err}");
}

/// A typo like `--jsn out.json` must not silently run the full suite as
/// if `--jsn` and the path were experiment ids.
#[test]
fn unknown_flags_are_rejected() {
    for flags in [vec!["--jsn", "out.json"], vec!["-x"], vec!["e10", "--bogus"]] {
        let out = experiments().args(&flags).output().expect("binary runs");
        assert!(!out.status.success(), "{flags:?} must fail");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown flag"), "stderr for {flags:?}: {err}");
    }
}

#[test]
fn scale_flag_is_validated() {
    let out = experiments().args(["--scale", "huge"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("smoke, paper, large"), "stderr: {err}");

    let out = experiments().args(["e10", "--scale", "smoke"]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// `--shards` must describe a realizable partition: zero shards is
/// nonsense, and more shards than the smallest selected ring would leave
/// arcs with no processor to own.
#[test]
fn shards_flag_is_validated() {
    let out = experiments().args(["--shards", "0"]).output().expect("binary runs");
    assert!(!out.status.success(), "--shards 0 must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--shards 0 is invalid"), "stderr: {err}");

    let out = experiments()
        .args(["e1", "--scale", "smoke", "--shards", "9999"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "--shards 9999 must fail at smoke scale");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("exceeds the ring size"), "stderr: {err}");
    assert!(err.contains("e1") || err.contains("E1"), "stderr names the offender: {err}");

    // A count the smallest smoke ring can host sails through.
    let out = experiments()
        .args(["e10", "--scale", "smoke", "--shards", "2"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
}

/// `--checkpoint-every` below the ~50n-deliveries budget from
/// BENCH_0005.json draws a non-fatal stderr warning; a cadence of one
/// flush per invocation stays quiet.
#[test]
fn tight_checkpoint_cadence_warns() {
    let dir = std::env::temp_dir().join(format!("ringleader_ckpt_warn_{}", std::process::id()));
    let out = experiments()
        .args(["e7", "e10", "--scale", "smoke", "--checkpoint-every", "1", "--checkpoint-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {err}");
    assert!(err.contains("warning: --checkpoint-every 1"), "stderr: {err}");
    assert!(err.contains("BENCH_0005.json"), "stderr: {err}");

    let out = experiments()
        .args(["e7", "e10", "--scale", "smoke", "--checkpoint-every", "2", "--checkpoint-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {err}");
    assert!(!err.contains("warning:"), "one flush per invocation must not warn: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn filter_selects_by_substring() {
    // "Known n: the gap closes" — the only title matching "known".
    let out = experiments().args(["--filter", "known"]).output().expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== E9"), "{text}");
    assert!(text.contains("summary: 1/1 experiments reproduced"), "{text}");

    let out = experiments().args(["--filter", "zzz-no-match"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no experiment id or title matches"), "stderr: {err}");
}

/// A fast slice of the acceptance bar for the parallel executor: the
/// CLI's `--json` dump is byte-identical for `--workers 1` and
/// `--workers 4` on two sweep-heavy experiments.
#[test]
fn workers_flag_does_not_change_json() {
    let dir = std::env::temp_dir();
    let mut dumps = Vec::new();
    for workers in ["1", "4"] {
        let path = dir.join(format!("ringleader_workers_{workers}_{}.json", std::process::id()));
        let out = experiments()
            .args(["e7", "e10", "--workers", workers, "--json"])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--workers {workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        dumps.push(std::fs::read_to_string(&path).expect("JSON written"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(dumps[0], dumps[1], "worker count changed experiment JSON");
}

/// The full acceptance bar: every experiment (E1–E12, A1, A2) dumps
/// byte-identical JSON under `--workers 1` and `--workers 8`. Minutes of
/// wall clock, so ignored by default; the CI soak job runs it.
#[test]
#[ignore = "runs the full suite twice; run with --include-ignored"]
fn soak_full_suite_json_is_worker_count_invariant() {
    let dir = std::env::temp_dir();
    let mut dumps = Vec::new();
    for workers in ["1", "8"] {
        let path =
            dir.join(format!("ringleader_full_workers_{workers}_{}.json", std::process::id()));
        let out = experiments()
            .args(["--workers", workers, "--json"])
            .arg(&path)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--workers {workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        dumps.push(std::fs::read_to_string(&path).expect("JSON written"));
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(dumps[0], dumps[1], "worker count changed full-suite JSON");
}

/// The nightly large-scale assertion: every asymptotic experiment still
/// reports REPRODUCED with grids reaching n ≥ 16384. Soak-only, and
/// release-only: the soak job runs it as `cargo test --release …`; under
/// a debug `--include-ignored` pass it skips rather than repeat the
/// quadratic n=16385 sweeps an order of magnitude slower.
#[test]
#[ignore = "large-scale grids; run via the release-mode soak step"]
fn soak_large_scale_asymptotics_reproduce() {
    if cfg!(debug_assertions) {
        eprintln!("skipping: large-scale grids are asserted by the release-mode soak step");
        return;
    }
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ringleader_large_{}.json", std::process::id()));
    let out = experiments()
        .args(["e1", "e5", "e6", "e7", "e8", "e11", "--scale", "large", "--workers", "0", "--json"])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let raw = std::fs::read_to_string(&path).expect("JSON written");
    let _ = std::fs::remove_file(&path);
    let envelope: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
    let experiments = envelope.map_get("experiments").and_then(|e| e.as_seq()).expect("entries");
    assert_eq!(experiments.len(), 6);
    for entry in experiments {
        let grid = entry.map_get("grid").expect("grid metadata");
        let max = grid
            .map_get("sizes")
            .and_then(|s| s.as_seq())
            .and_then(|sizes| sizes.iter().filter_map(serde_json::Value::as_u64).max())
            .expect("sizes");
        assert!(max >= 16384, "large grid tops out at {max}: {entry:?}");
        let verdict = entry.map_get("result").and_then(|r| r.map_get("verdict"));
        assert_eq!(verdict.and_then(|v| v.as_str()), Some("Reproduced"), "{entry:?}");
    }
}

#[test]
fn json_envelope_is_versioned_and_complete() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ringleader_experiments_{}.json", std::process::id()));
    let out = experiments().args(["e10", "a2", "--json"]).arg(&path).output().expect("binary runs");
    assert!(
        out.status.success(),
        "experiments e10 a2 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("summary: 2/2 experiments reproduced"), "stdout: {stdout}");

    let raw = std::fs::read_to_string(&path).expect("JSON file written");
    let _ = std::fs::remove_file(&path);
    let envelope: serde_json::Value = serde_json::from_str(&raw).expect("valid JSON");
    assert_eq!(
        envelope.map_get("schema_version").and_then(serde_json::Value::as_u64),
        Some(1),
        "{envelope:?}"
    );
    assert_eq!(envelope.map_get("scale").and_then(|s| s.as_str()), Some("paper"));
    let entries = envelope.map_get("experiments").and_then(|e| e.as_seq()).expect("entries");
    assert_eq!(entries.len(), 2);
    for entry in entries {
        for field in ["id", "grid", "result"] {
            assert!(entry.map_get(field).is_some(), "entry is missing {field:?}: {entry:?}");
        }
        let grid = entry.map_get("grid").expect("grid");
        for field in ["sizes", "samples_per_size"] {
            assert!(grid.map_get(field).is_some(), "grid is missing {field:?}: {grid:?}");
        }
        let result = entry.map_get("result").expect("result");
        // Every record carries the fields EXPERIMENTS.md quotes.
        for field in ["id", "title", "paper_claim", "verdict", "rows"] {
            assert!(
                result.map_get(field).is_some(),
                "experiment record is missing {field:?}: {result:?}"
            );
        }
        assert_eq!(
            result.map_get("verdict").and_then(|v| v.as_str()),
            Some("Reproduced"),
            "experiment not reproduced: {result:?}"
        );
    }
}
