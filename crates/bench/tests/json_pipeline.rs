//! The machine-readable experiment pipeline: results serialize, round-trip,
//! and carry everything EXPERIMENTS.md quotes.

use ringleader_analysis::{ExperimentHarness, ExperimentResult, Scale, Serial, Verdict};
use ringleader_bench::{registry, run_by_id};

#[test]
fn fast_experiments_roundtrip_through_json() {
    // Use the cheap, fully-deterministic experiments to keep CI fast.
    for id in ["e10", "a2"] {
        let result = run_by_id(id).expect("known id");
        let json = result.to_json();
        let back: ExperimentResult = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(back, result, "{id}");
        assert_eq!(back.verdict, Verdict::Reproduced, "{id}");
        // The JSON carries the full table, not a summary.
        assert_eq!(back.rows.len(), result.rows.len());
        assert!(!back.paper_claim.is_empty());
    }
}

#[test]
fn experiment_results_are_deterministic() {
    // Same seeds everywhere ⇒ byte-identical reruns. This is what makes
    // EXPERIMENTS.md quotable: the numbers cannot drift between runs.
    let registry = registry();
    let harness = ExperimentHarness::new(&Serial, Scale::Paper);
    let a = harness.run_id(&registry, "e10").expect("registered");
    let b = harness.run_id(&registry, "e10").expect("registered");
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn tables_render_for_humans() {
    let result = run_by_id("a2").expect("known id");
    let text = result.to_string();
    assert!(text.contains("== A2"));
    assert!(text.contains("verdict: REPRODUCED"));
    // Every data row appears in the rendering.
    for row in &result.rows {
        for cell in row {
            assert!(text.contains(cell.as_str()), "missing cell {cell:?}");
        }
    }
}
