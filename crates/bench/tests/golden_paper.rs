//! Golden-file regression: `--scale paper` must reproduce the seed-era
//! experiment output **byte for byte**.
//!
//! The golden file (`tests/golden/experiments_paper.json`) was generated
//! by the pre-registry `experiments --json` binary: a pretty-printed
//! array of the fourteen `ExperimentResult` records, all REPRODUCED.
//! The registry refactor moved every driver behind
//! [`ringleader_bench::registry`], so this test pins that the paper
//! scale's results — serialized exactly the way the historical binary
//! serialized them — still match the seed bytes, for the serial executor
//! and for an 8-worker pool, with single runs serial (`shards = 1`) and
//! split across the sharded engine (`shards = 4`). Both parallelism axes
//! must be unobservable in the output.

use ringleader_analysis::{ExperimentHarness, Parallel, Scale, Serial, SweepExecutor, Verdict};
use ringleader_bench::registry;

const GOLDEN: &str = include_str!("golden/experiments_paper.json");

/// Serializes results the way the pre-registry binary did: a pretty
/// JSON array of records plus a trailing newline.
fn render(exec: &dyn SweepExecutor, shards: usize) -> String {
    let registry = registry();
    let results = ExperimentHarness::new(exec, Scale::Paper).with_shards(shards).run_all(&registry);
    assert_eq!(results.len(), 14);
    for r in &results {
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
    }
    let payload: Vec<serde_json::Value> = results
        .iter()
        .map(|r| serde_json::to_value(r).expect("string-only structs serialize"))
        .collect();
    format!("{}\n", serde_json::to_string_pretty(&payload).expect("valid JSON"))
}

/// Panics with the first differing line instead of dumping two ~20 kB
/// strings on mismatch.
fn assert_same(got: &str, label: &str) {
    if got == GOLDEN {
        return;
    }
    for (i, (g, w)) in got.lines().zip(GOLDEN.lines()).enumerate() {
        assert_eq!(g, w, "{label}: first divergence from golden file at line {}", i + 1);
    }
    panic!(
        "{label}: output is a strict prefix/extension of the golden file \
         ({} vs {} lines)",
        got.lines().count(),
        GOLDEN.lines().count()
    );
}

#[test]
fn paper_scale_matches_the_seed_output_byte_for_byte() {
    assert_same(&render(&Serial, 1), "serial");
}

#[test]
fn paper_scale_is_worker_invariant_against_the_same_golden() {
    assert_same(&render(&Parallel(8), 1), "8 workers");
}

#[test]
fn paper_scale_is_shard_invariant_against_the_same_golden() {
    assert_same(&render(&Serial, 4), "4 shards");
}

#[test]
fn paper_scale_worker_and_shard_axes_compose_against_the_same_golden() {
    assert_same(&render(&Parallel(8), 4), "8 workers x 4 shards");
}
