//! E8: the `L_g` bit-complexity hierarchy is dense (Note 7.3).

use ringleader_analysis::{
    log_log_slope, sweep_protocol_with, ExperimentResult, ExperimentSpec, GridProfile, RunCtx,
    ScaleGrid, Verdict,
};
use ringleader_core::LgRecognizer;
use ringleader_langs::{GrowthFunction, Language, LgLanguage};

/// E8 — Note 7.3: for every `g` between `n log n` and `n²` the language
/// `L_g` costs `Θ(g(n))` bits.
///
/// Four growth functions spanning the band are swept; for each, the
/// measured-bits-to-`g(n)` ratio must be stable (bounded above and below
/// across sizes), and the log-log slopes must come out *ordered* the same
/// way the functions are — the hierarchy is real and dense.
pub(crate) fn e8_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E8",
        "The L_g hierarchy: Θ(g(n)) for every g in the band",
        "Note 7.3: for every g, Ω(n log n) ≤ g ≤ O(n²), L_g requires Θ(g(n)) bits",
        GridProfile::per_scale(
            ScaleGrid::new(vec![32, 64, 128], 2),
            ScaleGrid::new(vec![32, 64, 128, 256, 512], 3),
            ScaleGrid::new(vec![1024, 4096, 16384], 1),
        ),
        run_e8,
    )
}

fn run_e8(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "g".into(),
        "n".into(),
        "bits".into(),
        "g(n)".into(),
        "bits/g(n)".into(),
    ]);
    let growths = [
        GrowthFunction::NLogN,
        GrowthFunction::NQuarterLog,
        GrowthFunction::NSqrtN,
        GrowthFunction::NSquaredHalf,
    ];
    let mut all_good = true;
    let mut slopes = Vec::new();
    for g in growths {
        let lang = LgLanguage::new(g);
        let proto = LgRecognizer::new(&lang);
        let config = ctx.sweep_config();
        let points = match sweep_protocol_with(&proto, &lang, &config, ctx.exec()) {
            Ok(p) => p,
            Err(e) => {
                all_good = false;
                result.push_note(format!("{}: simulation error {e}", lang.name()));
                continue;
            }
        };
        let mut ratios = Vec::new();
        for p in &points {
            let gn = g.eval(p.n as u64) as f64;
            let ratio = p.bits as f64 / gn;
            ratios.push(ratio);
            result.push_row(vec![
                g.label().into(),
                p.n.to_string(),
                p.bits.to_string(),
                (gn as u64).to_string(),
                format!("{ratio:.3}"),
            ]);
        }
        // Θ(g): the ratio stays within a constant band across the sweep.
        let max = ratios.iter().copied().fold(f64::MIN, f64::max);
        let min = ratios.iter().copied().fold(f64::MAX, f64::min);
        if max / min > 4.0 {
            all_good = false;
            result.push_note(format!("{}: ratio band too wide ({min:.3}..{max:.3})", g.label()));
        }
        let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
        slopes.push((g, log_log_slope(&series)));
    }
    // Slopes ordered like the growth functions.
    let slope_values: Vec<f64> = slopes.iter().map(|&(_, s)| s).collect();
    let ordered = slope_values.windows(2).all(|w| w[0] < w[1] + 0.02);
    if !ordered {
        all_good = false;
    }
    result.push_note(format!(
        "log-log slopes across the band: {}",
        slopes.iter().map(|(g, s)| format!("{}→{s:.2}", g.label())).collect::<Vec<_>>().join(", ")
    ));
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("a tier fell outside its Θ(g) band".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e8_reproduces() {
        let r = e8_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // 4 growth functions × 5 sizes.
        assert_eq!(r.rows.len(), 20);
    }

    #[test]
    fn e8_smoke_keeps_the_band_ordered() {
        let r = e8_spec().run(&Serial, Scale::Smoke);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 12);
    }
}
