//! E2: the Theorem 2 message-graph construction, both directions.

use ringleader_analysis::{
    run_independent, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, Verdict,
};
use ringleader_core::{
    CountRingSize, DfaOnePass, GraphOutcome, MessageGraphExplorer, OnePassParity, ThreeCounters,
    WcWPrefixForward,
};
use ringleader_langs::{regular_corpus, Language};

/// E2 — Theorem 2 / Corollary 1: an `O(n)`-bit one-pass algorithm's
/// message graph is finite and *is* an automaton for its language; a
/// non-regular recognizer's message set diverges.
///
/// For every regular protocol the extracted DFA is proven equivalent to
/// the reference automaton (exact symmetric-difference check, not
/// sampling). For the counter protocols the exploration must exceed its
/// budget, with the growth profile showing *why* (one new message per
/// depth for counting; superlinear for richer tokens). Graph exploration
/// has no ring-size dimension, so the spec is scale-independent.
pub(crate) fn e2_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E2",
        "Message graphs: finite = regular, divergent = non-regular",
        "Theorem 2: O(n) one-pass => finite message graph => DFA; Corollary 1: non-regular one-pass uses infinitely many messages",
        GridProfile::fixed(vec![]),
        run_e2,
    )
}

fn run_e2(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "algorithm".into(),
        "graph".into(),
        "messages".into(),
        "language check".into(),
    ]);
    let mut all_good = true;
    let explorer = MessageGraphExplorer::new(4000);

    // Finite side: every corpus DFA protocol closes and reproduces its
    // language exactly. Each exploration is independent — fan out, fold
    // rows in corpus order.
    let corpus = regular_corpus();
    let corpus_rows = run_independent(ctx.exec(), corpus.len(), |i| {
        let lang = &corpus[i];
        let proto = DfaOnePass::new(lang);
        match explorer.explore(&proto) {
            GraphOutcome::Finite { dfa, distinct_messages } => {
                let equivalent = dfa.equivalent(lang.dfa()).unwrap_or(false);
                (
                    vec![
                        format!("one-pass[{}]", lang.name()),
                        "finite".into(),
                        distinct_messages.to_string(),
                        if equivalent { "equivalent (exact)".into() } else { "MISMATCH".into() },
                    ],
                    equivalent,
                )
            }
            GraphOutcome::Exceeded { .. } => (
                vec![
                    format!("one-pass[{}]", lang.name()),
                    "diverged?!".into(),
                    "-".into(),
                    "FAILED".into(),
                ],
                false,
            ),
        }
    });
    for (row, good) in corpus_rows {
        if !good {
            all_good = false;
        }
        result.push_row(row);
    }

    // The one-pass parity protocol is regular but message-hungry: finite,
    // no reference DFA to compare against (we check closure only).
    match explorer.explore(&OnePassParity::new(2)) {
        GraphOutcome::Finite { distinct_messages, .. } => {
            result.push_row(vec![
                "one-pass-parity(k=2)".into(),
                "finite".into(),
                distinct_messages.to_string(),
                "regular (closure)".into(),
            ]);
        }
        GraphOutcome::Exceeded { .. } => {
            all_good = false;
            result.push_row(vec![
                "one-pass-parity(k=2)".into(),
                "diverged?!".into(),
                "-".into(),
                "FAILED".into(),
            ]);
        }
    }

    // Infinite side: counter algorithms must blow the budget. Three
    // independent explorations, fanned out the same way.
    let divergent_names = ["count-ring-size", "three-counters", "wcw-prefix-forward"];
    let divergent_outcomes = run_independent(ctx.exec(), divergent_names.len(), |i| match i {
        0 => explorer.explore(&CountRingSize::probe()),
        1 => explorer.explore(&ThreeCounters::new()),
        _ => explorer.explore(&WcWPrefixForward::new()),
    });
    for (name, outcome) in divergent_names.into_iter().zip(divergent_outcomes) {
        match outcome {
            GraphOutcome::Exceeded { growth, budget } => {
                let profile = growth_summary(&growth);
                result.push_row(vec![
                    name.into(),
                    format!("diverged (> {budget})"),
                    growth.last().map_or_else(|| "-".into(), ToString::to_string),
                    profile,
                ]);
            }
            GraphOutcome::Finite { distinct_messages, .. } => {
                all_good = false;
                result.push_row(vec![
                    name.into(),
                    "finite?!".into(),
                    distinct_messages.to_string(),
                    "FAILED (expected divergence)".into(),
                ]);
            }
        }
    }

    result.push_note("equivalence via emptiness of the symmetric difference — exact, not sampled");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("a graph landed on the wrong side of the dichotomy".into())
    });
    result
}

/// Summarizes a cumulative growth profile as a per-depth discovery trend.
fn growth_summary(growth: &[usize]) -> String {
    if growth.len() < 3 {
        return "short profile".into();
    }
    let deltas: Vec<usize> = growth.windows(2).map(|w| w[1] - w[0]).collect();
    let first = deltas.first().copied().unwrap_or(0);
    let last = deltas.last().copied().unwrap_or(0);
    if deltas.iter().all(|&d| d == first) {
        format!("+{first}/depth (linear growth)")
    } else if last > first {
        format!("+{first}→+{last}/depth (superlinear growth)")
    } else {
        format!("+{first}→+{last}/depth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e2_reproduces() {
        let r = e2_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // Corpus languages + parity + 3 divergent protocols.
        assert_eq!(r.rows.len(), regular_corpus().len() + 1 + 3);
    }

    #[test]
    fn growth_summaries_read_well() {
        assert!(growth_summary(&[1, 2, 3, 4]).contains("linear"));
        assert!(growth_summary(&[2, 4, 8, 16]).contains("superlinear"));
        assert_eq!(growth_summary(&[1]), "short profile");
    }
}
