//! E3 and E7: the `Ω(n log n)` lower-bound machinery and its matching
//! upper bound.

use ringleader_analysis::{
    fit_series, sweep_protocol_with, ExperimentResult, ExperimentSpec, GridProfile, GrowthModel,
    RunCtx, ScaleGrid, Verdict,
};
use ringleader_core::infostate::exhaustive_words;
use ringleader_core::{analyze_info_states, CollectAll, CountRingSize, ThreeCounters};
use ringleader_langs::{AnBnCn, Language};
use std::sync::Arc;

/// E3 — Theorem 4: the information-state census.
///
/// Three measurable consequences of the lower-bound proof:
///
/// 1. on shortest-witness words at most **2** processors share an
///    information state (verified exhaustively at small `n`);
/// 2. distinct states grow with `n`, so naming one takes `Ω(log n)` bits;
/// 3. the max message width of the counter protocols grows like `log n` —
///    `Θ(log n)`-bit messages × `n` messages = the `Θ(n log n)` total.
///
/// The grid drives consequence 3's width sweep; the censuses are
/// scale-independent.
pub(crate) fn e3_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E3",
        "Information states: the Ω(n log n) mechanism",
        "Theorem 4: at most two processors share an information state on shortest witness words; ceil(n/2) distinct states need Ω(log n) bits",
        GridProfile::per_scale(
            ScaleGrid::new(vec![24, 96, 384], 2),
            ScaleGrid::new(vec![24, 96, 384, 1536], 3),
            ScaleGrid::new(vec![96, 384, 1536, 6144, 24576], 1),
        ),
        run_e3,
    )
}

fn run_e3(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "protocol".into(),
        "words".into(),
        "distinct IS".into(),
        "max mult (shortest)".into(),
        "bits to name".into(),
        "max msg bits".into(),
    ]);
    let mut all_good = true;

    // Exhaustive census for the three-counter protocol, |w| <= 6.
    let proto = ThreeCounters::new();
    let sigma = proto.language().alphabet().clone();
    let mut words = Vec::new();
    for len in 1..=6usize {
        words.extend(exhaustive_words(&sigma, len));
    }
    match analyze_info_states(&proto, &words) {
        Ok(report) => {
            if report.max_multiplicity_on_shortest_witness > 2 {
                all_good = false;
            }
            result.push_row(vec![
                "three-counters (exhaustive)".into(),
                report.words_tested.to_string(),
                report.distinct_states.to_string(),
                report.max_multiplicity_on_shortest_witness.to_string(),
                report.bits_to_distinguish.to_string(),
                report.max_message_bits.to_string(),
            ]);
        }
        Err(e) => {
            all_good = false;
            result.push_note(format!("three-counters census failed: {e}"));
        }
    }

    // Counting protocol: unary rings 1..=64 — distinct states scale with n.
    let count = CountRingSize::probe();
    let unary = ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet");
    let words: Vec<ringleader_automata::Word> = (1..=64)
        .map(|n| {
            ringleader_automata::Word::from_str(&"a".repeat(n), &unary).expect("unary words parse")
        })
        .collect();
    match analyze_info_states(&count, &words) {
        Ok(report) => {
            if report.max_multiplicity_on_shortest_witness > 2 {
                all_good = false;
            }
            // 64 rings: every follower position holds a unique counter;
            // distinct states must be Ω(total processors / const).
            if report.distinct_states < 64 {
                all_good = false;
            }
            result.push_row(vec![
                "count-ring-size (n=1..64)".into(),
                report.words_tested.to_string(),
                report.distinct_states.to_string(),
                report.max_multiplicity_on_shortest_witness.to_string(),
                report.bits_to_distinguish.to_string(),
                report.max_message_bits.to_string(),
            ]);
        }
        Err(e) => {
            all_good = false;
            result.push_note(format!("counting census failed: {e}"));
        }
    }

    // Message-width growth: max message bits across n must grow (log-like),
    // unlike any O(n) protocol's constant width.
    let lang = AnBnCn::new();
    let config = ctx.sweep_config();
    let (lo, hi) = (config.sizes.first().copied().unwrap_or(0), ctx.max_size());
    match sweep_protocol_with(&ThreeCounters::new(), &lang, &config, ctx.exec()) {
        Ok(points) => {
            let widths: Vec<usize> = points.iter().map(|p| p.max_message_bits).collect();
            let grows = widths.windows(2).all(|w| w[1] > w[0]);
            if !grows {
                all_good = false;
            }
            result.push_note(format!(
                "three-counters max message bits across n={lo}..{hi}: {widths:?} (growing ≈ log n)"
            ));
        }
        Err(e) => {
            all_good = false;
            result.push_note(format!("width sweep failed: {e}"));
        }
    }

    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("a lower-bound invariant was violated".into())
    });
    result
}

/// E7 — Note 7.2: `0ⁿ1ⁿ2ⁿ` (context-sensitive!) in `Θ(n log n)` bits,
/// with the collect-all baseline crossing over at small `n`.
pub(crate) fn e7_spec() -> ExperimentSpec {
    let word = crate::counter_scenario_word();
    ExperimentSpec::new(
        "E7",
        "0^n 1^n 2^n via three counters: Θ(n log n)",
        "Note 7.2: a context-sensitive, non-context-free language recognized in O(n log n) bits using three counters",
        GridProfile::per_scale(
            ScaleGrid::new(vec![6, 12, 24, 48, 96, 192], 2),
            ScaleGrid::new(vec![6, 12, 24, 48, 96, 192, 384, 768, 1536], 3),
            ScaleGrid::new(vec![1536, 3072, 6144, 12288, 24576], 1),
        )
        // The n log n tier at 2^17–2^18 processors (sizes stay divisible
        // by 3 for 0^k 1^k 2^k). The quadratic collect-all baseline is
        // skipped at this scale — see `run_e7`.
        .massive(ScaleGrid::new(vec![49_152, 131_073, 262_146], 1)),
        run_e7,
    )
    .with_expected_model(GrowthModel::NLogN)
    .with_scenario(ringleader_analysis::ScheduleScenario::new(
        "three-counters",
        || Box::new(ThreeCounters::new()),
        word,
    ))
}

fn run_e7(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "n".into(),
        "counters bits".into(),
        "collect-all bits".into(),
        "winner".into(),
        "counters bits/(n log n)".into(),
    ]);
    let lang = AnBnCn::new();
    let counters = ThreeCounters::new();
    let collect = CollectAll::new(Arc::new(AnBnCn::new()));
    let config = ctx.sweep_config();
    // The collect-all baseline is Θ(n²) bits: ruinous at massive sizes,
    // where its verdict role (the crossover) is long settled anyway.
    let with_baseline = ctx.scale() != ringleader_analysis::Scale::Massive;
    let counter_points = match sweep_protocol_with(&counters, &lang, &config, ctx.exec()) {
        Ok(a) => a,
        Err(_) => {
            result.set_verdict(Verdict::Failed("simulation error".into()));
            return result;
        }
    };
    let collect_points = if with_baseline {
        match sweep_protocol_with(&collect, &lang, &config, ctx.exec()) {
            Ok(b) => b,
            Err(_) => {
                result.set_verdict(Verdict::Failed("simulation error".into()));
                return result;
            }
        }
    } else {
        result.push_note("collect-all baseline skipped at massive scale (quadratic bit cost)");
        Vec::new()
    };

    let mut crossover: Option<usize> = None;
    for (i, cp) in counter_points.iter().enumerate() {
        let nf = cp.n as f64;
        let norm = cp.bits as f64 / (nf * nf.log2());
        let (collect_cell, winner) = match collect_points.get(i) {
            Some(bp) => {
                if cp.bits < bp.bits && crossover.is_none() {
                    crossover = Some(cp.n);
                }
                (bp.bits.to_string(), if cp.bits < bp.bits { "counters" } else { "collect-all" })
            }
            None => ("-".to_owned(), "counters"),
        };
        result.push_row(vec![
            cp.n.to_string(),
            cp.bits.to_string(),
            collect_cell,
            winner.into(),
            format!("{norm:.2}"),
        ]);
    }

    let series: Vec<(usize, f64)> = counter_points.iter().map(|p| (p.n, p.bits as f64)).collect();
    let fit = fit_series(&series);
    result.push_note(format!(
        "fit: {} (c={:.2}, dispersion={:.3}, log-log slope {:.3})",
        fit.best_model, fit.constant, fit.dispersion, fit.log_log_slope
    ));
    if let Some(n) = crossover {
        result.push_note(format!("counters overtake collect-all from n={n} on"));
    }

    let verdict = if with_baseline {
        let collect_series: Vec<(usize, f64)> =
            collect_points.iter().map(|p| (p.n, p.bits as f64)).collect();
        let collect_fit = fit_series(&collect_series);
        if fit.best_model == GrowthModel::NLogN
            && collect_fit.best_model == GrowthModel::Quadratic
            && crossover.is_some()
        {
            Verdict::Reproduced
        } else {
            Verdict::Failed(format!(
                "expected n log n vs n^2, measured {} vs {}",
                fit.best_model, collect_fit.best_model
            ))
        }
    } else if fit.best_model == GrowthModel::NLogN {
        Verdict::Reproduced
    } else {
        Verdict::Failed(format!("expected n log n, measured {}", fit.best_model))
    };
    result.set_verdict(verdict);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e3_reproduces() {
        let r = e3_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 2);
    }

    #[test]
    fn e7_reproduces() {
        let r = e7_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert!(r.rows.len() >= 8);
        // The last rows must be counter wins (n log n < n^2 eventually).
        let last = r.rows.last().unwrap();
        assert_eq!(last[3], "counters");
    }

    #[test]
    fn e7_smoke_still_finds_the_crossover() {
        let r = e7_spec().run(&Serial, Scale::Smoke);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
    }
}
