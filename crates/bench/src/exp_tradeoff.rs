//! E10: the pass/bit trade-off (Note 7.5), reproduced *exactly*.

use ringleader_analysis::{
    run_independent, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, Verdict,
};
use ringleader_core::{OnePassParity, TwoPassParity};
use ringleader_langs::Language;
use ringleader_sim::RingRunner;

/// E10 — Note 7.5: the two-pass algorithm costs `(2k+1)·n` bits and the
/// one-pass algorithm `(k + 2^k − 1)·n`. These are closed forms, not
/// asymptotics — the measured totals must equal them bit for bit, with
/// the crossover at `k = 3`. The grid's single size is the ring the
/// closed forms are evaluated on.
pub(crate) fn e10_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E10",
        "Two passes beat one pass, exponentially in k",
        "Note 7.5: a language needing (2k+1)n bits in two passes needs (k+2^k-1)n bits in one pass",
        GridProfile::fixed(vec![120]),
        run_e10,
    )
}

fn run_e10(ctx: &RunCtx<'_>) -> ExperimentResult {
    let n = ctx.max_size();
    let mut result = ctx.new_result(vec![
        "k".into(),
        "|Σ|".into(),
        format!("2-pass bits (n={n})"),
        "formula (2k+1)n".into(),
        format!("1-pass bits (n={n})"),
        "formula (k+2^k-1)n".into(),
        "winner".into(),
    ]);
    let mut all_good = true;
    // Workloads are drawn serially from one RNG stream (byte-identical to
    // the historical serial loop); only the independent runs fan out.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(12);
    let cases: Vec<(u32, ringleader_automata::Word)> = (1..=5u32)
        .map(|k| {
            let lang = TwoPassParity::new(k).language().clone();
            let word = lang.positive_example(n, &mut rng).expect("positives exist at every length");
            (k, word)
        })
        .collect();
    let outcomes = run_independent(ctx.exec(), cases.len(), |i| {
        let (k, word) = &cases[i];
        let two = TwoPassParity::new(*k);
        let one = OnePassParity::new(*k);
        let b2 = RingRunner::new().run(&two, word).map(|o| (o.stats.total_bits, o.accepted()));
        let b1 = RingRunner::new().run(&one, word).map(|o| (o.stats.total_bits, o.accepted()));
        (b2, b1)
    });
    for ((k, _), (two_run, one_run)) in cases.iter().zip(outcomes) {
        let k = *k;
        let (b2, d2) = match two_run {
            Ok(pair) => pair,
            Err(e) => {
                all_good = false;
                result.push_note(format!("two-pass k={k} failed: {e}"));
                continue;
            }
        };
        let (b1, d1) = match one_run {
            Ok(pair) => pair,
            Err(e) => {
                all_good = false;
                result.push_note(format!("one-pass k={k} failed: {e}"));
                continue;
            }
        };
        if !d2 || !d1 {
            all_good = false;
        }
        let f2 = TwoPassParity::new(k).predicted_bits(n);
        let f1 = OnePassParity::new(k).predicted_bits(n);
        if b2 != f2 || b1 != f1 {
            all_good = false;
        }
        let winner = match b2.cmp(&b1) {
            std::cmp::Ordering::Less => "two-pass",
            std::cmp::Ordering::Equal => "tie",
            std::cmp::Ordering::Greater => "one-pass",
        };
        result.push_row(vec![
            k.to_string(),
            (1usize << k).to_string(),
            b2.to_string(),
            f2.to_string(),
            b1.to_string(),
            f1.to_string(),
            winner.into(),
        ]);
    }
    // The paper's crossover: one-pass wins at k=1, ties at k=2, loses after.
    let winners: Vec<&str> = result.rows.iter().map(|r| r[6].as_str()).collect();
    if winners != ["one-pass", "tie", "two-pass", "two-pass", "two-pass"] {
        all_good = false;
    }
    result.push_note("exact reproduction: measured bits equal the paper's closed forms at every k");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("a closed form failed to match".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Parallel, Scale, Serial};

    #[test]
    fn e10_reproduces_exactly() {
        let r = e10_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert_eq!(row[2], row[3], "two-pass formula mismatch: {row:?}");
            assert_eq!(row[4], row[5], "one-pass formula mismatch: {row:?}");
        }
    }

    #[test]
    fn e10_is_executor_independent() {
        let serial = e10_spec().run(&Serial, Scale::Paper);
        let parallel = e10_spec().run(&Parallel(4), Scale::Paper);
        assert_eq!(serial, parallel);
        assert_eq!(serial.to_json(), parallel.to_json());
    }
}
