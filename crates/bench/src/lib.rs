//! The experiment suite: one regenerable result per quantitative claim of
//! Mansour & Zaks (PODC 1986).
//!
//! The paper publishes no numeric tables (it is a theory paper); its
//! "evaluation" is the set of theorems and Section-7 notes. Each function
//! here measures one of those claims on the simulator and returns an
//! [`ExperimentResult`] whose verdict states whether the claimed *shape*
//! (linear / `n log n` / `n²` / exact formula) was observed. The
//! `experiments` binary prints all of them; the Criterion benches in
//! `benches/` time the same workloads.
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Thm 1: regular ⇒ exactly `n·⌈log│Q│⌉` bits, one pass |
//! | E2 | Thm 2: finite message graph ⇔ extractable, equivalent DFA |
//! | E3 | Thm 4: information-state census behind `Ω(n log n)` |
//! | E4 | Thm 5: cut-link rerouting costs ≤ 4× |
//! | E5 | Thm 6/7: bidirectional regular recognition stays `O(n)` |
//! | E6 | Note 7.1: `wcw` costs `Θ(n²)` |
//! | E7 | Note 7.2: `0ⁿ1ⁿ2ⁿ` costs `Θ(n log n)`; crossover vs collect-all |
//! | E8 | Note 7.3: `L_g` costs `Θ(g(n))` across the band |
//! | E9 | Note 7.4: known `n` ⇒ non-regular in exactly `n` bits |
//! | E10 | Note 7.5: `(2k+1)n` two-pass vs `(k+2^k−1)n` one-pass, exact |
//! | E11 | §1: collect-all is a universal `Θ(n²)` upper bound |
//! | E12 | model validity: schedule-independence & threaded agreement |
//! | A1 | ablation: counter encodings decide the complexity class |
//! | A2 | ablation: Theorem 3's stateless replay costs a bounded factor |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exp_ablation;
mod exp_graph;
mod exp_hierarchy;
mod exp_known_n;
mod exp_lower;
mod exp_model;
mod exp_quadratic;
mod exp_regular;
mod exp_reroute;
mod exp_tradeoff;

pub use exp_ablation::{a1_encoding_ablation, a2_stateless_replay};
pub use exp_graph::e2_message_graph;
pub use exp_hierarchy::e8_hierarchy;
pub use exp_known_n::e9_known_n;
pub use exp_lower::{e3_info_states, e7_three_counters};
pub use exp_model::e12_model_validity;
pub use exp_quadratic::{e11_collect_all, e6_wcw};
pub use exp_regular::{e1_regular_linear, e5_bidirectional};
pub use exp_reroute::e4_cut_link;
pub use exp_tradeoff::e10_tradeoff;

use ringleader_analysis::{ExperimentResult, Serial, SweepExecutor};

/// Standard sweep sizes used by the linear/`n log n` experiments.
pub(crate) fn standard_sizes() -> Vec<usize> {
    vec![16, 32, 64, 128, 256, 512, 1024]
}

/// Sweep for quadratic-cost protocols: starts at `n = 65` because below
/// that the `Θ(n log n)` message framing (two delta-coded fields per hop)
/// still rivals the quadratic payload and muddies the fit; capped at 1025
/// because the `n²` totals make bigger rings slow without adding
/// information.
pub(crate) fn quadratic_sizes() -> Vec<usize> {
    vec![65, 129, 257, 513, 1025]
}

/// Runs every experiment in order with the given sweep executor.
#[must_use]
pub fn run_all_with(exec: &dyn SweepExecutor) -> Vec<ExperimentResult> {
    vec![
        e1_regular_linear(exec),
        e2_message_graph(exec),
        e3_info_states(exec),
        e4_cut_link(exec),
        e5_bidirectional(exec),
        e6_wcw(exec),
        e7_three_counters(exec),
        e8_hierarchy(exec),
        e9_known_n(exec),
        e10_tradeoff(exec),
        e11_collect_all(exec),
        e12_model_validity(exec),
        a1_encoding_ablation(exec),
        a2_stateless_replay(exec),
    ]
}

/// Runs every experiment in order on the serial executor.
#[must_use]
pub fn run_all() -> Vec<ExperimentResult> {
    run_all_with(&Serial)
}

/// Runs the experiment with the given id (`"e1"`…`"e12"`,
/// case-insensitive) with the given sweep executor.
#[must_use]
pub fn run_by_id_with(id: &str, exec: &dyn SweepExecutor) -> Option<ExperimentResult> {
    match id.to_ascii_lowercase().as_str() {
        "e1" => Some(e1_regular_linear(exec)),
        "e2" => Some(e2_message_graph(exec)),
        "e3" => Some(e3_info_states(exec)),
        "e4" => Some(e4_cut_link(exec)),
        "e5" => Some(e5_bidirectional(exec)),
        "e6" => Some(e6_wcw(exec)),
        "e7" => Some(e7_three_counters(exec)),
        "e8" => Some(e8_hierarchy(exec)),
        "e9" => Some(e9_known_n(exec)),
        "e10" => Some(e10_tradeoff(exec)),
        "e11" => Some(e11_collect_all(exec)),
        "e12" => Some(e12_model_validity(exec)),
        "a1" => Some(a1_encoding_ablation(exec)),
        "a2" => Some(a2_stateless_replay(exec)),
        _ => None,
    }
}

/// Runs the experiment with the given id on the serial executor.
#[must_use]
pub fn run_by_id(id: &str) -> Option<ExperimentResult> {
    run_by_id_with(id, &Serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::Verdict;

    #[test]
    fn ids_resolve() {
        for id in ["e1", "E1", "e10", "e12"] {
            assert!(run_by_id(id).is_some(), "{id}");
        }
        assert!(run_by_id("e13").is_none());
        assert!(run_by_id("").is_none());
    }

    // Each experiment's full run is asserted REPRODUCED in its own module;
    // here we only check the suite wiring stays intact.
    #[test]
    fn quick_experiment_reproduces() {
        let r = e10_tradeoff(&Serial);
        assert_eq!(r.id, "E10");
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The acceptance bar for the parallel executor, on a fast
        // experiment: byte-identical JSON for 1 vs 4 workers.
        for id in ["e10", "a1", "a2"] {
            let serial = run_by_id_with(id, &ringleader_analysis::Serial).unwrap();
            let parallel = run_by_id_with(id, &ringleader_analysis::Parallel(4)).unwrap();
            assert_eq!(serial.to_json(), parallel.to_json(), "{id}");
        }
    }
}
