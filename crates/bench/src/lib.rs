//! The experiment suite: one regenerable result per quantitative claim of
//! Mansour & Zaks (PODC 1986).
//!
//! The paper publishes no numeric tables (it is a theory paper); its
//! "evaluation" is the set of theorems and Section-7 notes. Each claim is
//! declared as a [`ringleader_analysis::ExperimentSpec`] registered in
//! [`registry`]; running a spec measures the claim on the simulator and
//! returns an [`ExperimentResult`] whose verdict states whether the
//! claimed *shape* (linear / `n log n` / `n²` / exact formula) was
//! observed. The `experiments` binary derives its `--list` and dispatch
//! from the same registry; the Criterion benches in `benches/` time the
//! same workloads.
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Thm 1: regular ⇒ exactly `n·⌈log│Q│⌉` bits, one pass |
//! | E2 | Thm 2: finite message graph ⇔ extractable, equivalent DFA |
//! | E3 | Thm 4: information-state census behind `Ω(n log n)` |
//! | E4 | Thm 5: cut-link rerouting costs ≤ 4× |
//! | E5 | Thm 6/7: bidirectional regular recognition stays `O(n)` |
//! | E6 | Note 7.1: `wcw` costs `Θ(n²)` |
//! | E7 | Note 7.2: `0ⁿ1ⁿ2ⁿ` costs `Θ(n log n)`; crossover vs collect-all |
//! | E8 | Note 7.3: `L_g` costs `Θ(g(n))` across the band |
//! | E9 | Note 7.4: known `n` ⇒ non-regular in exactly `n` bits |
//! | E10 | Note 7.5: `(2k+1)n` two-pass vs `(k+2^k−1)n` one-pass, exact |
//! | E11 | §1: collect-all is a universal `Θ(n²)` upper bound |
//! | E12 | model validity: the registry's scenario matrix × all schedules |
//! | A1 | ablation: counter encodings decide the complexity class |
//! | A2 | ablation: Theorem 3's stateless replay costs a bounded factor |
//!
//! Every spec carries three [`Scale`](ringleader_analysis::Scale)
//! profiles: `smoke` (seconds-fast CI slice), `paper` (the historical
//! grids, byte-identical to the seed output), and `large` (asymptotic
//! experiments at rings of 16384+ processors, the nightly soak).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exp_ablation;
mod exp_graph;
mod exp_hierarchy;
mod exp_known_n;
mod exp_lower;
mod exp_model;
mod exp_quadratic;
mod exp_regular;
mod exp_reroute;
mod exp_tradeoff;

use ringleader_analysis::{ExperimentHarness, ExperimentResult, Registry, Scale, Serial};

/// The `0²¹1²¹2²¹` probe word shared by E7's (three-counters) and E11's
/// (collect-all) schedule scenarios: the two matrix entries deliberately
/// measure the *same* workload under different protocols, so the word has
/// a single source.
pub(crate) fn counter_scenario_word() -> ringleader_automata::Word {
    let tri = ringleader_automata::Alphabet::from_chars("012").expect("valid alphabet");
    ringleader_automata::Word::from_str(&("0".repeat(21) + &"1".repeat(21) + &"2".repeat(21)), &tri)
        .expect("word parses")
}

/// Builds the full experiment registry: E1–E12, A1, A2, in presentation
/// order.
///
/// E12 is registered last of the paper experiments because its case list
/// is the scenario matrix collected from every spec registered before it
/// ([`Registry::schedule_scenarios`]) — registering a new deterministic
/// experiment with a scenario (before E12) automatically extends the
/// model-validity check. A spec with a scenario registered *after* E12
/// would be silently excluded from the matrix, so `registry()` panics in
/// that case rather than let coverage drift.
///
/// # Panics
///
/// Panics if a scenario-bearing spec is registered after E12 (its
/// scenario would be missing from E12's matrix).
#[must_use]
pub fn registry() -> Registry {
    let mut registry = Registry::new();
    registry.register(exp_regular::e1_spec());
    registry.register(exp_graph::e2_spec());
    registry.register(exp_lower::e3_spec());
    registry.register(exp_reroute::e4_spec());
    registry.register(exp_regular::e5_spec());
    registry.register(exp_quadratic::e6_spec());
    registry.register(exp_lower::e7_spec());
    registry.register(exp_hierarchy::e8_spec());
    registry.register(exp_known_n::e9_spec());
    registry.register(exp_tradeoff::e10_spec());
    registry.register(exp_quadratic::e11_spec());
    let scenarios = registry.schedule_scenarios();
    let matrix_len = scenarios.len();
    registry.register(exp_model::e12_spec(scenarios));
    registry.register(exp_ablation::a1_spec());
    registry.register(exp_ablation::a2_spec());
    assert_eq!(
        registry.schedule_scenarios().len(),
        matrix_len,
        "a spec with a schedule scenario is registered after E12 — move its registration \
         above e12_spec so the model-validity matrix replays it"
    );
    registry
}

/// Runs every experiment in order on the serial executor at paper scale —
/// the historical (seed-identical) suite.
#[must_use]
pub fn run_all() -> Vec<ExperimentResult> {
    ExperimentHarness::new(&Serial, Scale::Paper).run_all(&registry())
}

/// Runs the experiment with the given id (`"e1"`…`"e12"`, `"a1"`, `"a2"`,
/// case-insensitive) on the serial executor at paper scale.
#[must_use]
pub fn run_by_id(id: &str) -> Option<ExperimentResult> {
    ExperimentHarness::new(&Serial, Scale::Paper).run_id(&registry(), id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Parallel, Verdict};

    #[test]
    fn ids_resolve() {
        for id in ["e1", "E1", "e10", "e12"] {
            assert!(run_by_id(id).is_some(), "{id}");
        }
        assert!(run_by_id("e13").is_none());
        assert!(run_by_id("").is_none());
    }

    #[test]
    fn registry_lists_all_fourteen_claims() {
        let registry = registry();
        assert_eq!(
            registry.ids(),
            vec![
                "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "A1",
                "A2"
            ]
        );
        // Result ids match spec ids — dispatch cannot drift from listing.
        for spec in registry.specs() {
            let r = ExperimentHarness::new(&Serial, Scale::Paper)
                .run_id(&registry, spec.id())
                .expect("listed id runs");
            assert_eq!(r.id, spec.id());
            assert_eq!(r.title, spec.title());
        }
    }

    #[test]
    fn large_grids_reach_the_soak_floor() {
        // The asymptotic experiments must exercise rings of at least
        // 16384 processors at large scale (ROADMAP: "grow the experiment
        // grid sizes now that big rings are cheap").
        let registry = registry();
        for id in ["e1", "e5", "e6", "e7", "e8", "e11"] {
            let spec = registry.get(id).expect("registered");
            let max = spec.grid(Scale::Large).max_size().expect("sized grid");
            assert!(max >= 16384, "{id} large grid tops out at {max}");
        }
    }

    #[test]
    fn smoke_grids_are_strictly_smaller_sweeps() {
        // Smoke must stay a fast slice: never more grid points than paper
        // and never a larger top size.
        let registry = registry();
        for spec in registry.specs() {
            let smoke = spec.grid(Scale::Smoke);
            let paper = spec.grid(Scale::Paper);
            let points =
                |g: &ringleader_analysis::ScaleGrid| g.sizes.len() * g.samples_per_size.max(1);
            assert!(points(smoke) <= points(paper), "{}: smoke grid too big", spec.id());
            assert!(
                smoke.max_size().unwrap_or(0) <= paper.max_size().unwrap_or(0),
                "{}: smoke tops out above paper",
                spec.id()
            );
        }
    }

    // Each experiment's full run is asserted REPRODUCED in its own module;
    // here we only check the suite wiring stays intact.
    #[test]
    fn quick_experiment_reproduces() {
        let r = run_by_id("e10").expect("registered");
        assert_eq!(r.id, "E10");
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
    }

    #[test]
    fn worker_count_does_not_change_results() {
        // The acceptance bar for the parallel executor, on a fast
        // experiment: byte-identical JSON for 1 vs 4 workers.
        let registry = registry();
        for id in ["e10", "a1", "a2"] {
            let serial = ExperimentHarness::new(&Serial, Scale::Paper)
                .run_id(&registry, id)
                .expect("registered");
            let parallel = ExperimentHarness::new(&Parallel(4), Scale::Paper)
                .run_id(&registry, id)
                .expect("registered");
            assert_eq!(serial.to_json(), parallel.to_json(), "{id}");
        }
    }
}
