//! Regenerates every quantitative claim of Mansour & Zaks (PODC 1986).
//!
//! ```text
//! experiments                       # run all fourteen experiments
//! experiments e7 e10                # run a subset, in argument order
//! experiments --filter counter      # run experiments matching a substring
//! experiments --scale large         # smoke | paper (default) | large | massive
//! experiments --json out.json       # also dump the versioned JSON envelope
//! experiments --workers 8           # parallel sweeps on 8 threads
//! experiments --workers 0           # one thread per CPU
//! experiments --shards 8            # split each single run across 8 shards
//! experiments --trace-ring 4096     # bound every run's trace to 4096 events
//! experiments --checkpoint-dir ckpt # write a resume ledger after each spec
//! experiments --checkpoint-every 2  # ...flushing every 2 completed specs
//! experiments --resume ckpt/ledger-smoke.json   # skip completed specs
//! experiments --halt-after 3        # stop (exit 2) after 3 fresh specs
//! experiments --metrics run.json    # dump a versioned RunReport of telemetry
//! experiments --progress            # heartbeat on stderr after each spec
//! experiments --list                # list experiment ids and titles
//! ```
//!
//! The id table, `--list`, and dispatch all derive from
//! [`ringleader_bench::registry`] — there is no second experiment table
//! to drift. `--workers N` fans every sweep's grid points out to `N`
//! worker threads; `--shards N` splits each *single* run's ring into `N`
//! worker-owned arcs (the right axis when one ring is huge — the
//! `massive` profile's single runs at up to 10⁶ processors — where
//! grid-point parallelism has nothing to fan out). Results (tables and
//! JSON) are byte-identical for every `N` on both axes — only wall-clock
//! time changes. Unknown flags are rejected (a typo like `--jsn` must
//! not silently run the full suite).
//!
//! The JSON envelope is versioned: `schema_version`, the scale profile,
//! and each experiment's grid metadata ride alongside the result
//! records, so downstream diffs are self-describing. At `--scale paper`
//! the `result` records are byte-identical to the historical
//! (pre-registry) output.
//!
//! # Crash safety
//!
//! `--checkpoint-dir D` appends every completed spec's full result to a
//! [`RunLedger`] at `D/ledger-<scale>.json` (atomic temp-file + rename
//! writes, flushed every `--checkpoint-every` completed specs). If the
//! invocation dies — OOM kill, pre-emption, ctrl-C — rerunning with
//! `--resume <ledger>` skips every completed spec and splices its stored
//! result into the output *in spec order*: the resumed run's tables and
//! JSON envelope are byte-identical to the uninterrupted run's.
//! `--halt-after N` stops deterministically (exit code 2) after `N`
//! freshly-computed specs — the hook CI uses to rehearse the kill-resume
//! cycle without actual signal delivery. `--trace-ring N` bounds every
//! run's trace to its last `N` events (O(N) memory at any scale).
//!
//! # Observability
//!
//! `--metrics <path>` attaches an enabled
//! [`Metrics`](ringleader_obs::Metrics) registry to every run and dumps
//! a versioned [`RunReport`](ringleader_obs::RunReport) JSON at the end:
//! engine counters, shard epoch histograms, per-shard utilization,
//! checkpoint timings. `--progress` prints an elapsed-time heartbeat to
//! stderr after each spec. Both are observability only — stdout tables
//! and the `--json` envelope are byte-identical with or without them.
//!
//! Exit code 0 iff every executed experiment's verdict is REPRODUCED;
//! exit code 2 on a `--halt-after` stop.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ringleader_analysis::{
    executor_for, ExperimentHarness, ExperimentResult, RunLedger, Scale, ScaleGrid, Verdict,
};
use ringleader_bench::registry;
use ringleader_obs::{Metrics, Progress};
use serde::Serialize;

/// Schema version of the `--json` envelope. Bump when the envelope
/// layout (not the experiment grids) changes shape.
const SCHEMA_VERSION: u32 = 1;

const KNOWN_FLAGS: &str = "--list, --scale <smoke|paper|large|massive>, --filter <substring>, \
     --workers <n>, --shards <n>, --trace-ring <n>, --json <path>, --checkpoint-dir <dir>, \
     --checkpoint-every <n>, --resume <ledger>, --halt-after <n>, --metrics <path>, --progress";

#[derive(Serialize)]
struct EnvelopeEntry {
    id: String,
    grid: ScaleGrid,
    result: serde_json::Value,
}

#[derive(Serialize)]
struct Envelope {
    schema_version: u32,
    scale: String,
    experiments: Vec<EnvelopeEntry>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();

    let mut json_path: Option<String> = None;
    let mut workers = 1usize;
    let mut shards = 1usize;
    let mut trace_ring: Option<usize> = None;
    let mut checkpoint_dir: Option<String> = None;
    let mut checkpoint_every = 1usize;
    let mut resume_path: Option<String> = None;
    let mut halt_after: Option<usize> = None;
    let mut metrics_path: Option<String> = None;
    let mut progress_flag = false;
    let mut scale = Scale::Paper;
    let mut filter: Option<String> = None;
    let mut list = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) => workers = n,
                _ => {
                    eprintln!("--workers requires a thread count (0 = one per CPU)");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(0)) => {
                    eprintln!("--shards 0 is invalid: at least one shard must own the ring");
                    return ExitCode::FAILURE;
                }
                Some(Ok(n)) => shards = n,
                _ => {
                    eprintln!("--shards requires a shard count of at least 1");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-ring" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => trace_ring = Some(n),
                _ => {
                    eprintln!("--trace-ring requires an event capacity of at least 1");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-dir" => match iter.next() {
                Some(dir) => checkpoint_dir = Some(dir),
                None => {
                    eprintln!("--checkpoint-dir requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--checkpoint-every" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => checkpoint_every = n,
                _ => {
                    eprintln!("--checkpoint-every requires a spec count of at least 1");
                    return ExitCode::FAILURE;
                }
            },
            "--resume" => match iter.next() {
                Some(path) => resume_path = Some(path),
                None => {
                    eprintln!("--resume requires a ledger path");
                    return ExitCode::FAILURE;
                }
            },
            "--halt-after" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => halt_after = Some(n),
                _ => {
                    eprintln!("--halt-after requires a spec count of at least 1");
                    return ExitCode::FAILURE;
                }
            },
            "--metrics" => match iter.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("--metrics requires a path for the RunReport JSON");
                    return ExitCode::FAILURE;
                }
            },
            "--progress" => progress_flag = true,
            "--scale" => match iter.next().as_deref().map(Scale::parse) {
                Some(Some(s)) => scale = s,
                Some(None) => {
                    eprintln!("--scale must be one of: smoke, paper, large, massive");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--scale requires a profile (smoke, paper, large, massive)");
                    return ExitCode::FAILURE;
                }
            },
            "--filter" => match iter.next() {
                Some(needle) => filter = Some(needle),
                None => {
                    eprintln!("--filter requires a substring");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?} (known flags: {KNOWN_FLAGS})");
                return ExitCode::FAILURE;
            }
            _ => ids.push(arg),
        }
    }

    if list {
        for spec in registry.specs() {
            println!("{:>4}  {}", spec.id().to_ascii_lowercase(), spec.title());
        }
        return ExitCode::SUCCESS;
    }

    // Selection: explicit ids in argument order (duplicates allowed, like
    // the historical CLI), then any filter matches not already selected,
    // in registry order; no selectors at all means the full suite.
    let mut selected = Vec::new();
    for id in &ids {
        match registry.get(id) {
            Some(spec) => selected.push(spec),
            None => {
                eprintln!("unknown experiment id {id:?} (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(needle) = &filter {
        let matches = registry.filter(needle);
        if matches.is_empty() {
            eprintln!("no experiment id or title matches --filter {needle:?} (try --list)");
            return ExitCode::FAILURE;
        }
        for spec in matches {
            if !selected.iter().any(|s| s.id() == spec.id()) {
                selected.push(spec);
            }
        }
    }
    if selected.is_empty() {
        selected = registry.specs().iter().collect();
    }

    // A shard owns a contiguous arc of at least one processor, so the
    // shard count must not exceed any selected ring size at this scale.
    if shards > 1 {
        let too_small = selected
            .iter()
            .flat_map(|s| s.grid(scale).sizes.iter().map(move |&n| (s.id(), n)))
            .filter(|&(_, n)| n < shards)
            .min_by_key(|&(_, n)| n);
        if let Some((id, n)) = too_small {
            eprintln!(
                "--shards {shards} exceeds the ring size: {id} at --scale {} runs rings down to \
                 n = {n}, and every shard needs at least one processor (pass --shards {n} or \
                 fewer, or a larger scale)",
                scale.label()
            );
            return ExitCode::FAILURE;
        }
    }

    // Crash safety: load any prior ledger, decide where checkpoints go.
    // With --checkpoint-dir the ledger lives at <dir>/ledger-<scale>.json;
    // a bare --resume keeps checkpointing to the resumed file itself.
    let mut ledger = match &resume_path {
        Some(path) => match RunLedger::load(Path::new(path)) {
            Ok(l) if l.matches_scale(scale) => {
                println!("resuming from {path}: {} experiment(s) already complete", l.len());
                l
            }
            Ok(l) => {
                eprintln!(
                    "{path} is a {} ledger; this invocation runs at {} (pass --scale {})",
                    l.scale,
                    scale.label(),
                    l.scale
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("failed loading ledger {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => RunLedger::new(scale),
    };
    let ledger_path: Option<PathBuf> = checkpoint_dir
        .as_ref()
        .map(|dir| Path::new(dir).join(format!("ledger-{}.json", scale.label())))
        .or_else(|| resume_path.as_ref().map(PathBuf::from));
    if let Some(dir) = &checkpoint_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed creating checkpoint dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Non-fatal cadence check: BENCH_0005.json's ≤5% checkpoint-overhead
    // bound holds when at least ~50n deliveries separate snapshots. A
    // run of size n delivers at least n messages, so a spec's cheapest
    // delivery estimate is Σ sizes × samples; warn when the thinnest
    // `--checkpoint-every`-spec window of this selection lands under the
    // budget at the selection's largest ring. A cadence of one flush per
    // whole invocation has no interior snapshot to amortize, so it is
    // exempt.
    if ledger_path.is_some() && checkpoint_every < selected.len() {
        let spec_deliveries: Vec<usize> = selected
            .iter()
            .map(|s| {
                let g = s.grid(scale);
                g.sizes.iter().map(|&n| n * g.samples_per_size).sum()
            })
            .collect();
        let max_n =
            selected.iter().flat_map(|s| s.grid(scale).sizes.iter().copied()).max().unwrap_or(0);
        let min_window: usize =
            spec_deliveries.windows(checkpoint_every).map(|w| w.iter().sum()).min().unwrap_or(0);
        let budget = 50 * max_n;
        if min_window < budget {
            eprintln!(
                "warning: --checkpoint-every {checkpoint_every} flushes the ledger about every \
                 ~{min_window} deliveries at the cheapest point of this selection, below the \
                 ~50n budget (~{budget} at n = {max_n}) where BENCH_0005.json shows checkpoint \
                 overhead exceeding 5%; consider a larger --checkpoint-every"
            );
        }
    }
    let flush = |ledger: &RunLedger| -> Result<(), ExitCode> {
        if let Some(path) = &ledger_path {
            if let Err(e) = ledger.save(path) {
                eprintln!("failed writing ledger {}: {e}", path.display());
                return Err(ExitCode::FAILURE);
            }
        }
        Ok(())
    };
    let write_metrics = |metrics: &Metrics| -> Result<(), ExitCode> {
        if let Some(path) = &metrics_path {
            if let Err(e) = metrics.write_report(Path::new(path)) {
                eprintln!("failed writing metrics report {path}: {e}");
                return Err(ExitCode::FAILURE);
            }
            println!("wrote {path}");
        }
        Ok(())
    };

    // 0 means "one worker per CPU" — executor_for shares the convention.
    let exec = executor_for(workers);
    // Telemetry never feeds back: results are byte-identical whether the
    // registry is enabled, disabled, or absent.
    let metrics = if metrics_path.is_some() { Metrics::enabled() } else { Metrics::disabled() };
    let progress = Progress::new(progress_flag);
    let mut harness = ExperimentHarness::new(exec.as_ref(), scale)
        .with_shards(shards)
        .with_metrics(metrics.clone());
    if let Some(capacity) = trace_ring {
        harness = harness.with_trace_ring(capacity);
    }

    // Run in spec order, skipping anything the ledger already holds; the
    // splice keeps tables and envelope byte-identical to an
    // uninterrupted run.
    let mut results: Vec<ExperimentResult> = Vec::with_capacity(selected.len());
    let mut fresh = 0usize;
    for spec in &selected {
        if let Some(stored) = ledger.get(spec.id()) {
            results.push(stored.clone());
            progress.tick(&format!("{} spliced from ledger", spec.id()));
            continue;
        }
        let result = harness.run(spec);
        ledger.record(result.clone());
        results.push(result);
        fresh += 1;
        progress.tick(&format!("{} done ({fresh} fresh)", spec.id()));
        if fresh % checkpoint_every == 0 {
            if let Err(code) = flush(&ledger) {
                return code;
            }
        }
        if halt_after == Some(fresh) {
            // Always flush at the halt point, whatever the cadence: the
            // whole point is that this exact state is resumable.
            if let Err(code) = flush(&ledger) {
                return code;
            }
            match &ledger_path {
                Some(path) => eprintln!(
                    "halted after {fresh} fresh experiment(s); resume with --resume {}",
                    path.display()
                ),
                None => eprintln!("halted after {fresh} fresh experiment(s); no ledger was kept"),
            }
            // The report covers only the specs run before the halt.
            if let Err(code) = write_metrics(&metrics) {
                return code;
            }
            return ExitCode::from(2);
        }
    }
    if fresh % checkpoint_every != 0 {
        if let Err(code) = flush(&ledger) {
            return code;
        }
    }

    let mut all_reproduced = true;
    for r in &results {
        println!("{r}");
        if r.verdict != Verdict::Reproduced {
            all_reproduced = false;
        }
    }

    println!(
        "summary: {}/{} experiments reproduced",
        results.iter().filter(|r| r.verdict == Verdict::Reproduced).count(),
        results.len()
    );

    if let Some(path) = json_path {
        let envelope = Envelope {
            schema_version: SCHEMA_VERSION,
            scale: scale.label().to_owned(),
            experiments: selected
                .iter()
                .zip(&results)
                .map(|(spec, r)| EnvelopeEntry {
                    id: spec.id().to_owned(),
                    grid: spec.grid(scale).clone(),
                    result: serde_json::to_value(r).expect("string-only structs serialize"),
                })
                .collect(),
        };
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) =
                    writeln!(f, "{}", serde_json::to_string_pretty(&envelope).expect("valid JSON"))
                {
                    eprintln!("failed writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Err(code) = write_metrics(&metrics) {
        return code;
    }
    progress.tick("suite complete");

    if all_reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
