//! Regenerates every quantitative claim of Mansour & Zaks (PODC 1986).
//!
//! ```text
//! experiments                       # run all fourteen experiments
//! experiments e7 e10                # run a subset, in argument order
//! experiments --filter counter      # run experiments matching a substring
//! experiments --scale large         # smoke | paper (default) | large | massive
//! experiments --json out.json       # also dump the versioned JSON envelope
//! experiments --workers 8           # parallel sweeps on 8 threads
//! experiments --workers 0           # one thread per CPU
//! experiments --shards 8            # split each single run across 8 shards
//! experiments --list                # list experiment ids and titles
//! ```
//!
//! The id table, `--list`, and dispatch all derive from
//! [`ringleader_bench::registry`] — there is no second experiment table
//! to drift. `--workers N` fans every sweep's grid points out to `N`
//! worker threads; `--shards N` splits each *single* run's ring into `N`
//! worker-owned arcs (the right axis when one ring is huge — the
//! `massive` profile's single runs at up to 10⁶ processors — where
//! grid-point parallelism has nothing to fan out). Results (tables and
//! JSON) are byte-identical for every `N` on both axes — only wall-clock
//! time changes. Unknown flags are rejected (a typo like `--jsn` must
//! not silently run the full suite).
//!
//! The JSON envelope is versioned: `schema_version`, the scale profile,
//! and each experiment's grid metadata ride alongside the result
//! records, so downstream diffs are self-describing. At `--scale paper`
//! the `result` records are byte-identical to the historical
//! (pre-registry) output.
//!
//! Exit code 0 iff every executed experiment's verdict is REPRODUCED.

use std::io::Write as _;
use std::process::ExitCode;

use ringleader_analysis::{
    executor_for, ExperimentHarness, ExperimentResult, Scale, ScaleGrid, Verdict,
};
use ringleader_bench::registry;
use serde::Serialize;

/// Schema version of the `--json` envelope. Bump when the envelope
/// layout (not the experiment grids) changes shape.
const SCHEMA_VERSION: u32 = 1;

const KNOWN_FLAGS: &str = "--list, --scale <smoke|paper|large|massive>, --filter <substring>, \
     --workers <n>, --shards <n>, --json <path>";

#[derive(Serialize)]
struct EnvelopeEntry {
    id: String,
    grid: ScaleGrid,
    result: serde_json::Value,
}

#[derive(Serialize)]
struct Envelope {
    schema_version: u32,
    scale: String,
    experiments: Vec<EnvelopeEntry>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = registry();

    let mut json_path: Option<String> = None;
    let mut workers = 1usize;
    let mut shards = 1usize;
    let mut scale = Scale::Paper;
    let mut filter: Option<String> = None;
    let mut list = false;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--json" => match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) => workers = n,
                _ => {
                    eprintln!("--workers requires a thread count (0 = one per CPU)");
                    return ExitCode::FAILURE;
                }
            },
            "--shards" => match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) if n >= 1 => shards = n,
                _ => {
                    eprintln!("--shards requires a shard count of at least 1");
                    return ExitCode::FAILURE;
                }
            },
            "--scale" => match iter.next().as_deref().map(Scale::parse) {
                Some(Some(s)) => scale = s,
                Some(None) => {
                    eprintln!("--scale must be one of: smoke, paper, large, massive");
                    return ExitCode::FAILURE;
                }
                None => {
                    eprintln!("--scale requires a profile (smoke, paper, large, massive)");
                    return ExitCode::FAILURE;
                }
            },
            "--filter" => match iter.next() {
                Some(needle) => filter = Some(needle),
                None => {
                    eprintln!("--filter requires a substring");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?} (known flags: {KNOWN_FLAGS})");
                return ExitCode::FAILURE;
            }
            _ => ids.push(arg),
        }
    }

    if list {
        for spec in registry.specs() {
            println!("{:>4}  {}", spec.id().to_ascii_lowercase(), spec.title());
        }
        return ExitCode::SUCCESS;
    }

    // Selection: explicit ids in argument order (duplicates allowed, like
    // the historical CLI), then any filter matches not already selected,
    // in registry order; no selectors at all means the full suite.
    let mut selected = Vec::new();
    for id in &ids {
        match registry.get(id) {
            Some(spec) => selected.push(spec),
            None => {
                eprintln!("unknown experiment id {id:?} (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(needle) = &filter {
        let matches = registry.filter(needle);
        if matches.is_empty() {
            eprintln!("no experiment id or title matches --filter {needle:?} (try --list)");
            return ExitCode::FAILURE;
        }
        for spec in matches {
            if !selected.iter().any(|s| s.id() == spec.id()) {
                selected.push(spec);
            }
        }
    }
    if selected.is_empty() {
        selected = registry.specs().iter().collect();
    }

    // 0 means "one worker per CPU" — executor_for shares the convention.
    let exec = executor_for(workers);
    let harness = ExperimentHarness::new(exec.as_ref(), scale).with_shards(shards);
    let results: Vec<ExperimentResult> = selected.iter().map(|spec| harness.run(spec)).collect();

    let mut all_reproduced = true;
    for r in &results {
        println!("{r}");
        if r.verdict != Verdict::Reproduced {
            all_reproduced = false;
        }
    }

    println!(
        "summary: {}/{} experiments reproduced",
        results.iter().filter(|r| r.verdict == Verdict::Reproduced).count(),
        results.len()
    );

    if let Some(path) = json_path {
        let envelope = Envelope {
            schema_version: SCHEMA_VERSION,
            scale: scale.label().to_owned(),
            experiments: selected
                .iter()
                .zip(&results)
                .map(|(spec, r)| EnvelopeEntry {
                    id: spec.id().to_owned(),
                    grid: spec.grid(scale).clone(),
                    result: serde_json::to_value(r).expect("string-only structs serialize"),
                })
                .collect(),
        };
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) =
                    writeln!(f, "{}", serde_json::to_string_pretty(&envelope).expect("valid JSON"))
                {
                    eprintln!("failed writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if all_reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
