//! Regenerates every quantitative claim of Mansour & Zaks (PODC 1986).
//!
//! ```text
//! experiments            # run all twelve experiments, print tables
//! experiments e7 e10     # run a subset
//! experiments --json out.json       # also dump machine-readable results
//! experiments --workers 8           # parallel sweeps on 8 threads
//! experiments --workers 0           # one thread per CPU
//! experiments --list                # list experiment ids and titles
//! ```
//!
//! `--workers N` fans every sweep's grid points out to `N` worker
//! threads; results (tables and JSON) are byte-identical for every `N` —
//! only wall-clock time changes.
//!
//! Exit code 0 iff every executed experiment's verdict is REPRODUCED.

use std::io::Write as _;
use std::process::ExitCode;

use ringleader_analysis::{executor_for, Verdict};
use ringleader_bench::{run_all_with, run_by_id_with};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--list") {
        for (id, title) in [
            ("e1", "Theorem 1: regular languages in n*ceil(log|Q|) bits"),
            ("e2", "Theorem 2: message graphs (finite = regular)"),
            ("e3", "Theorem 4: information-state census"),
            ("e4", "Theorem 5: cut-link rerouting <= 4x"),
            ("e5", "Theorems 6/7: bidirectional O(n)"),
            ("e6", "Note 7.1: wcw is Theta(n^2)"),
            ("e7", "Note 7.2: 0^n1^n2^n is Theta(n log n)"),
            ("e8", "Note 7.3: the L_g hierarchy"),
            ("e9", "Note 7.4: known n closes the gap"),
            ("e10", "Note 7.5: pass/bit trade-off (exact)"),
            ("e11", "Section 1: collect-all upper bound"),
            ("e12", "Model validity: schedules and threads"),
            ("a1", "Ablation: counter encodings"),
            ("a2", "Ablation: Theorem 3 stateless replay"),
        ] {
            println!("{id:>4}  {title}");
        }
        return ExitCode::SUCCESS;
    }

    let mut json_path: Option<String> = None;
    let mut workers = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--json" {
            match iter.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::FAILURE;
                }
            }
        } else if arg == "--workers" {
            match iter.next().as_deref().map(str::parse::<usize>) {
                Some(Ok(n)) => workers = n,
                _ => {
                    eprintln!("--workers requires a thread count (0 = one per CPU)");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            ids.push(arg);
        }
    }

    // 0 means "one worker per CPU" — executor_for shares the convention.
    let exec = executor_for(workers);

    let results = if ids.is_empty() {
        run_all_with(exec.as_ref())
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match run_by_id_with(id, exec.as_ref()) {
                Some(r) => out.push(r),
                None => {
                    eprintln!("unknown experiment id {id:?} (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        out
    };

    let mut all_reproduced = true;
    for r in &results {
        println!("{r}");
        if r.verdict != Verdict::Reproduced {
            all_reproduced = false;
        }
    }

    println!(
        "summary: {}/{} experiments reproduced",
        results.iter().filter(|r| r.verdict == Verdict::Reproduced).count(),
        results.len()
    );

    if let Some(path) = json_path {
        let payload: Vec<serde_json::Value> = results
            .iter()
            .map(|r| serde_json::to_value(r).expect("string-only structs serialize"))
            .collect();
        match std::fs::File::create(&path) {
            Ok(mut f) => {
                if let Err(e) =
                    writeln!(f, "{}", serde_json::to_string_pretty(&payload).expect("valid JSON"))
                {
                    eprintln!("failed writing {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {path}");
            }
            Err(e) => {
                eprintln!("failed creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if all_reproduced {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
