//! E12: model validity — schedule-independence and real-threads agreement.

use std::sync::Arc;

use ringleader_analysis::{run_independent, ExperimentResult, SweepExecutor, Verdict};
use ringleader_core::{CollectAll, CountRingSize, DfaOnePass, ThreeCounters};
use ringleader_langs::{AnBnCn, DfaLanguage, Language};
use ringleader_sim::{Protocol, RingRunner, Scheduler, ThreadedRunner};

/// E12 — the substitution check of DESIGN.md §5: the discrete-event
/// simulator stands in for a physical asynchronous ring.
///
/// Two measurable obligations:
///
/// 1. **Schedule independence** — for the deterministic token protocols,
///    decisions *and* exact bit counts are identical under FIFO, random
///    (multiple seeds), and adversarial longest-queue delivery; the
///    worst-case quantifier in `BIT_A(n)` is vacuous for them, as the
///    theory expects.
/// 2. **Threaded agreement** — the same protocols on real OS threads with
///    crossbeam channels produce the same decisions and bit totals as the
///    event-driven engine.
#[must_use]
pub fn e12_model_validity(exec: &dyn SweepExecutor) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E12",
        "Simulator validity: schedules and real threads agree",
        "Model §2: asynchronous, arbitrary finite delays — deterministic protocols must measure identically under every delivery schedule and on real concurrency",
        vec![
            "protocol".into(),
            "n".into(),
            "schedules".into(),
            "bit counts".into(),
            "threads".into(),
        ],
    );
    let mut all_good = true;

    let sigma = ringleader_automata::Alphabet::from_chars("ab").expect("valid alphabet");
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).expect("pattern compiles");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let dfa_word = lang.positive_example(64, &mut rng).expect("positives exist");

    let tri = ringleader_automata::Alphabet::from_chars("012").expect("valid alphabet");
    let counter_word = ringleader_automata::Word::from_str(
        &("0".repeat(21) + &"1".repeat(21) + &"2".repeat(21)),
        &tri,
    )
    .expect("word parses");

    let unary = ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet");
    let unary_word =
        ringleader_automata::Word::from_str(&"a".repeat(50), &unary).expect("word parses");

    let cases: Vec<(&str, Box<dyn Protocol>, ringleader_automata::Word)> = vec![
        ("dfa-one-pass", Box::new(DfaOnePass::new(&lang)), dfa_word),
        ("three-counters", Box::new(ThreeCounters::new()), counter_word.clone()),
        ("count-ring-size", Box::new(CountRingSize::probe()), unary_word),
        (
            "collect-all[0^n1^n2^n]",
            Box::new(CollectAll::new(Arc::new(AnBnCn::new()))),
            counter_word,
        ),
    ];

    // Each case (schedule matrix + threaded cross-check) is independent
    // of the others; fan the cases out and fold notes/rows in case order.
    let outcomes = run_independent(exec, cases.len(), |i| {
        let (name, proto, word) = &cases[i];
        let mut notes: Vec<String> = Vec::new();
        let mut good = true;
        let mut schedules = vec![Scheduler::Fifo, Scheduler::LongestQueue];
        for seed in 0..5 {
            schedules.push(Scheduler::Random { seed });
        }
        let mut bits = Vec::new();
        let mut decisions = Vec::new();
        for sched in &schedules {
            let mut runner = RingRunner::new();
            runner.scheduler(sched.clone());
            match runner.run(proto.as_ref(), word) {
                Ok(o) => {
                    bits.push(o.stats.total_bits);
                    decisions.push(o.accepted());
                }
                Err(e) => {
                    good = false;
                    notes.push(format!("{name} under {sched:?}: {e}"));
                }
            }
        }
        let bits_agree = bits.windows(2).all(|w| w[0] == w[1]);
        let decisions_agree = decisions.windows(2).all(|w| w[0] == w[1]);
        if !bits_agree || !decisions_agree {
            good = false;
        }

        let threaded = ThreadedRunner::new().run(proto.as_ref(), word);
        let threads_agree = match threaded {
            Ok(t) => {
                !bits.is_empty()
                    && t.total_bits == bits[0]
                    && Some(t.decision) == decisions.first().copied()
            }
            Err(e) => {
                notes.push(format!("{name} threaded: {e}"));
                false
            }
        };
        if !threads_agree {
            good = false;
        }

        let row = vec![
            (*name).into(),
            word.len().to_string(),
            format!("{} tested", schedules.len()),
            if bits_agree {
                format!("identical ({})", bits.first().copied().unwrap_or(0))
            } else {
                format!("DIVERGED {bits:?}")
            },
            if threads_agree { "agree".into() } else { "DISAGREE".into() },
        ];
        (notes, row, good)
    });
    for (notes, row, good) in outcomes {
        for note in notes {
            result.push_note(note);
        }
        if !good {
            all_good = false;
        }
        result.push_row(row);
    }

    result.push_note("bidirectional probe protocols may legitimately vary bits across schedules (verdict paths differ); decision invariance for those is covered by E5's scheduler sweep");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("an execution depended on the schedule or backend".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::Serial;

    #[test]
    fn e12_reproduces() {
        let r = e12_model_validity(&Serial);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(row[3].starts_with("identical"), "{row:?}");
            assert_eq!(row[4], "agree", "{row:?}");
        }
    }
}
