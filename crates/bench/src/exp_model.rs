//! E12: model validity — schedule-independence and real-threads agreement.

use ringleader_analysis::{
    run_schedule_matrix, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, ScheduleScenario,
    Verdict,
};

/// E12 — the substitution check of DESIGN.md §5: the discrete-event
/// simulator stands in for a physical asynchronous ring.
///
/// Two measurable obligations, replayed for **every scenario registered
/// in the experiment registry** (each deterministic-protocol spec
/// contributes its representative via
/// [`ExperimentSpec::with_scenario`]):
///
/// 1. **Schedule independence** — decisions *and* exact bit counts are
///    identical under FIFO, random (multiple seeds), and adversarial
///    longest-queue delivery; the worst-case quantifier in `BIT_A(n)` is
///    vacuous for them, as the theory expects.
/// 2. **Threaded agreement** — the same protocols on real OS threads with
///    crossbeam channels produce the same decisions and bit totals as the
///    event-driven engine.
///
/// Unlike the other specs this one is built against the rest of the
/// registry: its case list *is* the registry's scenario matrix, so
/// registering a new deterministic experiment automatically extends the
/// model-validity check.
pub(crate) fn e12_spec(scenarios: Vec<ScheduleScenario>) -> ExperimentSpec {
    ExperimentSpec::new(
        "E12",
        "Simulator validity: schedules and real threads agree",
        "Model §2: asynchronous, arbitrary finite delays — deterministic protocols must measure identically under every delivery schedule and on real concurrency",
        GridProfile::fixed(vec![]),
        move |ctx| run_e12(ctx, &scenarios),
    )
}

fn run_e12(ctx: &RunCtx<'_>, scenarios: &[ScheduleScenario]) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "protocol".into(),
        "n".into(),
        "schedules".into(),
        "bit counts".into(),
        "threads".into(),
    ]);
    let mut all_good = true;

    for outcome in run_schedule_matrix(ctx.exec(), scenarios, 5) {
        for note in outcome.notes {
            result.push_note(note);
        }
        if !outcome.good {
            all_good = false;
        }
        result.push_row(outcome.row);
    }

    result.push_note("bidirectional probe protocols may legitimately vary bits across schedules (verdict paths differ); decision invariance for those is covered by E5's scheduler sweep");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("an execution depended on the schedule or backend".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use crate::registry;
    use ringleader_analysis::{ExperimentHarness, Scale, Serial, Verdict};

    #[test]
    fn e12_reproduces() {
        let registry = registry();
        let r = ExperimentHarness::new(&Serial, Scale::Paper)
            .run_id(&registry, "e12")
            .expect("registered");
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert!(row[3].starts_with("identical"), "{row:?}");
            assert_eq!(row[4], "agree", "{row:?}");
        }
    }

    #[test]
    fn e12_matrix_follows_registry_scenarios() {
        // The case list is the registry's scenario matrix, in
        // registration order — no duplicated scenario table in E12.
        let registry = registry();
        let labels: Vec<String> =
            registry.schedule_scenarios().iter().map(|s| s.label().to_owned()).collect();
        assert_eq!(
            labels,
            vec!["dfa-one-pass", "three-counters", "count-ring-size", "collect-all[0^n1^n2^n]"]
        );
        let r = ExperimentHarness::new(&Serial, Scale::Paper)
            .run_id(&registry, "e12")
            .expect("registered");
        let row_names: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert_eq!(row_names, labels.iter().map(String::as_str).collect::<Vec<_>>());
    }
}
