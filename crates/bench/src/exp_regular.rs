//! E1 and E5: regular languages cost `O(n)` bits, uni- and bidirectionally.

use ringleader_analysis::{
    fit_label, fit_series, sweep_protocol_with, ExperimentResult, ExperimentSpec, GridProfile,
    GrowthModel, RunCtx, ScaleGrid, ScheduleScenario, Verdict,
};
use ringleader_core::{BidirMeetInMiddle, DfaOnePass};
use ringleader_langs::{regular_corpus, DfaLanguage, Language};

/// E1 — Theorem 1: every regular language is recognized in exactly
/// `n·⌈log₂|Q|⌉` bits by the one-pass state-forwarding algorithm.
///
/// For each corpus language the sweep must (i) decide correctly, (ii)
/// match the closed-form bit count at every size, and (iii) fit the
/// linear model. Carries the `dfa-one-pass` schedule scenario replayed
/// by E12's matrix.
pub(crate) fn e1_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E1",
        "Regular languages: one pass, n·ceil(log|Q|) bits",
        "Theorem 1: BIT_A(n) <= ceil(log |Q|) * n = O(n)",
        GridProfile::per_scale(
            ScaleGrid::new(vec![16, 32, 64], 2),
            ScaleGrid::new(vec![16, 32, 64, 128, 256, 512, 1024], 3),
            ScaleGrid::new(vec![4096, 16384, 65536], 2),
        )
        // The linear tier is cheap enough for single runs at a million
        // processors — the sharded engine's headline workload.
        .massive(ScaleGrid::new(vec![131_072, 262_144, 524_288, 1_000_000], 1)),
        run_e1,
    )
    .with_expected_model(GrowthModel::Linear)
    .with_scenario(dfa_scenario())
}

/// The deterministic one-pass DFA scenario: schedules cannot change its
/// bits, making it the matrix's regular-language representative.
fn dfa_scenario() -> ScheduleScenario {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").expect("valid alphabet");
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).expect("pattern compiles");
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let word = lang.positive_example(64, &mut rng).expect("positives exist");
    ScheduleScenario::new("dfa-one-pass", move || Box::new(DfaOnePass::new(&lang)), word)
}

fn run_e1(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "language".into(),
        "|Q|".into(),
        "bits/msg".into(),
        format!("bits(n={})", ctx.max_size()),
        "predicted".into(),
        "fit".into(),
    ]);
    let mut all_good = true;
    for lang in regular_corpus() {
        let proto = DfaOnePass::new(&lang);
        let config = ctx.sweep_config();
        let points = match sweep_protocol_with(&proto, &lang, &config, ctx.exec()) {
            Ok(p) => p,
            Err(e) => {
                result.push_note(format!("{}: simulation error {e}", lang.name()));
                all_good = false;
                continue;
            }
        };
        let exact = points.iter().all(|p| p.bits == proto.predicted_bits(p.n));
        let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
        // A 0-bit-per-message protocol (|Q|=1) measures 0 at every n and
        // cannot be fitted; exactness already covers it.
        let fit_cell = if proto.state_bits() == 0 {
            "exact-zero".to_owned()
        } else {
            let fit = fit_series(&series);
            if fit.best_model != GrowthModel::Linear {
                all_good = false;
            }
            fit_label(&fit)
        };
        if !exact {
            all_good = false;
        }
        let last = points.last().expect("non-empty sweep");
        result.push_row(vec![
            lang.name(),
            lang.dfa().state_count().to_string(),
            proto.state_bits().to_string(),
            last.bits.to_string(),
            proto.predicted_bits(last.n).to_string(),
            fit_cell,
        ]);
    }
    result.push_note("every row's bits match the closed form at every swept size");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("some language missed the linear bound".into())
    });
    result
}

/// E5 — Theorems 6/7: bidirectional rings change nothing asymptotically:
/// the meet-in-the-middle protocol stays linear with constant-size
/// messages, while genuinely using both directions.
pub(crate) fn e5_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E5",
        "Bidirectional regular recognition stays O(n)",
        "Theorems 6/7: O(n) bits iff regular, also on bidirectional rings",
        GridProfile::per_scale(
            ScaleGrid::new(vec![16, 32, 64], 2),
            ScaleGrid::new(vec![16, 32, 64, 128, 256, 512, 1024], 3),
            ScaleGrid::new(vec![4096, 16384, 32768], 2),
        ),
        run_e5,
    )
    .with_expected_model(GrowthModel::Linear)
}

fn run_e5(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "language".into(),
        format!("bits(n={})", ctx.max_size()),
        "unidir bits".into(),
        "ratio".into(),
        "max msg bits".into(),
        "fit".into(),
    ]);
    let mut all_good = true;
    for lang in regular_corpus() {
        let bidir = BidirMeetInMiddle::new(&lang);
        let unidir = DfaOnePass::new(&lang);
        let config = ctx.sweep_config();
        let (bi_points, uni_points) = match (
            sweep_protocol_with(&bidir, &lang, &config, ctx.exec()),
            sweep_protocol_with(&unidir, &lang, &config, ctx.exec()),
        ) {
            (Ok(b), Ok(u)) => (b, u),
            _ => {
                result.push_note(format!("{}: simulation error", lang.name()));
                all_good = false;
                continue;
            }
        };
        let last = bi_points.last().expect("non-empty sweep");
        let uni_last = uni_points.last().expect("non-empty sweep");
        let ratio =
            if uni_last.bits > 0 { last.bits as f64 / uni_last.bits as f64 } else { f64::NAN };
        // Message sizes bounded by a constant (|Q|-dependent, n-independent).
        if last.max_message_bits > bidir.message_bits_bound() {
            all_good = false;
        }
        let series: Vec<(usize, f64)> =
            bi_points.iter().filter(|p| p.bits > 0).map(|p| (p.n, p.bits as f64)).collect();
        let fit_cell = if series.len() >= 3 {
            let fit = fit_series(&series);
            if fit.best_model != GrowthModel::Linear {
                all_good = false;
            }
            fit_label(&fit)
        } else {
            "exact-zero".to_owned()
        };
        result.push_row(vec![
            lang.name(),
            last.bits.to_string(),
            uni_last.bits.to_string(),
            if ratio.is_nan() { "-".into() } else { format!("{ratio:.2}") },
            last.max_message_bits.to_string(),
            fit_cell,
        ]);
    }
    result.push_note("bidirectional constant is larger (g-function probes carry |Q| bits) but growth stays linear");

    // BIT quantifies over all executions: measure the schedule spread for
    // one representative workload and confirm even the worst case is O(n).
    let lang = &regular_corpus()[2]; // (a|b)*abb
    let bidir = BidirMeetInMiddle::new(lang);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(6);
    if let Some(word) =
        lang.positive_example(256, &mut rng).or_else(|| lang.negative_example(256, &mut rng))
    {
        match ringleader_analysis::bits_across_schedules(&bidir, &word, 6) {
            Ok(bits) => {
                let min = bits.iter().min().copied().unwrap_or(0);
                let max = bits.iter().max().copied().unwrap_or(0);
                if max > 16 * 256 {
                    // Far above any linear constant seen in the table.
                    all_good = false;
                }
                result.push_note(format!(
                    "schedule spread at n=256 over 8 schedules: {min}..{max} bits (worst case still O(n))"
                ));
            }
            Err(e) => {
                all_good = false;
                result.push_note(format!("schedule sweep failed: {e}"));
            }
        }
    }

    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("bidirectional protocol exceeded linear behaviour".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e1_reproduces() {
        let r = e1_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), regular_corpus().len());
        // Every predicted column equals the measured column.
        for row in &r.rows {
            assert_eq!(row[3], row[4], "{row:?}");
        }
    }

    #[test]
    fn e5_reproduces() {
        let r = e5_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), regular_corpus().len());
    }

    #[test]
    fn e1_smoke_scale_stays_linear_and_exact() {
        let r = e1_spec().run(&Serial, Scale::Smoke);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // The headline column follows the smoke grid's largest size.
        assert!(r.columns.contains(&"bits(n=64)".to_owned()), "{:?}", r.columns);
    }
}
