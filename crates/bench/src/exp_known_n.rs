//! E9: knowing `n` collapses the `Ω(n log n)` barrier (Note 7.4).

use std::sync::Arc;

use ringleader_analysis::{
    sweep_protocol_with, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, ScaleGrid,
    ScheduleScenario, Verdict,
};
use ringleader_core::{CountRingSize, LengthPredicateKnownN, LgRecognizer};
use ringleader_langs::{GrowthFunction, Language, LgLanguage, PowerOfTwoLength};
use ringleader_sim::RingRunner;

/// E9 — Note 7.4: with `n` known, non-regular languages drop to `O(n)`
/// bits, and the `L_g` hierarchy loses its counting-pass floor.
///
/// Measured claims:
///
/// 1. `{a^{2^k}}` costs exactly `n` bits known-`n` vs `Θ(n log n)`
///    unknown-`n` — the gap, on the same language — at every
///    power-of-two grid size;
/// 2. the fully-periodic `L_g` recognizer in known-`n` mode sends
///    window-only messages: the counting term vanishes and the measured
///    bits track `n·m` for every period (down to the `g(n) = Θ(n)` tier,
///    where `Ω(n log n)` would forbid it if `n` were unknown).
///
/// Carries the matrix's `count-ring-size` scenario (the unknown-`n`
/// counting pass is deterministic, so schedules cannot change its bits).
pub(crate) fn e9_spec() -> ExperimentSpec {
    let unary = ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet");
    let word =
        ringleader_automata::Word::from_str(&"a".repeat(50), &unary).expect("unary words parse");
    ExperimentSpec::new(
        "E9",
        "Known n: the gap closes",
        "Note 7.4: if n is known no gap exists; there are non-regular languages recognizable in O(n) bits",
        GridProfile::per_scale(
            ScaleGrid::new(vec![64, 256], 2),
            ScaleGrid::new(vec![64, 256, 1024], 3),
            ScaleGrid::new(vec![1024, 4096, 16384], 2),
        ),
        run_e9,
    )
    .with_scenario(ScheduleScenario::new(
        "count-ring-size",
        || Box::new(CountRingSize::probe()),
        word,
    ))
}

fn run_e9(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "workload".into(),
        "n".into(),
        "known-n bits".into(),
        "unknown-n bits".into(),
        "gap factor".into(),
    ]);
    let mut all_good = true;

    // Part 1: the power-of-two length language both ways, at the grid's
    // power-of-two sizes.
    let lang = PowerOfTwoLength::new();
    let known = LengthPredicateKnownN::new(
        ringleader_automata::Symbol(0),
        Arc::new(|n: usize| n.is_power_of_two()),
    );
    let unknown = CountRingSize::new(Arc::new(|n: usize| n.is_power_of_two()));
    let unary = lang.alphabet().clone();
    for &n in ctx.sizes().iter().filter(|n| n.is_power_of_two()) {
        let word =
            ringleader_automata::Word::from_str(&"a".repeat(n), &unary).expect("unary words parse");
        let known_bits = {
            let mut runner = RingRunner::new();
            runner.known_ring_size(true);
            match runner.run(&known, &word) {
                Ok(o) => {
                    if !o.accepted() {
                        all_good = false;
                    }
                    o.stats.total_bits
                }
                Err(e) => {
                    all_good = false;
                    result.push_note(format!("known-n run failed: {e}"));
                    continue;
                }
            }
        };
        let unknown_bits = match RingRunner::new().run(&unknown, &word) {
            Ok(o) => o.stats.total_bits,
            Err(e) => {
                all_good = false;
                result.push_note(format!("unknown-n run failed: {e}"));
                continue;
            }
        };
        if known_bits != n {
            all_good = false;
        }
        result.push_row(vec![
            "a^(2^k) membership".into(),
            n.to_string(),
            known_bits.to_string(),
            unknown_bits.to_string(),
            format!("{:.2}", unknown_bits as f64 / known_bits as f64),
        ]);
    }
    result.push_note(
        "known-n bits are exactly n — a non-regular language below the Ω(n log n) barrier",
    );

    // Part 2: fully-periodic L_g, known vs unknown n.
    for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN] {
        let lang = LgLanguage::fully_periodic(g);
        let proto = LgRecognizer::new(&lang);
        let known_points = {
            let mut config = ctx.sweep_config();
            config.known_ring_size = true;
            sweep_protocol_with(&proto, &lang, &config, ctx.exec())
        };
        let unknown_points = sweep_protocol_with(&proto, &lang, &ctx.sweep_config(), ctx.exec());
        match (known_points, unknown_points) {
            (Ok(kp), Ok(up)) => {
                for (k, u) in kp.iter().zip(&up) {
                    if k.bits >= u.bits {
                        all_good = false;
                    }
                    result.push_row(vec![
                        format!("L_g-periodic ({})", g.label()),
                        k.n.to_string(),
                        k.bits.to_string(),
                        u.bits.to_string(),
                        format!("{:.2}", u.bits as f64 / k.bits.max(1) as f64),
                    ]);
                }
            }
            _ => {
                all_good = false;
                result.push_note(format!("{}: sweep failed", g.label()));
            }
        }
    }
    result.push_note(
        "known-n drops the counting pass: every gap factor > 1, largest at the n log n tier",
    );

    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("a known-n measurement missed its bound".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e9_reproduces() {
        let r = e9_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // 3 power-of-two rows + 2 growths × 3 sizes.
        assert_eq!(r.rows.len(), 9);
    }
}
