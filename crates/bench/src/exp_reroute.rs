//! E4: the Theorem 5 cut-link transformation and its ≤4× bound.

use ringleader_analysis::{
    run_independent, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, Verdict,
};
use ringleader_core::{CountRingSize, CutLinkAdapter, DfaOnePass, ThreeCounters};
use ringleader_langs::{DfaLanguage, Language};
use ringleader_sim::{validate_token_discipline, Protocol, RingRunner};

/// E4 — Theorem 5: rerouting every message off one (minimum-traffic) link
/// costs at most ~4× the original bits, and the transformed run sends no
/// data bits over the cut.
///
/// Inner protocols are token-style one-pass algorithms whose link loads
/// are uniform, so the fixed cut *is* a minimum-traffic link and the
/// paper's accounting applies directly. The bound is size-independent,
/// so the case list is fixed across scales; the grid records every ring
/// size the cases measure (three-counters rounds down to multiples of
/// three: 15/60/240).
pub(crate) fn e4_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "E4",
        "Cut-link rerouting: ≤ 4× bits, zero data on the cut",
        "Theorem 5: the ring→line transformation at most doubles bits twice (tag + reroute), total ≤ 4×; the cut link carries no original traffic",
        GridProfile::fixed(vec![15, 16, 60, 64, 240, 256]),
        run_e4,
    )
}

fn run_e4(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "inner protocol".into(),
        "n".into(),
        "plain bits".into(),
        "rerouted bits".into(),
        "ratio".into(),
        "cut-link data bits".into(),
        "token?".into(),
    ]);
    let sigma = ringleader_automata::Alphabet::from_chars("ab").expect("valid alphabet");
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).expect("pattern compiles");

    let mut all_good = true;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(99);

    // Build all nine cases up front (workload RNG stays a single serial
    // stream), then measure them independently through the executor.
    type Case = (&'static str, Box<dyn Protocol>, Box<dyn Protocol>, ringleader_automata::Word);
    let mut cases: Vec<Case> = Vec::new();

    for n in [16usize, 64, 256] {
        let word = lang
            .positive_example(n, &mut rng)
            .or_else(|| lang.negative_example(n, &mut rng))
            .expect("words exist at every length");
        let inner = DfaOnePass::new(&lang);
        let adapted = CutLinkAdapter::new(inner.clone());
        cases.push(("dfa-one-pass[(a|b)*abb]", Box::new(inner), Box::new(adapted), word));
    }

    let unary = ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet");
    for n in [16usize, 64, 256] {
        let word =
            ringleader_automata::Word::from_str(&"a".repeat(n), &unary).expect("unary words parse");
        let inner = CountRingSize::probe();
        let adapted = CutLinkAdapter::new(inner.clone());
        cases.push(("count-ring-size", Box::new(inner), Box::new(adapted), word));
    }

    let tri = ringleader_automata::Alphabet::from_chars("012").expect("valid alphabet");
    for n in [15usize, 60, 240] {
        let third = n / 3;
        let text = "0".repeat(third) + &"1".repeat(third) + &"2".repeat(third);
        let word = ringleader_automata::Word::from_str(&text, &tri).expect("words parse");
        let inner = ThreeCounters::new();
        let adapted = CutLinkAdapter::new(inner.clone());
        cases.push(("three-counters", Box::new(inner), Box::new(adapted), word));
    }

    let rows = run_independent(ctx.exec(), cases.len(), |i| {
        let (name, inner, adapted, word) = &cases[i];
        let n = word.len();
        let plain = RingRunner::new().run(inner.as_ref(), word).expect("plain run succeeds");
        let mut runner = RingRunner::new();
        runner.record_trace(true);
        let rerouted = runner.run(adapted.as_ref(), word).expect("rerouted run succeeds");
        let ratio = rerouted.stats.total_bits as f64 / plain.stats.total_bits.max(1) as f64;
        let cut_bits = rerouted.stats.link_bits(n - 1);
        let token = rerouted.trace.as_ref().is_some_and(validate_token_discipline);
        let good = plain.decision == rerouted.decision && ratio <= 4.0 && cut_bits == 0 && token;
        (
            vec![
                (*name).into(),
                n.to_string(),
                plain.stats.total_bits.to_string(),
                rerouted.stats.total_bits.to_string(),
                format!("{ratio:.2}"),
                cut_bits.to_string(),
                if token { "yes".into() } else { "NO".into() },
            ],
            good,
        )
    });
    for (row, good) in rows {
        if !good {
            all_good = false;
        }
        result.push_row(row);
    }

    result.push_note("setup marker/ack are the paper's excluded line-setup messages (0 bits here)");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("ratio, cut traffic, decision, or token discipline violated".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e4_reproduces() {
        let r = e4_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 9);
        for row in &r.rows {
            assert_eq!(row[5], "0", "cut link must carry no data: {row:?}");
            assert_eq!(row[6], "yes", "token discipline must hold: {row:?}");
        }
    }
}
