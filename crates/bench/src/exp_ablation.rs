//! A1 and A2: ablations of design choices DESIGN.md calls out.

use ringleader_analysis::{
    run_independent, ExperimentResult, ExperimentSpec, GridProfile, RunCtx, Verdict,
};
use ringleader_core::{CountRingSize, CounterEncoding, StatelessTwoPass, TwoPassParity};
use ringleader_langs::Language;
use ringleader_sim::RingRunner;

/// A1 — counter-encoding ablation: the `Θ(n log n)` counting result is a
/// statement about *self-delimiting logarithmic* encodings, not about
/// counters per se.
///
/// The same counting algorithm is run with four wire encodings. Elias
/// delta (the default) and gamma stay in `Θ(n log n)` (gamma pays a larger
/// constant); unary demotes the pass to `Θ(n²)` — an entire complexity
/// tier lost to an encoding choice; a fixed 64-bit field *looks* linear
/// but is a capped algorithm (wrong for `n ≥ 2⁶⁴`), which is why the
/// honest protocols never use it. The ratio bounds are tuned to the two
/// fixed probe sizes, so the case list does not scale.
pub(crate) fn a1_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "A1",
        "Ablation: counter encodings vs the Θ(n log n) claim",
        "Summary §8 uses one-pass counting at O(n log n) bits; the class depends on the counter being self-delimiting and logarithmic",
        GridProfile::fixed(vec![256, 1024]),
        run_a1,
    )
}

fn run_a1(ctx: &RunCtx<'_>) -> ExperimentResult {
    // The class bounds below are tuned to a 4× step between the grid's
    // two probe sizes; the grid declares [n, 4n].
    let (small, big) = (ctx.sizes()[0], ctx.max_size());
    let mut result = ctx.new_result(vec![
        "encoding".into(),
        format!("bits(n={small})"),
        format!("bits(n={big})"),
        "ratio (4× size)".into(),
        "class".into(),
    ]);
    let unary_alphabet = ringleader_automata::Alphabet::from_chars("a").expect("valid alphabet");
    let word = |n: usize| {
        ringleader_automata::Word::from_str(&"a".repeat(n), &unary_alphabet)
            .expect("unary words parse")
    };
    let mut all_good = true;
    let cases = [
        (CounterEncoding::EliasDelta, "n log n (the paper's)", 4.0, 6.0),
        (CounterEncoding::EliasGamma, "n log n, bigger constant", 4.0, 6.0),
        (CounterEncoding::Unary, "n² — tier lost", 14.0, 18.0),
        (CounterEncoding::Fixed64, "64n — capped, wrong for n ≥ 2^64", 3.99, 4.01),
    ];
    // The eight runs (4 encodings × 2 sizes) are independent; fan them
    // out and fold in case order.
    let measured = run_independent(ctx.exec(), cases.len(), |i| {
        let proto = CountRingSize::probe_with_encoding(cases[i].0);
        let b_small = RingRunner::new().run(&proto, &word(small)).map(|o| o.stats.total_bits);
        let b_big = RingRunner::new().run(&proto, &word(big)).map(|o| o.stats.total_bits);
        (b_small, b_big)
    });
    for ((encoding, class, lo, hi), (small_run, big_run)) in cases.into_iter().zip(measured) {
        let b_small = match small_run {
            Ok(b) => b,
            Err(e) => {
                all_good = false;
                result.push_note(format!("{encoding:?}: {e}"));
                continue;
            }
        };
        let b_big = match big_run {
            Ok(b) => b,
            Err(e) => {
                all_good = false;
                result.push_note(format!("{encoding:?}: {e}"));
                continue;
            }
        };
        // Exactness against the closed forms.
        if b_small != encoding.predicted_pass_bits(small)
            || b_big != encoding.predicted_pass_bits(big)
        {
            all_good = false;
        }
        let ratio = b_big as f64 / b_small as f64;
        if ratio < lo || ratio > hi {
            all_good = false;
        }
        result.push_row(vec![
            format!("{encoding:?}"),
            b_small.to_string(),
            b_big.to_string(),
            format!("{ratio:.2}"),
            class.into(),
        ]);
    }
    result
        .push_note("growth ratios for a 4× size step: ~4 = linear, ~5 = n log n, ~16 = quadratic");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("an encoding missed its class".into())
    });
    result
}

/// A2 — the Theorem 3 Stage-1 construction: making processors stateless
/// by replaying message history costs a bounded factor, never a
/// complexity class. The grid's single size is the ring the closed forms
/// are evaluated on.
pub(crate) fn a2_spec() -> ExperimentSpec {
    ExperimentSpec::new(
        "A2",
        "Ablation: Theorem 3's stateless-replay construction",
        "Theorem 3 Stage 1: an equivalent algorithm that keeps no processor state, at BIT ≤ π_A·BIT_A — a bounded blow-up",
        GridProfile::fixed(vec![90]),
        run_a2,
    )
}

fn run_a2(ctx: &RunCtx<'_>) -> ExperimentResult {
    let n = ctx.max_size();
    let mut result = ctx.new_result(vec![
        "k".into(),
        format!("stateful bits (n={n})"),
        format!("stateless bits (n={n})"),
        "blow-up".into(),
        "≤ 2× (π_A = 2)?".into(),
    ]);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(31);
    let mut all_good = true;
    // Serial workload generation (one RNG stream), parallel measurement.
    let cases: Vec<(u32, ringleader_automata::Word)> = (1..=5u32)
        .map(|k| {
            let word = TwoPassParity::new(k)
                .language()
                .positive_example(n, &mut rng)
                .expect("positives exist at every length");
            (k, word)
        })
        .collect();
    let outcomes = run_independent(ctx.exec(), cases.len(), |i| {
        let (k, word) = &cases[i];
        let stateful = RingRunner::new()
            .run(&TwoPassParity::new(*k), word)
            .map(|o| (o.stats.total_bits, o.accepted()));
        let stateless = RingRunner::new()
            .run(&StatelessTwoPass::new(*k), word)
            .map(|o| (o.stats.total_bits, o.accepted()));
        (stateful, stateless)
    });
    for ((k, _), (stateful_run, stateless_run)) in cases.iter().zip(outcomes) {
        let k = *k;
        let stateful = TwoPassParity::new(k);
        let stateless = StatelessTwoPass::new(k);
        let (b_stateful, d1) = match stateful_run {
            Ok(pair) => pair,
            Err(e) => {
                all_good = false;
                result.push_note(format!("stateful k={k}: {e}"));
                continue;
            }
        };
        let (b_stateless, d2) = match stateless_run {
            Ok(pair) => pair,
            Err(e) => {
                all_good = false;
                result.push_note(format!("stateless k={k}: {e}"));
                continue;
            }
        };
        if d1 != d2 || !d1 {
            all_good = false;
        }
        if b_stateless != stateless.predicted_bits(n) || b_stateful != stateful.predicted_bits(n) {
            all_good = false;
        }
        let blowup = b_stateless as f64 / b_stateful as f64;
        let within = b_stateless <= 2 * b_stateful;
        if !within {
            all_good = false;
        }
        result.push_row(vec![
            k.to_string(),
            b_stateful.to_string(),
            b_stateless.to_string(),
            format!("{blowup:.2}"),
            if within { "yes".into() } else { "NO".into() },
        ]);
    }
    result.push_note("(3k+3)n vs (2k+1)n: the replay factor decays toward 1.5 as k grows — bounded by the pass count, exactly as the proof accounts");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("the construction broke equivalence or its bound".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use ringleader_analysis::{Scale, Serial, Verdict};

    #[test]
    fn a1_reproduces() {
        let r = super::a1_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn a2_reproduces() {
        let r = super::a2_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 5);
        assert!(r.rows.iter().all(|row| row[4] == "yes"));
    }
}
