//! E6 and E11: the quadratic tier — `wcw` and the universal collect-all
//! bound.

use std::sync::Arc;

use ringleader_analysis::{
    fit_series, sweep_protocol_with, ExperimentResult, GrowthModel, SweepConfig, SweepExecutor,
    Verdict,
};
use ringleader_core::{CollectAll, WcWPrefixForward};
use ringleader_langs::{AnBn, AnBnCn, EqualAB, Language, Palindrome, WcW};

use crate::quadratic_sizes;

/// E6 — Note 7.1: `{wcw}` costs `Θ(n²)` bits.
///
/// The prefix-forwarding recognizer is swept over odd ring sizes; the
/// measured totals must fit the quadratic model (matching the paper's
/// `Ω(n²)` lower bound), with message widths growing linearly in `n` —
/// the transport of `w` across the ring is visible on the wire.
#[must_use]
pub fn e6_wcw(exec: &dyn SweepExecutor) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E6",
        "wcw costs Θ(n²)",
        "Note 7.1: every algorithm recognizing {wcw} satisfies BIT_A(n) = Ω(n²)",
        vec!["n".into(), "bits".into(), "bits/n²".into(), "max msg bits".into()],
    );
    let lang = WcW::new();
    let proto = WcWPrefixForward::new();
    let config = SweepConfig::with_sizes(quadratic_sizes());
    let points = match sweep_protocol_with(&proto, &lang, &config, exec) {
        Ok(p) => p,
        Err(e) => {
            result.set_verdict(Verdict::Failed(format!("simulation error: {e}")));
            return result;
        }
    };
    for p in &points {
        let norm = p.bits as f64 / (p.n as f64 * p.n as f64);
        result.push_row(vec![
            p.n.to_string(),
            p.bits.to_string(),
            format!("{norm:.4}"),
            p.max_message_bits.to_string(),
        ]);
    }
    let series: Vec<(usize, f64)> = points.iter().map(|p| (p.n, p.bits as f64)).collect();
    let fit = fit_series(&series);
    result.push_note(format!(
        "fit: {} (c={:.3}, dispersion={:.3}, log-log slope {:.3})",
        fit.best_model, fit.constant, fit.dispersion, fit.log_log_slope
    ));
    result.set_verdict(if fit.best_model == GrowthModel::Quadratic {
        Verdict::Reproduced
    } else {
        Verdict::Failed(format!("expected n², measured {}", fit.best_model))
    });
    result
}

/// E11 — §1: the collect-all protocol recognizes *every* language in
/// exactly `⌈log|Σ|⌉·n(n+1)/2` bits — the trivial quadratic upper bound
/// all specialized algorithms beat.
#[must_use]
pub fn e11_collect_all(exec: &dyn SweepExecutor) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "E11",
        "Collect-all: the universal Θ(n²) upper bound",
        "§1: the leader can obtain all information in O(n²) bits — every function is computable in n(n+1)/2 letters of traffic",
        vec![
            "language".into(),
            "n".into(),
            "bits".into(),
            "closed form".into(),
            "exact?".into(),
        ],
    );
    let languages: Vec<Arc<dyn Language>> = vec![
        Arc::new(AnBn::new()),
        Arc::new(AnBnCn::new()),
        Arc::new(WcW::new()),
        Arc::new(Palindrome::new()),
        Arc::new(EqualAB::new()),
    ];
    let mut all_good = true;
    for lang in &languages {
        let proto = CollectAll::new(Arc::clone(lang));
        let config = SweepConfig::with_sizes(vec![33, 129, 513]);
        let points = match sweep_protocol_with(&proto, lang.as_ref(), &config, exec) {
            Ok(p) => p,
            Err(e) => {
                all_good = false;
                result.push_note(format!("{}: simulation error {e}", lang.name()));
                continue;
            }
        };
        for p in &points {
            let predicted = proto.predicted_bits(p.n);
            let exact = p.bits == predicted;
            if !exact {
                all_good = false;
            }
            result.push_row(vec![
                lang.name(),
                p.n.to_string(),
                p.bits.to_string(),
                predicted.to_string(),
                if exact { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    result.push_note("identical closed form across languages: only the alphabet width matters");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("collect-all missed its closed form".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::Serial;

    #[test]
    fn e6_reproduces() {
        let r = e6_wcw(&Serial);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert!(r.rows.len() >= 5);
    }

    #[test]
    fn e11_reproduces() {
        let r = e11_collect_all(&Serial);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // 5 languages × 3 sizes.
        assert_eq!(r.rows.len(), 15);
        assert!(r.rows.iter().all(|row| row[4] == "yes"));
    }
}
