//! E6 and E11: the quadratic tier — `wcw` and the universal collect-all
//! bound.

use std::sync::Arc;

use ringleader_analysis::{
    sweep_protocol_with, ExperimentResult, ExperimentSpec, GridProfile, GrowthModel, RunCtx,
    ScaleGrid, ScheduleScenario, SweepPlan, Verdict,
};
use ringleader_core::{CollectAll, WcWPrefixForward};
use ringleader_langs::{AnBn, AnBnCn, EqualAB, Language, Palindrome, WcW};

/// E6 — Note 7.1: `{wcw}` costs `Θ(n²)` bits.
///
/// Fully declarative: the harness sweeps the prefix-forwarding
/// recognizer over odd ring sizes and requires the quadratic fit
/// (matching the paper's `Ω(n²)` lower bound). Message widths growing
/// linearly in `n` — the transport of `w` across the ring — are visible
/// in the `max msg bits` column.
pub(crate) fn e6_spec() -> ExperimentSpec {
    ExperimentSpec::sweep(
        "E6",
        "wcw costs Θ(n²)",
        "Note 7.1: every algorithm recognizing {wcw} satisfies BIT_A(n) = Ω(n²)",
        GridProfile::per_scale(
            ScaleGrid::new(vec![65, 129, 257], 2),
            ScaleGrid::new(vec![65, 129, 257, 513, 1025], 3),
            ScaleGrid::new(vec![1025, 4097, 16385], 1),
        ),
        SweepPlan::new(
            || Box::new(WcWPrefixForward::new()),
            || Box::new(WcW::new()),
            GrowthModel::Quadratic,
        )
        .norm_label("bits/n²"),
    )
}

/// E11 — §1: the collect-all protocol recognizes *every* language in
/// exactly `⌈log|Σ|⌉·n(n+1)/2` bits — the trivial quadratic upper bound
/// all specialized algorithms beat. Carries the matrix's
/// `collect-all[0^n1^n2^n]` scenario.
pub(crate) fn e11_spec() -> ExperimentSpec {
    let word = crate::counter_scenario_word();
    ExperimentSpec::new(
        "E11",
        "Collect-all: the universal Θ(n²) upper bound",
        "§1: the leader can obtain all information in O(n²) bits — every function is computable in n(n+1)/2 letters of traffic",
        GridProfile::per_scale(
            ScaleGrid::new(vec![33, 129], 2),
            ScaleGrid::new(vec![33, 129, 513], 3),
            ScaleGrid::new(vec![1035, 4101, 16389], 1),
        ),
        run_e11,
    )
    .with_expected_model(GrowthModel::Quadratic)
    .with_scenario(ScheduleScenario::new(
        "collect-all[0^n1^n2^n]",
        || Box::new(CollectAll::new(Arc::new(AnBnCn::new()))),
        word,
    ))
}

fn run_e11(ctx: &RunCtx<'_>) -> ExperimentResult {
    let mut result = ctx.new_result(vec![
        "language".into(),
        "n".into(),
        "bits".into(),
        "closed form".into(),
        "exact?".into(),
    ]);
    let languages: Vec<Arc<dyn Language>> = vec![
        Arc::new(AnBn::new()),
        Arc::new(AnBnCn::new()),
        Arc::new(WcW::new()),
        Arc::new(Palindrome::new()),
        Arc::new(EqualAB::new()),
    ];
    let mut all_good = true;
    for lang in &languages {
        let proto = CollectAll::new(Arc::clone(lang));
        let config = ctx.sweep_config();
        let points = match sweep_protocol_with(&proto, lang.as_ref(), &config, ctx.exec()) {
            Ok(p) => p,
            Err(e) => {
                all_good = false;
                result.push_note(format!("{}: simulation error {e}", lang.name()));
                continue;
            }
        };
        for p in &points {
            let predicted = proto.predicted_bits(p.n);
            let exact = p.bits == predicted;
            if !exact {
                all_good = false;
            }
            result.push_row(vec![
                lang.name(),
                p.n.to_string(),
                p.bits.to_string(),
                predicted.to_string(),
                if exact { "yes".into() } else { "NO".into() },
            ]);
        }
    }
    result.push_note("identical closed form across languages: only the alphabet width matters");
    result.set_verdict(if all_good {
        Verdict::Reproduced
    } else {
        Verdict::Failed("collect-all missed its closed form".into())
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ringleader_analysis::{Scale, Serial};

    #[test]
    fn e6_reproduces() {
        let r = e6_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert!(r.rows.len() >= 5);
    }

    #[test]
    fn e11_reproduces() {
        let r = e11_spec().run(&Serial, Scale::Paper);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        // 5 languages × 3 sizes.
        assert_eq!(r.rows.len(), 15);
        assert!(r.rows.iter().all(|row| row[4] == "yes"));
    }

    #[test]
    fn e6_smoke_still_classifies_quadratic() {
        let r = e6_spec().run(&Serial, Scale::Smoke);
        assert_eq!(r.verdict, Verdict::Reproduced, "{r}");
        assert_eq!(r.rows.len(), 3);
    }
}
