//! Criterion wall-clock benches: one group per experiment family.
//!
//! The paper's metric (bits) is measured exactly by the `experiments`
//! binary; these benches track the *simulator's* throughput on the same
//! workloads, so performance regressions in the substrate are caught the
//! same way correctness regressions are.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ringleader_automata::{Alphabet, Word};
use ringleader_core::{
    BidirMeetInMiddle, CollectAll, CountRingSize, CutLinkAdapter, DfaOnePass,
    LengthPredicateKnownN, LgRecognizer, MessageGraphExplorer, OnePassParity, ThreeCounters,
    TwoPassParity, WcWPrefixForward,
};
use ringleader_langs::{
    AnBnCn, DfaLanguage, GrowthFunction, Language, LgLanguage, PowerOfTwoLength, WcW,
};
use ringleader_sim::RingRunner;

fn sizes() -> [usize; 3] {
    [64, 256, 1024]
}

/// E1: the Theorem 1 one-pass recognizer.
fn bench_e1_regular(c: &mut Criterion) {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("e1_regular_one_pass");
    for n in sizes() {
        let word = lang
            .positive_example(n, &mut rng)
            .or_else(|| lang.negative_example(n, &mut rng))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// E2: message-graph extraction.
fn bench_e2_graph(c: &mut Criterion) {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*a(a|b)(a|b)", &sigma).unwrap();
    let dfa_proto = DfaOnePass::new(&lang);
    let parity = OnePassParity::new(2);
    let mut group = c.benchmark_group("e2_message_graph");
    group.bench_function("extract_dfa", |b| {
        b.iter(|| MessageGraphExplorer::new(10_000).explore(&dfa_proto));
    });
    group.bench_function("extract_parity_k2", |b| {
        b.iter(|| MessageGraphExplorer::new(100_000).explore(&parity));
    });
    group.bench_function("diverge_counting_500", |b| {
        b.iter(|| MessageGraphExplorer::new(500).explore(&CountRingSize::probe()));
    });
    group.finish();
}

/// E3: traced runs + information-state extraction.
fn bench_e3_infostate(c: &mut Criterion) {
    let proto = ThreeCounters::new();
    let sigma = proto.language().alphabet().clone();
    let words: Vec<Word> = ringleader_core::infostate::exhaustive_words(&sigma, 5);
    c.bench_function("e3_info_state_census_3pow5", |b| {
        b.iter(|| ringleader_core::analyze_info_states(&proto, &words).unwrap());
    });
}

/// E4: the cut-link transformation.
fn bench_e4_reroute(c: &mut Criterion) {
    let unary = Alphabet::from_chars("a").unwrap();
    let inner = CountRingSize::probe();
    let adapted = CutLinkAdapter::new(inner.clone());
    let mut group = c.benchmark_group("e4_cut_link");
    for n in sizes() {
        let word = Word::from_str(&"a".repeat(n), &unary).unwrap();
        group.bench_with_input(BenchmarkId::new("plain", n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&inner, w).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("rerouted", n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&adapted, w).unwrap());
        });
    }
    group.finish();
}

/// E5: the bidirectional meet-in-the-middle recognizer.
fn bench_e5_bidirectional(c: &mut Criterion) {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("e5_bidirectional");
    for n in sizes() {
        let word = lang
            .positive_example(n, &mut rng)
            .or_else(|| lang.negative_example(n, &mut rng))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// E6: the quadratic wcw recognizer.
fn bench_e6_wcw(c: &mut Criterion) {
    let lang = WcW::new();
    let proto = WcWPrefixForward::new();
    let mut rng = StdRng::seed_from_u64(4);
    let mut group = c.benchmark_group("e6_wcw");
    group.sample_size(20);
    for n in [65usize, 257, 513] {
        let word = lang.positive_example(n, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// E7: three counters vs collect-all.
fn bench_e7_counters(c: &mut Criterion) {
    let lang = AnBnCn::new();
    let counters = ThreeCounters::new();
    let collect = CollectAll::new(Arc::new(AnBnCn::new()));
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("e7_anbncn");
    group.sample_size(20);
    for n in [66usize, 258, 1026] {
        let word = lang.positive_example(n, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("three_counters", n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&counters, w).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("collect_all", n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&collect, w).unwrap());
        });
    }
    group.finish();
}

/// E8: the L_g hierarchy tiers.
fn bench_e8_hierarchy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut group = c.benchmark_group("e8_hierarchy");
    group.sample_size(20);
    for g in [GrowthFunction::NLogN, GrowthFunction::NSqrtN, GrowthFunction::NSquaredHalf] {
        let lang = LgLanguage::new(g);
        let proto = LgRecognizer::new(&lang);
        let word = lang.positive_example(256, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(g.label()), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// E9: known-n mode.
fn bench_e9_known_n(c: &mut Criterion) {
    let lang = PowerOfTwoLength::new();
    let known = LengthPredicateKnownN::new(
        ringleader_automata::Symbol(0),
        Arc::new(|n: usize| n.is_power_of_two()),
    );
    let unknown = CountRingSize::new(Arc::new(|n: usize| n.is_power_of_two()));
    let word = {
        let mut rng = StdRng::seed_from_u64(7);
        lang.positive_example(1024, &mut rng).unwrap()
    };
    let mut group = c.benchmark_group("e9_known_n");
    group.bench_function("known_n_1024", |b| {
        let mut runner = RingRunner::new();
        runner.known_ring_size(true);
        b.iter(|| runner.run(&known, &word).unwrap());
    });
    group.bench_function("unknown_n_1024", |b| {
        b.iter(|| RingRunner::new().run(&unknown, &word).unwrap());
    });
    group.finish();
}

/// E10: the pass/bit trade-off family.
fn bench_e10_tradeoff(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let mut group = c.benchmark_group("e10_tradeoff");
    for k in [1u32, 3, 5] {
        let two = TwoPassParity::new(k);
        let one = OnePassParity::new(k);
        let word = two.language().positive_example(120, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("two_pass", k), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&two, w).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("one_pass", k), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&one, w).unwrap());
        });
    }
    group.finish();
}

/// E11: collect-all across ring sizes.
fn bench_e11_collect(c: &mut Criterion) {
    let lang = AnBnCn::new();
    let proto = CollectAll::new(Arc::new(AnBnCn::new()));
    let mut rng = StdRng::seed_from_u64(9);
    let mut group = c.benchmark_group("e11_collect_all");
    group.sample_size(20);
    for n in [66usize, 258, 1026] {
        let word = lang.positive_example(n, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// E12: event engine vs schedulers vs threads.
fn bench_e12_backends(c: &mut Criterion) {
    let sigma = Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut rng = StdRng::seed_from_u64(10);
    let word = lang.positive_example(256, &mut rng).unwrap();
    let mut group = c.benchmark_group("e12_backends");
    group.bench_function("event_fifo_256", |b| {
        b.iter(|| RingRunner::new().run(&proto, &word).unwrap());
    });
    group.bench_function("event_random_256", |b| {
        let mut runner = RingRunner::new();
        runner.scheduler(ringleader_sim::Scheduler::Random { seed: 1 });
        b.iter(|| runner.run(&proto, &word).unwrap());
    });
    group.sample_size(10);
    group.bench_function("threads_64", |b| {
        let small = lang.positive_example(64, &mut rng).unwrap();
        b.iter(|| ringleader_sim::ThreadedRunner::new().run(&proto, &small).unwrap());
    });
    group.finish();
}

/// A1/A2: ablation workloads (encodings + stateless replay).
fn bench_ablations(c: &mut Criterion) {
    use ringleader_core::{CounterEncoding, StatelessTwoPass};
    let unary = Alphabet::from_chars("a").unwrap();
    let word = Word::from_str(&"a".repeat(256), &unary).unwrap();
    let mut group = c.benchmark_group("a1_counter_encodings");
    for encoding in [
        CounterEncoding::EliasDelta,
        CounterEncoding::EliasGamma,
        CounterEncoding::Unary,
        CounterEncoding::Fixed64,
    ] {
        let proto = CountRingSize::probe_with_encoding(encoding);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{encoding:?}")),
            &word,
            |b, w| {
                b.iter(|| RingRunner::new().run(&proto, w).unwrap());
            },
        );
    }
    group.finish();

    let mut rng = StdRng::seed_from_u64(11);
    let mut group = c.benchmark_group("a2_stateless_replay");
    for k in [1u32, 3, 5] {
        let stateful = TwoPassParity::new(k);
        let stateless = StatelessTwoPass::new(k);
        let w = stateful.language().positive_example(90, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("stateful", k), &w, |b, w| {
            b.iter(|| RingRunner::new().run(&stateful, w).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("stateless", k), &w, |b, w| {
            b.iter(|| RingRunner::new().run(&stateless, w).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_e1_regular,
    bench_e2_graph,
    bench_e3_infostate,
    bench_e4_reroute,
    bench_e5_bidirectional,
    bench_e6_wcw,
    bench_e7_counters,
    bench_e8_hierarchy,
    bench_e9_known_n,
    bench_e10_tradeoff,
    bench_e11_collect,
    bench_e12_backends,
    bench_ablations
);
criterion_main!(benches);
