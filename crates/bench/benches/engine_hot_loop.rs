//! Engine-throughput benches: the per-delivery cost of the event loop.
//!
//! Unlike `protocols.rs` (one group per paper experiment), this group
//! isolates the *simulator substrate*: three workload shapes chosen to
//! stress the scheduler index and the message hot path at ring sizes where
//! an O(n)-per-delivery engine becomes the bottleneck.
//!
//! * `one_pass` — unidirectional single token (`DfaOnePass`): exactly one
//!   link is ever non-empty, the best case for the single-link fast path.
//! * `bidir_collision` — `BidirMeetInMiddle` probes crossing in both
//!   directions: two active links, exercises the index under churn.
//! * `quadratic_stateless` — the Theorem 3 stateless replay
//!   (`StatelessTwoPass`), whose pass-2 messages replay pass-1 history:
//!   wider payloads and two full passes of deliveries.
//!
//! * `one_pass_sharded` — the one-pass workload again, split across
//!   {2, 4, 8} engine shards. A single token once meant one delivery per
//!   merge window (pure round-trip overhead, 20–60× at these sizes —
//!   `BENCH_0004.json`); with epoch-batched grants the coordinator hands
//!   each arc its whole traversal in one command, so this now measures
//!   the residual coordination gap (`BENCH_0006.json`). CI's perf-smoke
//!   gate keeps it from regressing back to per-delivery round-trips.
//! * `metered` — the one-pass workload with an enabled metrics registry
//!   attached (`on/<n>`) vs its unmetered twin (`off/<n>`), timed
//!   back-to-back: prices the observability layer itself. CI gates `on`
//!   at ≤3% over `off` at n = 4096 (`BENCH_0007.json`).
//!
//! Run with `CRITERION_SNAPSHOT=out.jsonl` to dump machine-readable
//! measurements; `BENCH_0003.json` in the repo root is the checked-in
//! trajectory for the serial engine (pre- and post-incremental-index),
//! and `BENCH_0004.json` the serial-vs-sharded trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ringleader_automata::Word;
use ringleader_core::{BidirMeetInMiddle, DfaOnePass, StatelessTwoPass};
use ringleader_langs::{DfaLanguage, Language};
use ringleader_sim::{RingRunner, RunPhase};

const SIZES: [usize; 3] = [64, 512, 4096];

fn word_for(lang: &dyn Language, n: usize, seed: u64) -> Word {
    let mut rng = StdRng::seed_from_u64(seed);
    lang.positive_example(n, &mut rng)
        .or_else(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            lang.negative_example(n, &mut rng)
        })
        .expect("language has examples at bench sizes")
}

/// Unidirectional one-pass run: n deliveries, one message in flight.
fn bench_one_pass(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/one_pass");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// One-pass run split across {2, 4, 8} shards: per-delivery coordination
/// cost. A single token means every delivery is computable one arc at a
/// time, so the epoch path should grant each arc's whole traversal in
/// one command — the measured overhead is the epoch round-trip amortized
/// over `n/shards` deliveries plus the coordinator's replay, not a
/// channel hop per delivery.
fn bench_one_pass_sharded(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/one_pass_sharded");
    for shards in [2usize, 4, 8] {
        for n in SIZES {
            let word = word_for(&lang, n, 0xE0);
            group.bench_function(format!("shards_{shards}/{n}"), |b| {
                b.iter(|| {
                    let mut runner = RingRunner::new();
                    runner.shards(shards);
                    runner.run(&proto, &word).unwrap()
                });
            });
        }
    }
    group.finish();
}

/// Bidirectional meet-in-the-middle: probes collide, two active links.
fn bench_bidir_collision(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/bidir_collision");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// Stateless replay (Theorem 3 stage 1): two passes, replayed payloads.
fn bench_quadratic_stateless(c: &mut Criterion) {
    let proto = StatelessTwoPass::new(3);
    let lang = proto.language().clone();
    let mut group = c.benchmark_group("engine_hot_loop/quadratic_stateless");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// A minimal multi-lap token relay for the checkpoint bench: the leader
/// circulates one 8-bit frame `laps` times around the ring. Unlike the
/// one-pass protocols above it decouples delivery count from ring size
/// (n·laps deliveries on an n-ring), which is the regime checkpointing
/// targets: a snapshot costs O(n), so its amortized overhead at a fixed
/// delivery cadence depends on how many deliveries one ring-sweep buys.
struct LapRelay {
    laps: u32,
}

struct LapLeader {
    remaining: u32,
}

struct LapFollower;

impl ringleader_sim::Process for LapLeader {
    fn on_start(&mut self, ctx: &mut ringleader_sim::Context) -> ringleader_sim::ProcessResult {
        let frame = {
            let mut w = ringleader_bitio::BitWriter::new();
            w.write_bits(0xA5, 8);
            w.finish()
        };
        ctx.send(ringleader_sim::Direction::Clockwise, frame);
        Ok(())
    }

    fn on_message(
        &mut self,
        _d: ringleader_sim::Direction,
        msg: &ringleader_bitio::BitString,
        ctx: &mut ringleader_sim::Context,
    ) -> ringleader_sim::ProcessResult {
        self.remaining -= 1;
        if self.remaining == 0 {
            ctx.decide(true);
        } else {
            ctx.send(ringleader_sim::Direction::Clockwise, msg.clone());
        }
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.remaining.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ringleader_sim::ProcessResult {
        let arr: [u8; 4] = bytes.try_into().map_err(|_| {
            ringleader_sim::ProcessError::InvalidState("lap counter is four bytes".into())
        })?;
        self.remaining = u32::from_le_bytes(arr);
        Ok(())
    }
}

impl ringleader_sim::Process for LapFollower {
    fn on_message(
        &mut self,
        _d: ringleader_sim::Direction,
        msg: &ringleader_bitio::BitString,
        ctx: &mut ringleader_sim::Context,
    ) -> ringleader_sim::ProcessResult {
        ctx.send(ringleader_sim::Direction::Clockwise, msg.clone());
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, _bytes: &[u8]) -> ringleader_sim::ProcessResult {
        Ok(())
    }
}

impl ringleader_sim::Protocol for LapRelay {
    fn name(&self) -> &'static str {
        "lap-relay"
    }

    fn topology(&self) -> ringleader_sim::Topology {
        ringleader_sim::Topology::Unidirectional
    }

    fn leader(&self, _input: ringleader_automata::Symbol) -> Box<dyn ringleader_sim::Process> {
        Box::new(LapLeader { remaining: self.laps })
    }

    fn follower(&self, _input: ringleader_automata::Symbol) -> Box<dyn ringleader_sim::Process> {
        Box::new(LapFollower)
    }
}

/// Checkpoint overhead: 2¹⁸ deliveries (laps × n held constant) run
/// uninterrupted vs paused/resumed at a 2¹⁶-delivery cadence (the
/// budgeted production setting — 3 snapshots) and at an aggressive 2¹⁴
/// cadence (15 snapshots) that makes the per-snapshot capture+restore
/// cost visible. Each pause serializes every process and link queue;
/// each resume rebuilds them — so this prices the whole crash-safety
/// round trip, not just the capture. One snapshot cycle costs O(n), so
/// the overhead at a fixed cadence scales with ring size: the two ring
/// sizes here bracket the ≤5% budget (met at n = 1024, where a cadence
/// window covers 64 ring-sweeps; ~2× over at n = 4096, where it covers
/// 16). `BENCH_0005.json` is the checked-in snapshot.
fn bench_checkpointed(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("a").unwrap();
    let mut group = c.benchmark_group("engine_hot_loop/checkpointed");
    group.sample_size(10);
    for (n, laps) in [(1024usize, 256u32), (4096, 64)] {
        let proto = LapRelay { laps };
        let word = Word::from_str(&"a".repeat(n), &sigma).unwrap();
        group.bench_function(format!("plain/{n}"), |b| {
            b.iter(|| RingRunner::new().run(&proto, &word).unwrap());
        });
        for cadence_log2 in [16u32, 14] {
            let cadence = 1usize << cadence_log2;
            group.bench_function(format!("every_2^{cadence_log2}/{n}"), |b| {
                b.iter(|| {
                    let runner = RingRunner::new();
                    let mut pause = cadence;
                    let mut phase = runner.run_until(&proto, &word, pause).unwrap();
                    loop {
                        match phase {
                            RunPhase::Done(outcome) => break outcome,
                            RunPhase::Paused(snap) => {
                                pause += cadence;
                                phase = runner.resume_until(&proto, &word, &snap, pause).unwrap();
                            }
                        }
                    }
                });
            });
        }
    }
    group.finish();
}

/// Metrics overhead: the one-pass workload with an enabled
/// `ringleader_obs::Metrics` registry attached, measured against its own
/// unmetered twin (`off/<n>` vs `on/<n>`, timed back-to-back so machine
/// drift between bench groups cancels out). The serial engine only
/// touches the registry once per run (one counter flush at the Done
/// transition), so the metered run must track the twin within a few
/// percent — CI's perf-smoke gate enforces ≤3% at n = 4096, the bound
/// that justifies calling the layer zero-cost-when-disabled *and*
/// cheap-when-enabled. `BENCH_0007.json` is the checked-in snapshot.
fn bench_metered(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/metered");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE0);
        group.bench_with_input(BenchmarkId::new("off", n), &word, |b, w| {
            b.iter(|| {
                let mut runner = RingRunner::new();
                runner.metrics(ringleader_obs::Metrics::disabled());
                runner.run(&proto, w).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("on", n), &word, |b, w| {
            let metrics = ringleader_obs::Metrics::enabled();
            b.iter(|| {
                let mut runner = RingRunner::new();
                runner.metrics(metrics.clone());
                runner.run(&proto, w).unwrap()
            });
        });
    }
    group.finish();
}

/// Bounded-trace cost: the one-pass workload untraced vs ring-traced
/// (capacity 1024) vs fully traced. The ring's push is O(1) with a
/// fixed-size buffer, so it must track the untraced run within a few
/// percent while the full trace pays O(events) retention — the reason
/// `large`/`massive` profiles get a tail at all.
fn bench_trace_ring(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let n = 4096usize;
    let word = word_for(&lang, n, 0xE0);
    let mut group = c.benchmark_group("engine_hot_loop/trace");
    group.bench_function("untraced", |b| {
        b.iter(|| RingRunner::new().run(&proto, &word).unwrap());
    });
    group.bench_function("ring_1024", |b| {
        b.iter(|| {
            let mut runner = RingRunner::new();
            runner.trace_ring(1024);
            runner.run(&proto, &word).unwrap()
        });
    });
    group.bench_function("full", |b| {
        b.iter(|| {
            let mut runner = RingRunner::new();
            runner.record_trace(true);
            runner.run(&proto, &word).unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    engine_hot_loop,
    bench_one_pass,
    bench_one_pass_sharded,
    bench_bidir_collision,
    bench_quadratic_stateless,
    bench_checkpointed,
    bench_metered,
    bench_trace_ring
);
criterion_main!(engine_hot_loop);
