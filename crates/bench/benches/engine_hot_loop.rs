//! Engine-throughput benches: the per-delivery cost of the event loop.
//!
//! Unlike `protocols.rs` (one group per paper experiment), this group
//! isolates the *simulator substrate*: three workload shapes chosen to
//! stress the scheduler index and the message hot path at ring sizes where
//! an O(n)-per-delivery engine becomes the bottleneck.
//!
//! * `one_pass` — unidirectional single token (`DfaOnePass`): exactly one
//!   link is ever non-empty, the best case for the single-link fast path.
//! * `bidir_collision` — `BidirMeetInMiddle` probes crossing in both
//!   directions: two active links, exercises the index under churn.
//! * `quadratic_stateless` — the Theorem 3 stateless replay
//!   (`StatelessTwoPass`), whose pass-2 messages replay pass-1 history:
//!   wider payloads and two full passes of deliveries.
//!
//! * `one_pass_sharded` — the one-pass workload again, split across 4
//!   engine shards. A single token keeps exactly one delivery per merge
//!   window, so this is the sharded coordinator's *worst* case: it
//!   measures pure round-trip overhead, not speedup. The point of the
//!   bench is to keep that overhead visible and bounded — the sharded
//!   engine pays off on wall-clock only where rings dwarf these sizes
//!   (the `massive` profile's 10⁶-process runs).
//!
//! Run with `CRITERION_SNAPSHOT=out.jsonl` to dump machine-readable
//! measurements; `BENCH_0003.json` in the repo root is the checked-in
//! trajectory for the serial engine (pre- and post-incremental-index),
//! and `BENCH_0004.json` the serial-vs-sharded trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use ringleader_automata::Word;
use ringleader_core::{BidirMeetInMiddle, DfaOnePass, StatelessTwoPass};
use ringleader_langs::{DfaLanguage, Language};
use ringleader_sim::RingRunner;

const SIZES: [usize; 3] = [64, 512, 4096];

fn word_for(lang: &dyn Language, n: usize, seed: u64) -> Word {
    let mut rng = StdRng::seed_from_u64(seed);
    lang.positive_example(n, &mut rng)
        .or_else(|| {
            let mut rng = StdRng::seed_from_u64(seed);
            lang.negative_example(n, &mut rng)
        })
        .expect("language has examples at bench sizes")
}

/// Unidirectional one-pass run: n deliveries, one message in flight.
fn bench_one_pass(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/one_pass");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// One-pass run split across 4 shards: per-delivery coordination cost.
fn bench_one_pass_sharded(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(a|b)*abb", &sigma).unwrap();
    let proto = DfaOnePass::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/one_pass_sharded");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| {
                let mut runner = RingRunner::new();
                runner.shards(4);
                runner.run(&proto, w).unwrap()
            });
        });
    }
    group.finish();
}

/// Bidirectional meet-in-the-middle: probes collide, two active links.
fn bench_bidir_collision(c: &mut Criterion) {
    let sigma = ringleader_automata::Alphabet::from_chars("ab").unwrap();
    let lang = DfaLanguage::from_regex("(ab)*", &sigma).unwrap();
    let proto = BidirMeetInMiddle::new(&lang);
    let mut group = c.benchmark_group("engine_hot_loop/bidir_collision");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

/// Stateless replay (Theorem 3 stage 1): two passes, replayed payloads.
fn bench_quadratic_stateless(c: &mut Criterion) {
    let proto = StatelessTwoPass::new(3);
    let lang = proto.language().clone();
    let mut group = c.benchmark_group("engine_hot_loop/quadratic_stateless");
    for n in SIZES {
        let word = word_for(&lang, n, 0xE2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &word, |b, w| {
            b.iter(|| RingRunner::new().run(&proto, w).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    engine_hot_loop,
    bench_one_pass,
    bench_one_pass_sharded,
    bench_bidir_collision,
    bench_quadratic_stateless
);
criterion_main!(engine_hot_loop);
