//! Cursor-style bit decoding.

use crate::{BitString, DecodeError};

/// Reads a [`BitString`] field by field, tracking a cursor position.
///
/// Mirrors [`BitWriter`](crate::BitWriter): every `write_*` has a matching
/// `read_*`, and a message encoded with the writer decodes to the same
/// values in the same order.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::{BitWriter, BitReader, DecodeError};
/// # fn main() -> Result<(), DecodeError> {
/// let mut w = BitWriter::new();
/// w.write_bits(5, 3).write_elias_gamma(7);
/// let s = w.finish();
/// let mut r = BitReader::new(&s);
/// assert_eq!(r.read_bits(3)?, 5);
/// assert_eq!(r.read_elias_gamma()?, 7);
/// assert!(r.is_at_end());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    src: &'a BitString,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit of `src`.
    #[must_use]
    pub fn new(src: &'a BitString) -> Self {
        Self { src, pos: 0 }
    }

    /// Current cursor position in bits from the start.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of unread bits.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    /// Returns `true` once every bit has been consumed.
    #[must_use]
    pub fn is_at_end(&self) -> bool {
        self.pos == self.src.len()
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] at the end of the string.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        let bit =
            self.src.get(self.pos).ok_or(DecodeError::UnexpectedEnd { at: self.pos, needed: 1 })?;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits as a most-significant-bit-first integer.
    ///
    /// A `width` of 0 reads nothing and returns 0.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than `width` bits
    /// remain.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, DecodeError> {
        assert!(width <= 64, "width {width} exceeds 64");
        if self.remaining() < width as usize {
            return Err(DecodeError::UnexpectedEnd {
                at: self.pos,
                needed: width as usize - self.remaining(),
            });
        }
        let mut value = 0u64;
        for _ in 0..width {
            let bit = self.src.get(self.pos).expect("length checked above");
            value = (value << 1) | u64::from(bit);
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads a unary-coded value (zeros terminated by a one).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if the string ends before the
    /// terminating one.
    pub fn read_unary(&mut self) -> Result<u64, DecodeError> {
        crate::codes::read_unary(self)
    }

    /// Reads an Elias-gamma-coded value (always `>= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation and
    /// [`DecodeError::Malformed`] if the length prefix exceeds 64 bits.
    pub fn read_elias_gamma(&mut self) -> Result<u64, DecodeError> {
        crate::codes::read_elias_gamma(self)
    }

    /// Reads an Elias-delta-coded value (always `>= 1`).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation and
    /// [`DecodeError::Malformed`] if the inner length exceeds 64 bits.
    pub fn read_elias_delta(&mut self) -> Result<u64, DecodeError> {
        crate::codes::read_elias_delta(self)
    }

    /// Reads `count` raw bits into a new [`BitString`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than `count` bits
    /// remain.
    pub fn read_bitstring(&mut self, count: usize) -> Result<BitString, DecodeError> {
        if self.remaining() < count {
            return Err(DecodeError::UnexpectedEnd {
                at: self.pos,
                needed: count - self.remaining(),
            });
        }
        let out = self.src.slice(self.pos..self.pos + count);
        self.pos += count;
        Ok(out)
    }

    /// Reads all remaining bits into a new [`BitString`].
    pub fn read_rest(&mut self) -> BitString {
        let out = self.src.slice(self.pos..self.src.len());
        self.pos = self.src.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    #[test]
    fn read_bits_msb_first() {
        let s = BitString::parse("1011").unwrap();
        let mut r = BitReader::new(&s);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert!(r.is_at_end());
    }

    #[test]
    fn zero_width_read_returns_zero() {
        let s = BitString::new();
        let mut r = BitReader::new(&s);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_read_reports_position_and_need() {
        let s = BitString::parse("10").unwrap();
        let mut r = BitReader::new(&s);
        let err = r.read_bits(5).unwrap_err();
        assert_eq!(err, DecodeError::UnexpectedEnd { at: 0, needed: 3 });
    }

    #[test]
    fn read_bit_sequence() {
        let s = BitString::parse("101").unwrap();
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().unwrap());
        assert!(!r.read_bit().unwrap());
        assert!(r.read_bit().unwrap());
        assert!(r.read_bit().is_err());
    }

    #[test]
    fn position_and_remaining_track_cursor() {
        let s = BitString::parse("111000").unwrap();
        let mut r = BitReader::new(&s);
        assert_eq!((r.position(), r.remaining()), (0, 6));
        r.read_bits(2).unwrap();
        assert_eq!((r.position(), r.remaining()), (2, 4));
        r.read_rest();
        assert_eq!((r.position(), r.remaining()), (6, 0));
    }

    #[test]
    fn read_bitstring_slices() {
        let s = BitString::parse("110010").unwrap();
        let mut r = BitReader::new(&s);
        assert_eq!(r.read_bitstring(3).unwrap().to_string(), "110");
        assert_eq!(r.read_bitstring(3).unwrap().to_string(), "010");
        assert!(r.read_bitstring(1).is_err());
    }

    #[test]
    fn writer_reader_roundtrip_mixed_fields() {
        let mut w = BitWriter::new();
        w.write_bit(true)
            .write_bits(42, 7)
            .write_unary(5)
            .write_elias_gamma(33)
            .write_elias_delta(1_000_000);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bits(7).unwrap(), 42);
        assert_eq!(r.read_unary().unwrap(), 5);
        assert_eq!(r.read_elias_gamma().unwrap(), 33);
        assert_eq!(r.read_elias_delta().unwrap(), 1_000_000);
        assert!(r.is_at_end());
    }

    #[test]
    fn read_rest_consumes_everything() {
        let s = BitString::parse("10110").unwrap();
        let mut r = BitReader::new(&s);
        r.read_bit().unwrap();
        assert_eq!(r.read_rest().to_string(), "0110");
        assert!(r.is_at_end());
        assert_eq!(r.read_rest().len(), 0);
    }
}
