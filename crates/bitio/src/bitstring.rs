//! A compact, ordered sequence of bits — the wire format of every message.

use std::fmt;

use serde::{Content, Deserialize, Error as SerdeError, Serialize};

/// Payloads of at most this many bytes are stored inline, with no heap
/// allocation. 23 bytes = 184 bits covers every O(log n)-bit message the
/// protocol suite sends (an Elias-delta counter for n = 2⁶⁴ is 77 bits);
/// only history-carrying payloads (collect-all, stateless replay, wcw
/// prefixes) spill to the heap.
const INLINE_BYTES: usize = 23;

/// The inline capacity in bits: 184.
const INLINE_BITS: usize = INLINE_BYTES * 8;

/// The backing store: a fixed inline buffer or a heap vector.
///
/// Invariants (upheld by every constructor and mutator):
/// * `Heap(v)` always holds exactly `len.div_ceil(8)` bytes;
/// * `Inline` bytes at positions ≥ `len.div_ceil(8)`, and bits of the
///   last partial byte at positions ≥ `len`, are zero — so equality and
///   hashing can compare raw bytes.
#[derive(Clone)]
enum Repr {
    Inline([u8; INLINE_BYTES]),
    Heap(Vec<u8>),
}

/// An immutable-by-convention, append-friendly sequence of bits.
///
/// `BitString` is the payload type of every message exchanged in the ring
/// simulator. Its [`len`](BitString::len) is the quantity the bit-complexity
/// accounting sums up, so the representation is exact: pushing one bit grows
/// the logical length by exactly one.
///
/// Bits are stored packed, eight to a byte, least-significant-bit first
/// within each byte. Bit `0` is the first bit written and the first bit a
/// [`BitReader`](crate::BitReader) yields. Strings of at most 184 bits
/// (23 bytes) are stored inline on the stack — every O(log n)-bit message
/// in the protocol suite stays allocation-free; longer strings spill to a
/// heap buffer transparently.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::BitString;
/// let mut s = BitString::new();
/// s.push(true);
/// s.push(false);
/// s.push(true);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.get(0), Some(true));
/// assert_eq!(s.get(1), Some(false));
/// assert_eq!(s.to_string(), "101");
/// ```
#[derive(Clone)]
pub struct BitString {
    repr: Repr,
    len: usize,
}

impl Default for BitString {
    fn default() -> Self {
        Self { repr: Repr::Inline([0; INLINE_BYTES]), len: 0 }
    }
}

impl BitString {
    /// Creates an empty bit string (inline: no allocation).
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::new();
    /// assert!(s.is_empty());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit string with capacity for `bits` bits. Requests
    /// within the inline capacity allocate nothing.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        if bits <= INLINE_BITS {
            Self::default()
        } else {
            Self { repr: Repr::Heap(Vec::with_capacity(bits.div_ceil(8))), len: 0 }
        }
    }

    /// Builds a bit string from an iterator of bools, first bit first.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::from_bits([true, true, false]);
    /// assert_eq!(s.to_string(), "110");
    /// ```
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Self::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Parses a bit string from ASCII `'0'`/`'1'` characters.
    ///
    /// Returns `None` if any character is not `0` or `1`.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::parse("0110").unwrap();
    /// assert_eq!(s.len(), 4);
    /// assert!(BitString::parse("01x0").is_none());
    /// ```
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut s = Self::with_capacity(text.len());
        for c in text.chars() {
            match c {
                '0' => s.push(false),
                '1' => s.push(true),
                _ => return None,
            }
        }
        Some(s)
    }

    /// Number of bits in the string. This is the wire cost of a message.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the string contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the bits currently live in the inline (stack) buffer.
    ///
    /// Strings never move back inline once spilled, so this is a pure
    /// function of the construction history, not of `len` alone.
    #[doc(hidden)]
    #[must_use]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// The packed bytes holding the bits: exactly `len.div_ceil(8)` bytes,
    /// least-significant-bit first within each byte, unused high bits of
    /// the last byte zero.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        let nbytes = self.len.div_ceil(8);
        match &self.repr {
            Repr::Inline(buf) => &buf[..nbytes],
            Repr::Heap(v) => &v[..nbytes],
        }
    }

    /// Mutable view of the full backing store (inline buffer or heap
    /// vector contents).
    fn data_mut(&mut self) -> &mut [u8] {
        match &mut self.repr {
            Repr::Inline(buf) => &mut buf[..],
            Repr::Heap(v) => &mut v[..],
        }
    }

    /// Moves the bits to the heap, reserving room for `extra_bits` more.
    fn spill(&mut self, extra_bits: usize) {
        if let Repr::Inline(buf) = self.repr {
            let nbytes = self.len.div_ceil(8);
            let mut v =
                Vec::with_capacity((self.len + extra_bits).div_ceil(8).max(2 * INLINE_BYTES));
            v.extend_from_slice(&buf[..nbytes]);
            self.repr = Repr::Heap(v);
        }
    }

    /// Grows the backing store to hold `nbytes` zeroed bytes (logical
    /// length is unchanged; callers set `len` afterwards).
    fn grow_bytes(&mut self, nbytes: usize) {
        debug_assert!(nbytes >= self.len.div_ceil(8));
        if nbytes > INLINE_BYTES {
            self.spill(nbytes * 8 - self.len);
        }
        match &mut self.repr {
            Repr::Inline(_) => {} // already zeroed to full capacity
            Repr::Heap(v) => v.resize(nbytes, 0),
        }
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        let bit_idx = self.len % 8;
        if bit_idx == 0 {
            match &mut self.repr {
                Repr::Inline(_) if byte_idx < INLINE_BYTES => {} // pre-zeroed
                Repr::Inline(_) => {
                    self.spill(1);
                    if let Repr::Heap(v) = &mut self.repr {
                        v.push(0);
                    }
                }
                Repr::Heap(v) => v.push(0),
            }
        }
        if bit {
            self.data_mut()[byte_idx] |= 1 << bit_idx;
        }
        self.len += 1;
    }

    /// Returns bit `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        let byte = match &self.repr {
            Repr::Inline(buf) => buf[index / 8],
            Repr::Heap(v) => v[index / 8],
        };
        Some((byte >> (index % 8)) & 1 == 1)
    }

    /// Appends all bits of `other` after the bits of `self`.
    ///
    /// Byte-aligned appends (the common case: concatenating whole
    /// messages) are bulk byte copies.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let mut a = BitString::parse("10").unwrap();
    /// let b = BitString::parse("011").unwrap();
    /// a.extend_from(&b);
    /// assert_eq!(a.to_string(), "10011");
    /// ```
    pub fn extend_from(&mut self, other: &BitString) {
        if self.len % 8 == 0 {
            let src = other.as_bytes();
            let start = self.len / 8;
            self.grow_bytes(start + src.len());
            self.data_mut()[start..start + src.len()].copy_from_slice(src);
            self.len += other.len;
        } else {
            for bit in other.iter() {
                self.push(bit);
            }
        }
    }

    /// Returns a new string holding bits `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitString {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of bounds");
        let len = range.len();
        let mut out = BitString::with_capacity(len);
        if len == 0 {
            return out;
        }
        let src = self.as_bytes();
        let first = range.start / 8;
        let shift = range.start % 8;
        let nbytes = len.div_ceil(8);
        out.grow_bytes(nbytes);
        let dst = out.data_mut();
        if shift == 0 {
            dst[..nbytes].copy_from_slice(&src[first..first + nbytes]);
        } else {
            for (i, d) in dst[..nbytes].iter_mut().enumerate() {
                let lo = src[first + i] >> shift;
                let hi = src.get(first + i + 1).map_or(0, |b| b << (8 - shift));
                *d = lo | hi;
            }
        }
        // Zero the copied-in bits past the logical end (repr invariant).
        let rem = len % 8;
        if rem > 0 {
            dst[nbytes - 1] &= (1u8 << rem) - 1;
        }
        out.len = len;
        out
    }

    /// Iterates over the bits, first bit first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { s: self, idx: 0 }
    }

    /// Counts the `true` bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.as_bytes().iter().map(|b| b.count_ones() as usize).sum()
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl PartialEq for BitString {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.as_bytes() == other.as_bytes()
    }
}

impl Eq for BitString {}

impl std::hash::Hash for BitString {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Same recipe the derived (Vec<u8>, usize) impl used, so hashes
        // are value-based and identical across inline/heap storage.
        self.as_bytes().hash(state);
        self.len.hash(state);
    }
}

// Wire-compatible with the historical derived impls for
// `struct BitString { bytes: Vec<u8>, len: usize }`: a map with the byte
// sequence under "bytes" and the bit count under "len". The storage split
// is invisible on the wire.
impl Serialize for BitString {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (
                "bytes".to_string(),
                Content::Seq(self.as_bytes().iter().map(|&b| Content::U64(u64::from(b))).collect()),
            ),
            ("len".to_string(), Content::U64(self.len as u64)),
        ])
    }
}

impl Deserialize for BitString {
    fn from_content(content: &Content) -> Result<Self, SerdeError> {
        let bytes_content = content
            .map_get("bytes")
            .ok_or_else(|| SerdeError::missing_field("BitString", "bytes"))?;
        let bytes: Vec<u8> = Deserialize::from_content(bytes_content)?;
        let len: usize = match content.map_get("len") {
            Some(c) => Deserialize::from_content(c)?,
            None => return Err(SerdeError::missing_field("BitString", "len")),
        };
        if bytes.len() != len.div_ceil(8) {
            return Err(SerdeError::custom(format!(
                "BitString: {} bytes cannot hold exactly {len} bits",
                bytes.len()
            )));
        }
        let mut s = BitString::with_capacity(len);
        s.grow_bytes(bytes.len());
        s.data_mut()[..bytes.len()].copy_from_slice(&bytes);
        s.len = len;
        // Preserve the zero-tail invariant even for hand-written input.
        let rem = len % 8;
        if rem > 0 {
            s.data_mut()[bytes.len() - 1] &= (1u8 << rem) - 1;
        }
        Ok(s)
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitString {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitString`], first bit first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    s: &'a BitString,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.s.get(self.idx)?;
        self.idx += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        let s = BitString::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
        assert_eq!(s.to_string(), "");
        assert_eq!(format!("{s:?}"), "BitString(\"\")");
        assert!(s.is_inline());
    }

    #[test]
    fn push_and_get() {
        let mut s = BitString::new();
        let pattern = [true, false, false, true, true, false, true, false, true, true];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), pattern.len());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.get(i), Some(b), "bit {i}");
        }
        assert_eq!(s.get(pattern.len()), None);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["", "0", "1", "0101", "11110000", "101010101010101"] {
            let s = BitString::parse(text).unwrap();
            assert_eq!(s.to_string(), text);
        }
        assert!(BitString::parse("012").is_none());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitString::parse("101").unwrap();
        let b = BitString::parse("0011").unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "1010011");
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn slice_extracts_subrange() {
        let s = BitString::parse("1100110011").unwrap();
        assert_eq!(s.slice(0..4).to_string(), "1100");
        assert_eq!(s.slice(4..8).to_string(), "1100");
        assert_eq!(s.slice(2..2).to_string(), "");
        assert_eq!(s.slice(0..10).to_string(), "1100110011");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let s = BitString::parse("10").unwrap();
        let _ = s.slice(0..3);
    }

    #[test]
    fn iterator_matches_gets() {
        let s = BitString::parse("100101110").unwrap();
        let collected: Vec<bool> = s.iter().collect();
        assert_eq!(collected.len(), s.len());
        for (i, &b) in collected.iter().enumerate() {
            assert_eq!(Some(b), s.get(i));
        }
        assert_eq!(s.iter().len(), 9);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(BitString::parse("").unwrap().count_ones(), 0);
        assert_eq!(BitString::parse("0000").unwrap().count_ones(), 0);
        assert_eq!(BitString::parse("1111").unwrap().count_ones(), 4);
        assert_eq!(BitString::parse("1010100").unwrap().count_ones(), 3);
    }

    #[test]
    fn from_iterator_and_extend_trait() {
        let s: BitString = [true, false, true].into_iter().collect();
        assert_eq!(s.to_string(), "101");
        let mut t = s.clone();
        t.extend([false, false]);
        assert_eq!(t.to_string(), "10100");
    }

    #[test]
    fn equality_and_hash_are_value_based() {
        use std::collections::HashSet;
        let a = BitString::parse("1010").unwrap();
        let b = BitString::from_bits([true, false, true, false]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn long_strings_cross_byte_boundaries() {
        let text: String = (0..1000).map(|i| if i % 3 == 0 { '1' } else { '0' }).collect();
        let s = BitString::parse(&text).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.to_string(), text);
        assert_eq!(s.count_ones(), 334);
    }

    #[test]
    fn spills_exactly_past_inline_capacity() {
        let mut s = BitString::new();
        for i in 0..INLINE_BITS {
            s.push(i % 2 == 0);
            assert!(s.is_inline(), "bit {i} still fits inline");
        }
        assert_eq!(s.len(), 184);
        s.push(true);
        assert!(!s.is_inline(), "bit 185 forces the spill");
        assert_eq!(s.len(), 185);
        assert_eq!(s.get(184), Some(true));
        for i in 0..INLINE_BITS {
            assert_eq!(s.get(i), Some(i % 2 == 0), "bit {i} preserved across spill");
        }
    }

    #[test]
    fn equality_and_hash_cross_the_repr_boundary() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Same value, different storage: inline via push, heap via
        // with_capacity past the inline limit.
        let bits: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let inline = BitString::from_bits(bits.iter().copied());
        let mut heap = BitString::with_capacity(1000);
        heap.extend(bits.iter().copied());
        assert!(inline.is_inline());
        assert!(!heap.is_inline());
        assert_eq!(inline, heap);
        let digest = |s: &BitString| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(digest(&inline), digest(&heap));
    }

    #[test]
    fn as_bytes_is_lsb_first_packed() {
        let s = BitString::parse("10110001").unwrap();
        assert_eq!(s.as_bytes(), &[0b1000_1101]);
        let s = BitString::parse("111").unwrap();
        assert_eq!(s.as_bytes(), &[0b0000_0111]);
    }

    #[test]
    fn serde_format_is_bytes_plus_len() {
        let s = BitString::parse("10110").unwrap();
        let content = s.to_content();
        let map = content.as_map().unwrap();
        assert_eq!(map[0].0, "bytes");
        assert_eq!(map[1].0, "len");
        assert_eq!(map[0].1.as_seq().unwrap().len(), 1);
        let back = BitString::from_content(&content).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn serde_rejects_inconsistent_len() {
        let content = Content::Map(vec![
            ("bytes".to_string(), Content::Seq(vec![Content::U64(7)])),
            ("len".to_string(), Content::U64(100)),
        ]);
        assert!(BitString::from_content(&content).is_err());
    }
}
