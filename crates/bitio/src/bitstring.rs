//! A compact, ordered sequence of bits — the wire format of every message.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An immutable-by-convention, append-friendly sequence of bits.
///
/// `BitString` is the payload type of every message exchanged in the ring
/// simulator. Its [`len`](BitString::len) is the quantity the bit-complexity
/// accounting sums up, so the representation is exact: pushing one bit grows
/// the logical length by exactly one.
///
/// Bits are stored packed, eight to a byte, least-significant-bit first
/// within each byte. Bit `0` is the first bit written and the first bit a
/// [`BitReader`](crate::BitReader) yields.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::BitString;
/// let mut s = BitString::new();
/// s.push(true);
/// s.push(false);
/// s.push(true);
/// assert_eq!(s.len(), 3);
/// assert_eq!(s.get(0), Some(true));
/// assert_eq!(s.get(1), Some(false));
/// assert_eq!(s.to_string(), "101");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitString {
    bytes: Vec<u8>,
    len: usize,
}

impl BitString {
    /// Creates an empty bit string.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::new();
    /// assert!(s.is_empty());
    /// ```
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit string with capacity for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self { bytes: Vec::with_capacity(bits.div_ceil(8)), len: 0 }
    }

    /// Builds a bit string from an iterator of bools, first bit first.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::from_bits([true, true, false]);
    /// assert_eq!(s.to_string(), "110");
    /// ```
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut s = Self::new();
        for b in bits {
            s.push(b);
        }
        s
    }

    /// Parses a bit string from ASCII `'0'`/`'1'` characters.
    ///
    /// Returns `None` if any character is not `0` or `1`.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let s = BitString::parse("0110").unwrap();
    /// assert_eq!(s.len(), 4);
    /// assert!(BitString::parse("01x0").is_none());
    /// ```
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        let mut s = Self::with_capacity(text.len());
        for c in text.chars() {
            match c {
                '0' => s.push(false),
                '1' => s.push(true),
                _ => return None,
            }
        }
        Some(s)
    }

    /// Number of bits in the string. This is the wire cost of a message.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the string contains no bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let byte_idx = self.len / 8;
        let bit_idx = self.len % 8;
        if bit_idx == 0 {
            self.bytes.push(0);
        }
        if bit {
            self.bytes[byte_idx] |= 1 << bit_idx;
        }
        self.len += 1;
    }

    /// Returns bit `index`, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some((self.bytes[index / 8] >> (index % 8)) & 1 == 1)
    }

    /// Appends all bits of `other` after the bits of `self`.
    ///
    /// # Examples
    ///
    /// ```rust
    /// # use ringleader_bitio::BitString;
    /// let mut a = BitString::parse("10").unwrap();
    /// let b = BitString::parse("011").unwrap();
    /// a.extend_from(&b);
    /// assert_eq!(a.to_string(), "10011");
    /// ```
    pub fn extend_from(&mut self, other: &BitString) {
        for bit in other.iter() {
            self.push(bit);
        }
    }

    /// Returns a new string holding bits `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitString {
        assert!(range.start <= range.end && range.end <= self.len, "slice out of bounds");
        let mut out = BitString::with_capacity(range.len());
        for i in range {
            out.push(self.get(i).expect("index checked above"));
        }
        out
    }

    /// Iterates over the bits, first bit first.
    pub fn iter(&self) -> Iter<'_> {
        Iter { s: self, idx: 0 }
    }

    /// Counts the `true` bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.iter().filter(|&b| b).count()
    }
}

impl fmt::Display for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString(\"{self}\")")
    }
}

impl FromIterator<bool> for BitString {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

impl Extend<bool> for BitString {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a BitString {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitString`], first bit first.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    s: &'a BitString,
    idx: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.s.get(self.idx)?;
        self.idx += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.s.len() - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_string() {
        let s = BitString::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert_eq!(s.get(0), None);
        assert_eq!(s.to_string(), "");
        assert_eq!(format!("{s:?}"), "BitString(\"\")");
    }

    #[test]
    fn push_and_get() {
        let mut s = BitString::new();
        let pattern = [true, false, false, true, true, false, true, false, true, true];
        for &b in &pattern {
            s.push(b);
        }
        assert_eq!(s.len(), pattern.len());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(s.get(i), Some(b), "bit {i}");
        }
        assert_eq!(s.get(pattern.len()), None);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        for text in ["", "0", "1", "0101", "11110000", "101010101010101"] {
            let s = BitString::parse(text).unwrap();
            assert_eq!(s.to_string(), text);
        }
        assert!(BitString::parse("012").is_none());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitString::parse("101").unwrap();
        let b = BitString::parse("0011").unwrap();
        a.extend_from(&b);
        assert_eq!(a.to_string(), "1010011");
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn slice_extracts_subrange() {
        let s = BitString::parse("1100110011").unwrap();
        assert_eq!(s.slice(0..4).to_string(), "1100");
        assert_eq!(s.slice(4..8).to_string(), "1100");
        assert_eq!(s.slice(2..2).to_string(), "");
        assert_eq!(s.slice(0..10).to_string(), "1100110011");
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_past_end_panics() {
        let s = BitString::parse("10").unwrap();
        let _ = s.slice(0..3);
    }

    #[test]
    fn iterator_matches_gets() {
        let s = BitString::parse("100101110").unwrap();
        let collected: Vec<bool> = s.iter().collect();
        assert_eq!(collected.len(), s.len());
        for (i, &b) in collected.iter().enumerate() {
            assert_eq!(Some(b), s.get(i));
        }
        assert_eq!(s.iter().len(), 9);
    }

    #[test]
    fn count_ones_counts() {
        assert_eq!(BitString::parse("").unwrap().count_ones(), 0);
        assert_eq!(BitString::parse("0000").unwrap().count_ones(), 0);
        assert_eq!(BitString::parse("1111").unwrap().count_ones(), 4);
        assert_eq!(BitString::parse("1010100").unwrap().count_ones(), 3);
    }

    #[test]
    fn from_iterator_and_extend_trait() {
        let s: BitString = [true, false, true].into_iter().collect();
        assert_eq!(s.to_string(), "101");
        let mut t = s.clone();
        t.extend([false, false]);
        assert_eq!(t.to_string(), "10100");
    }

    #[test]
    fn equality_and_hash_are_value_based() {
        use std::collections::HashSet;
        let a = BitString::parse("1010").unwrap();
        let b = BitString::from_bits([true, false, true, false]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn long_strings_cross_byte_boundaries() {
        let text: String = (0..1000).map(|i| if i % 3 == 0 { '1' } else { '0' }).collect();
        let s = BitString::parse(&text).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.to_string(), text);
        assert_eq!(s.count_ones(), 334);
    }
}
