//! Decoding errors.

use std::error::Error;
use std::fmt;

/// An error produced while decoding a [`BitString`](crate::BitString).
///
/// All variants indicate a malformed or truncated message; in the paper's
/// model a correct algorithm never produces these, so protocols in this
/// workspace treat a `DecodeError` as a protocol bug and surface it loudly.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The reader ran past the end of the bit string.
    UnexpectedEnd {
        /// Bit position at which the read was attempted.
        at: usize,
        /// Number of additional bits the read needed.
        needed: usize,
    },
    /// A decoded value does not fit the decoder's integer type.
    Overflow {
        /// Bit position at which decoding started.
        at: usize,
        /// Human-readable name of the code being decoded.
        code: &'static str,
    },
    /// A code-specific structural violation (e.g. a gamma code whose
    /// payload claims more than 64 bits).
    Malformed {
        /// Bit position at which decoding started.
        at: usize,
        /// Human-readable name of the code being decoded.
        code: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { at, needed } => {
                write!(f, "unexpected end of bit string at bit {at} (needed {needed} more)")
            }
            DecodeError::Overflow { at, code } => {
                write!(f, "{code} value at bit {at} overflows u64")
            }
            DecodeError::Malformed { at, code } => {
                write!(f, "malformed {code} code at bit {at}")
            }
        }
    }
}

impl Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DecodeError::UnexpectedEnd { at: 7, needed: 3 };
        assert_eq!(e.to_string(), "unexpected end of bit string at bit 7 (needed 3 more)");
        let e = DecodeError::Overflow { at: 0, code: "elias-delta" };
        assert!(e.to_string().contains("elias-delta"));
        let e = DecodeError::Malformed { at: 2, code: "elias-gamma" };
        assert!(e.to_string().contains("malformed"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecodeError>();
    }
}
