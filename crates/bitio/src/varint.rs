//! Bit-granular LEB128-style varint — an alternative self-delimiting code.
//!
//! Elias codes are optimal for the paper's counters, but some protocol
//! sketches are easier to read with a chunked code: `chunk_bits` payload
//! bits per group, one continuation bit each. The cost for `v` is
//! `(⌊log₂(v+1)/c⌋ + 1)·(c + 1)` bits with chunk size `c` — still
//! `Θ(log v)`, so counters written this way stay in the paper's
//! complexity class (the A1 ablation's lesson in reverse).

use crate::{BitReader, BitWriter, DecodeError};

/// Writes `value` as a bit-granular varint with `chunk_bits` payload bits
/// per group (low chunks first), each preceded by a continuation bit.
///
/// # Panics
///
/// Panics if `chunk_bits` is 0 or greater than 32.
pub fn write_varint(w: &mut BitWriter, mut value: u64, chunk_bits: u32) {
    assert!((1..=32).contains(&chunk_bits), "chunk_bits must be 1..=32");
    let mask = (1u64 << chunk_bits) - 1;
    loop {
        let chunk = value & mask;
        value >>= chunk_bits;
        let more = value != 0;
        w.write_bit(more);
        w.write_bits(chunk, chunk_bits);
        if !more {
            break;
        }
    }
}

/// Reads a varint written by [`write_varint`] with the same `chunk_bits`.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] on truncation and
/// [`DecodeError::Overflow`] if the value exceeds 64 bits.
///
/// # Panics
///
/// Panics if `chunk_bits` is 0 or greater than 32.
pub fn read_varint(r: &mut BitReader<'_>, chunk_bits: u32) -> Result<u64, DecodeError> {
    assert!((1..=32).contains(&chunk_bits), "chunk_bits must be 1..=32");
    let at = r.position();
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let more = r.read_bit()?;
        let chunk = r.read_bits(chunk_bits)?;
        if shift >= 64 || (shift > 0 && chunk != 0 && chunk.leading_zeros() < shift) {
            return Err(DecodeError::Overflow { at, code: "varint" });
        }
        value |= chunk << shift;
        if !more {
            return Ok(value);
        }
        shift += chunk_bits;
        if shift >= 64 {
            return Err(DecodeError::Overflow { at, code: "varint" });
        }
    }
}

/// Cost in bits of [`write_varint`] for `value` with `chunk_bits`.
///
/// # Panics
///
/// Panics if `chunk_bits` is 0 or greater than 32.
#[must_use]
pub fn varint_len(value: u64, chunk_bits: u32) -> usize {
    assert!((1..=32).contains(&chunk_bits), "chunk_bits must be 1..=32");
    let mut groups = 1usize;
    let mut v = value >> chunk_bits;
    while v != 0 {
        groups += 1;
        v >>= chunk_bits;
    }
    groups * (chunk_bits as usize + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_across_chunk_sizes() {
        for chunk in [1u32, 3, 4, 7, 8, 16, 32] {
            for v in (0..2000u64).chain([u64::MAX, u64::MAX - 1, 1 << 40]) {
                let mut w = BitWriter::new();
                write_varint(&mut w, v, chunk);
                let s = w.finish();
                assert_eq!(s.len(), varint_len(v, chunk), "len chunk={chunk} v={v}");
                let mut r = BitReader::new(&s);
                assert_eq!(read_varint(&mut r, chunk).unwrap(), v, "chunk={chunk} v={v}");
                assert!(r.is_at_end());
            }
        }
    }

    #[test]
    fn self_delimits_in_sequence() {
        let values = [0u64, 1, 127, 128, 300_000, 7];
        let mut w = BitWriter::new();
        for &v in &values {
            write_varint(&mut w, v, 4);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for &v in &values {
            assert_eq!(read_varint(&mut r, 4).unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn truncation_errors() {
        let mut w = BitWriter::new();
        write_varint(&mut w, 300, 4);
        let s = w.finish();
        let cut = s.slice(0..s.len() - 2);
        let mut r = BitReader::new(&cut);
        assert!(read_varint(&mut r, 4).is_err());
    }

    #[test]
    fn oversized_input_overflows_cleanly() {
        // 12 all-ones continuation groups of 6+1 bits = value way past u64.
        let mut w = BitWriter::new();
        for _ in 0..12 {
            w.write_bit(true);
            w.write_bits(0b111111, 6);
        }
        w.write_bit(false);
        w.write_bits(1, 6);
        let s = w.finish();
        let mut r = BitReader::new(&s);
        let err = read_varint(&mut r, 6).unwrap_err();
        assert!(matches!(err, DecodeError::Overflow { code: "varint", .. }));
    }

    #[test]
    fn cost_is_logarithmic() {
        // Θ(log v): quadrupling the value adds at most two chunks.
        for chunk in [4u32, 8] {
            for shift in 4..50u32 {
                let a = varint_len(1 << shift, chunk);
                let b = varint_len(1 << (shift + 2), chunk);
                assert!(b <= a + 3 * (chunk as usize + 1));
            }
        }
    }

    #[test]
    #[should_panic(expected = "chunk_bits must be 1..=32")]
    fn zero_chunk_panics() {
        let mut w = BitWriter::new();
        write_varint(&mut w, 5, 0);
    }
}
