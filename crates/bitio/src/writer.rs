//! Cursor-style bit encoding.

use crate::BitString;

/// Builds a [`BitString`] field by field.
///
/// The writer offers both raw primitives ([`write_bit`](BitWriter::write_bit),
/// [`write_bits`](BitWriter::write_bits)) and the universal codes from
/// [`codes`](crate::codes) as convenience methods, so protocol code reads
/// like a message grammar.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::BitWriter;
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_unary(3);
/// w.write_elias_gamma(9);
/// let s = w.finish();
/// assert_eq!(s.to_string(), "1" /* bit */.to_owned() + "0001" /* unary 3 */ + "0001001" /* gamma 9 */);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: BitString,
}

impl BitWriter {
    /// Creates a writer with an empty output.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Returns `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) -> &mut Self {
        self.out.push(bit);
        self
    }

    /// Appends the low `width` bits of `value`, most-significant first.
    ///
    /// A `width` of 0 writes nothing (useful for `⌈log 1⌉ = 0`-bit state
    /// fields of single-state automata).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits.
    pub fn write_bits(&mut self, value: u64, width: u32) -> &mut Self {
        assert!(width <= 64, "width {width} exceeds 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.out.push((value >> i) & 1 == 1);
        }
        self
    }

    /// Appends `value` in unary: `value` zeros followed by a one.
    ///
    /// Costs `value + 1` bits. See [`codes::unary_len`](crate::codes::unary_len).
    pub fn write_unary(&mut self, value: u64) -> &mut Self {
        crate::codes::write_unary(self, value);
        self
    }

    /// Appends `value >= 1` in Elias gamma code.
    ///
    /// Costs `2⌊log₂ value⌋ + 1` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (gamma codes start at 1).
    pub fn write_elias_gamma(&mut self, value: u64) -> &mut Self {
        crate::codes::write_elias_gamma(self, value);
        self
    }

    /// Appends `value >= 1` in Elias delta code.
    ///
    /// Costs `⌊log₂ value⌋ + 2⌊log₂(⌊log₂ value⌋+1)⌋ + 1` bits — the
    /// asymptotically tight `log n + O(log log n)` code used by the
    /// counting protocols.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0` (delta codes start at 1).
    pub fn write_elias_delta(&mut self, value: u64) -> &mut Self {
        crate::codes::write_elias_delta(self, value);
        self
    }

    /// Appends every bit of `bits`.
    pub fn write_bitstring(&mut self, bits: &BitString) -> &mut Self {
        self.out.extend_from(bits);
        self
    }

    /// Consumes the writer and returns the accumulated bit string.
    #[must_use]
    pub fn finish(self) -> BitString {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_bits_is_msb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        assert_eq!(w.finish().to_string(), "1011");
    }

    #[test]
    fn zero_width_writes_nothing() {
        let mut w = BitWriter::new();
        w.write_bits(0, 0);
        assert!(w.is_empty());
        assert_eq!(w.finish().len(), 0);
    }

    #[test]
    fn full_width_64() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let s = w.finish();
        assert_eq!(s.len(), 64);
        assert_eq!(s.count_ones(), 64);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn value_too_wide_panics() {
        let mut w = BitWriter::new();
        w.write_bits(4, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds 64")]
    fn width_over_64_panics() {
        let mut w = BitWriter::new();
        w.write_bits(0, 65);
    }

    #[test]
    fn chained_fields_concatenate() {
        let mut w = BitWriter::new();
        w.write_bit(true).write_bits(0b01, 2).write_unary(2);
        assert_eq!(w.finish().to_string(), "101001");
    }

    #[test]
    fn write_bitstring_appends() {
        let mut w = BitWriter::new();
        w.write_bit(false);
        w.write_bitstring(&BitString::parse("111").unwrap());
        assert_eq!(w.finish().to_string(), "0111");
    }

    #[test]
    fn len_tracks_writes() {
        let mut w = BitWriter::new();
        assert_eq!(w.len(), 0);
        w.write_bit(true);
        assert_eq!(w.len(), 1);
        w.write_bits(0, 7);
        assert_eq!(w.len(), 8);
        w.write_elias_gamma(1);
        assert_eq!(w.len(), 9); // gamma(1) = "1"
    }
}
