//! Bit-exact message encodings for distributed bit-complexity experiments.
//!
//! The cost measure of Mansour & Zaks (PODC 1986) is the **bit complexity**
//! `BIT_A(n)`: the total number of message *bits* an algorithm sends on a
//! ring of `n` processors. Reproducing the paper's results therefore
//! requires messages that are genuine bit strings, where a counter holding
//! the value `i` really costs `Θ(log i)` bits on the wire — not a `u64`
//! struct field that always costs 64.
//!
//! This crate provides:
//!
//! * [`BitString`] — a compact, append-only sequence of bits; the wire
//!   format of every message in the simulator.
//! * [`BitWriter`] / [`BitReader`] — cursor-style encoding and decoding.
//! * [`codes`] — self-delimiting universal integer codes (unary,
//!   Elias gamma, Elias delta) and fixed-width fields. Self-delimiting
//!   codes are what make multi-field messages honest: a decoder can always
//!   tell where one field ends and the next begins without out-of-band
//!   length information.
//! * [`varint`] — a chunked LEB128-style alternative, also `Θ(log v)`.
//!
//! # Examples
//!
//! Encode a small protocol message (a 2-bit phase tag followed by an
//! Elias-delta counter) and decode it back:
//!
//! ```rust
//! # use ringleader_bitio::{BitWriter, BitReader, DecodeError};
//! # fn main() -> Result<(), DecodeError> {
//! let mut w = BitWriter::new();
//! w.write_bits(0b10, 2); // phase tag
//! w.write_elias_delta(1234); // counter
//! let msg = w.finish();
//! assert_eq!(msg.len(), 2 + 17); // delta(1234) takes 17 bits
//!
//! let mut r = BitReader::new(&msg);
//! assert_eq!(r.read_bits(2)?, 0b10);
//! assert_eq!(r.read_elias_delta()?, 1234);
//! assert!(r.is_at_end());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitstring;
pub mod codes;
mod error;
mod reader;
pub mod varint;
mod writer;

pub use bitstring::BitString;
pub use error::DecodeError;
pub use reader::BitReader;
pub use writer::BitWriter;

/// Number of bits needed to store any value in `0..count` with a
/// fixed-width code, i.e. `ceil(log2(count))` (and 0 when `count <= 1`).
///
/// This is the `⌈log |Q|⌉` of the paper's Theorem 1: forwarding one of
/// `|Q|` automaton states costs `bits_for(|Q|)` bits per message.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::bits_for;
/// assert_eq!(bits_for(1), 0);
/// assert_eq!(bits_for(2), 1);
/// assert_eq!(bits_for(5), 3);
/// assert_eq!(bits_for(256), 8);
/// ```
#[must_use]
pub fn bits_for(count: usize) -> u32 {
    if count <= 1 {
        0
    } else {
        usize::BITS - (count - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(8), 3);
        assert_eq!(bits_for(9), 4);
    }

    #[test]
    fn bits_for_powers_of_two() {
        for k in 1..40u32 {
            let n = 1usize << k;
            assert_eq!(bits_for(n), k, "2^{k}");
            assert_eq!(bits_for(n + 1), k + 1, "2^{k}+1");
        }
    }

    #[test]
    fn bits_for_covers_all_values() {
        // Every value in 0..count must fit in bits_for(count) bits.
        for count in 2..200usize {
            let width = bits_for(count) as u64;
            let max = 1u64.checked_shl(width as u32).unwrap();
            assert!((count as u64 - 1) < max, "count={count} width={width}");
        }
    }
}
