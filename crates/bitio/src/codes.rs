//! Self-delimiting universal integer codes.
//!
//! The counter-based protocols of the paper (ring-size counting, the
//! three-counter `0ⁿ1ⁿ2ⁿ` recognizer, the `L_g` hierarchy recognizer) need
//! an encoding whose cost for the value `i` is `Θ(log i)` *and* that can be
//! concatenated with other fields without separators. Elias codes provide
//! exactly this; unary is used for tiny fields and as the length prefix
//! inside gamma.
//!
//! | code | cost for `v` | range |
//! |------|--------------|-------|
//! | unary | `v + 1` | `v ≥ 0` |
//! | Elias gamma | `2⌊log₂ v⌋ + 1` | `v ≥ 1` |
//! | Elias delta | `⌊log₂ v⌋ + O(log log v)` | `v ≥ 1` |
//!
//! All functions here are also exposed as methods on
//! [`BitWriter`] and [`BitReader`].

use crate::{BitReader, BitWriter, DecodeError};

/// Cost in bits of the unary code for `value`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::codes::unary_len;
/// assert_eq!(unary_len(0), 1);
/// assert_eq!(unary_len(4), 5);
/// ```
#[must_use]
pub fn unary_len(value: u64) -> usize {
    value as usize + 1
}

/// Cost in bits of the Elias gamma code for `value >= 1`.
///
/// # Panics
///
/// Panics if `value == 0`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::codes::elias_gamma_len;
/// assert_eq!(elias_gamma_len(1), 1);
/// assert_eq!(elias_gamma_len(2), 3);
/// assert_eq!(elias_gamma_len(9), 7);
/// ```
#[must_use]
pub fn elias_gamma_len(value: u64) -> usize {
    assert!(value >= 1, "gamma codes start at 1");
    let n = 63 - value.leading_zeros() as usize; // floor(log2 value)
    2 * n + 1
}

/// Cost in bits of the Elias delta code for `value >= 1`.
///
/// # Panics
///
/// Panics if `value == 0`.
///
/// # Examples
///
/// ```rust
/// # use ringleader_bitio::codes::elias_delta_len;
/// assert_eq!(elias_delta_len(1), 1);
/// assert_eq!(elias_delta_len(2), 4);
/// assert_eq!(elias_delta_len(17), 9);
/// ```
#[must_use]
pub fn elias_delta_len(value: u64) -> usize {
    assert!(value >= 1, "delta codes start at 1");
    let n = 63 - value.leading_zeros() as usize; // floor(log2 value)
    elias_gamma_len(n as u64 + 1) + n
}

/// Writes `value` in unary: `value` zeros then a one.
pub fn write_unary(w: &mut BitWriter, value: u64) {
    for _ in 0..value {
        w.write_bit(false);
    }
    w.write_bit(true);
}

/// Reads a unary-coded value.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] if the terminating one never
/// arrives.
pub fn read_unary(r: &mut BitReader<'_>) -> Result<u64, DecodeError> {
    let mut count = 0u64;
    loop {
        if r.read_bit()? {
            return Ok(count);
        }
        count += 1;
    }
}

/// Writes `value >= 1` in Elias gamma code: the unary length of the binary
/// representation, then its bits below the leading one.
///
/// # Panics
///
/// Panics if `value == 0`.
pub fn write_elias_gamma(w: &mut BitWriter, value: u64) {
    assert!(value >= 1, "gamma codes start at 1");
    let n = 63 - value.leading_zeros(); // floor(log2 value)
    write_unary(w, u64::from(n));
    if n > 0 {
        w.write_bits(value & ((1u64 << n) - 1), n);
    }
}

/// Reads an Elias-gamma-coded value.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] on truncation and
/// [`DecodeError::Malformed`] if the unary prefix claims 64 or more payload
/// bits (which a writer can never produce for `u64`).
pub fn read_elias_gamma(r: &mut BitReader<'_>) -> Result<u64, DecodeError> {
    let at = r.position();
    let n = read_unary(r)?;
    if n >= 64 {
        return Err(DecodeError::Malformed { at, code: "elias-gamma" });
    }
    let low = r.read_bits(n as u32)?;
    Ok((1u64 << n) | low)
}

/// Writes `value >= 1` in Elias delta code: gamma-code the bit length, then
/// the bits below the leading one.
///
/// # Panics
///
/// Panics if `value == 0`.
pub fn write_elias_delta(w: &mut BitWriter, value: u64) {
    assert!(value >= 1, "delta codes start at 1");
    let n = 63 - value.leading_zeros(); // floor(log2 value)
    write_elias_gamma(w, u64::from(n) + 1);
    if n > 0 {
        w.write_bits(value & ((1u64 << n) - 1), n);
    }
}

/// Reads an Elias-delta-coded value.
///
/// # Errors
///
/// Returns [`DecodeError::UnexpectedEnd`] on truncation and
/// [`DecodeError::Malformed`] if the decoded length exceeds 64 bits.
pub fn read_elias_delta(r: &mut BitReader<'_>) -> Result<u64, DecodeError> {
    let at = r.position();
    let n_plus_1 = read_elias_gamma(r)?;
    let n = n_plus_1 - 1;
    if n >= 64 {
        return Err(DecodeError::Malformed { at, code: "elias-delta" });
    }
    let low = r.read_bits(n as u32)?;
    Ok((1u64 << n) | low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitString;

    fn gamma(v: u64) -> BitString {
        let mut w = BitWriter::new();
        write_elias_gamma(&mut w, v);
        w.finish()
    }

    fn delta(v: u64) -> BitString {
        let mut w = BitWriter::new();
        write_elias_delta(&mut w, v);
        w.finish()
    }

    #[test]
    fn gamma_known_codewords() {
        // Classic table: 1→1, 2→010, 3→011, 4→00100, ...
        assert_eq!(gamma(1).to_string(), "1");
        assert_eq!(gamma(2).to_string(), "010");
        assert_eq!(gamma(3).to_string(), "011");
        assert_eq!(gamma(4).to_string(), "00100");
        assert_eq!(gamma(9).to_string(), "0001001");
    }

    #[test]
    fn delta_known_codewords() {
        // Classic table: 1→1, 2→0100, 3→0101, 4→01100, 9→00100001, 17→001010001.
        assert_eq!(delta(1).to_string(), "1");
        assert_eq!(delta(2).to_string(), "0100");
        assert_eq!(delta(3).to_string(), "0101");
        assert_eq!(delta(4).to_string(), "01100");
        assert_eq!(delta(9).to_string(), "00100001");
        assert_eq!(delta(17).to_string(), "001010001");
    }

    #[test]
    fn lens_match_actual_encodings() {
        for v in 1..2000u64 {
            assert_eq!(gamma(v).len(), elias_gamma_len(v), "gamma {v}");
            assert_eq!(delta(v).len(), elias_delta_len(v), "delta {v}");
        }
        for v in [u64::MAX, u64::MAX / 2, 1 << 40, (1 << 40) + 17] {
            assert_eq!(gamma(v).len(), elias_gamma_len(v), "gamma {v}");
            assert_eq!(delta(v).len(), elias_delta_len(v), "delta {v}");
        }
    }

    #[test]
    fn unary_roundtrip() {
        for v in 0..200u64 {
            let mut w = BitWriter::new();
            write_unary(&mut w, v);
            let s = w.finish();
            assert_eq!(s.len(), unary_len(v));
            let mut r = BitReader::new(&s);
            assert_eq!(read_unary(&mut r).unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn gamma_roundtrip_exhaustive_small() {
        for v in 1..5000u64 {
            let s = gamma(v);
            let mut r = BitReader::new(&s);
            assert_eq!(read_elias_gamma(&mut r).unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn delta_roundtrip_exhaustive_small() {
        for v in 1..5000u64 {
            let s = delta(v);
            let mut r = BitReader::new(&s);
            assert_eq!(read_elias_delta(&mut r).unwrap(), v);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn extreme_values_roundtrip() {
        for v in [1u64, u64::MAX, u64::MAX - 1, 1 << 63, (1 << 63) - 1] {
            let s = gamma(v);
            let mut r = BitReader::new(&s);
            assert_eq!(read_elias_gamma(&mut r).unwrap(), v, "gamma {v}");
            let s = delta(v);
            let mut r = BitReader::new(&s);
            assert_eq!(read_elias_delta(&mut r).unwrap(), v, "delta {v}");
        }
    }

    #[test]
    fn truncated_codes_error() {
        let s = BitString::parse("000").unwrap(); // unary never terminates
        assert!(read_unary(&mut BitReader::new(&s)).is_err());
        let s = BitString::parse("0001").unwrap(); // gamma: prefix says 3 payload bits, none present
        assert!(read_elias_gamma(&mut BitReader::new(&s)).is_err());
        let s = BitString::parse("01100").unwrap(); // delta(4) minus nothing is fine...
        assert_eq!(read_elias_delta(&mut BitReader::new(&s)).unwrap(), 4);
        let s = BitString::parse("0110").unwrap(); // ...but truncated payload errors
        assert!(read_elias_delta(&mut BitReader::new(&s)).is_err());
    }

    #[test]
    fn malformed_gamma_prefix_rejected() {
        // 64 zeros then a one: claims a 64-bit payload — impossible from our writer.
        let mut text = "0".repeat(64);
        text.push('1');
        text.push_str(&"0".repeat(64));
        let s = BitString::parse(&text).unwrap();
        let err = read_elias_gamma(&mut BitReader::new(&s)).unwrap_err();
        assert_eq!(err, DecodeError::Malformed { at: 0, code: "elias-gamma" });
    }

    #[test]
    #[should_panic(expected = "gamma codes start at 1")]
    fn gamma_zero_panics() {
        let mut w = BitWriter::new();
        write_elias_gamma(&mut w, 0);
    }

    #[test]
    #[should_panic(expected = "delta codes start at 1")]
    fn delta_zero_panics() {
        let mut w = BitWriter::new();
        write_elias_delta(&mut w, 0);
    }

    #[test]
    fn concatenated_codes_self_delimit() {
        // Pack many values back to back with no separators; decode must
        // recover all of them — this is the property the protocols rely on.
        let values: Vec<u64> = (1..100).chain([1000, 65535, 1 << 33]).collect();
        let mut w = BitWriter::new();
        for &v in &values {
            write_elias_delta(&mut w, v);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for &v in &values {
            assert_eq!(read_elias_delta(&mut r).unwrap(), v);
        }
        assert!(r.is_at_end());
    }

    #[test]
    fn delta_beats_gamma_asymptotically() {
        // delta is shorter than gamma for large values (log n + o(log n)
        // vs 2 log n) — this gap is why the counting protocols use delta.
        for shift in 10..60 {
            let v = 1u64 << shift;
            assert!(elias_delta_len(v) < elias_gamma_len(v), "v = 2^{shift}");
        }
    }
}
