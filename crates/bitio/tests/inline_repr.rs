//! Inline-representation coverage: `BitString` stores payloads of at most
//! 23 bytes (184 bits) on the stack and spills longer ones to the heap.
//! The split must be *invisible* — every public operation, the on-wire
//! serde format, and the reader/writer pipeline behave identically on
//! both sides of the boundary and across the spill itself.
//!
//! Strategies deliberately concentrate lengths around the 184-bit
//! boundary, the region ordinary length-uniform generation rarely hits.

use proptest::prelude::*;
use ringleader_bitio::{BitReader, BitString, BitWriter};

/// The inline capacity in bits; must match `bitstring::INLINE_BITS`.
/// (Asserted against observed spill behavior in `spill_length_is_exact`,
/// so a drift in the crate constant fails loudly here.)
const INLINE_BITS: usize = 184;

/// Bit-vector lengths clustered on the inline↔heap boundary.
fn boundary_bits() -> impl Strategy<Value = Vec<bool>> {
    (INLINE_BITS.saturating_sub(24)..INLINE_BITS + 24)
        .prop_flat_map(|len| proptest::collection::vec(any::<bool>(), len..=len))
}

/// Reference JSON for the historical `{bytes: Vec<u8>, len: usize}`
/// struct — the wire format both representations must produce.
fn reference_json(s: &BitString) -> String {
    let bytes: Vec<String> = s.as_bytes().iter().map(u8::to_string).collect();
    format!("{{\"bytes\":[{}],\"len\":{}}}", bytes.join(","), s.len())
}

proptest! {
    #[test]
    fn spill_length_is_exact(extra in 0usize..40) {
        // Exactly INLINE_BITS bits fit inline; bit INLINE_BITS + 1 spills.
        let mut s = BitString::new();
        for i in 0..INLINE_BITS + extra {
            s.push(i % 5 == 0);
            prop_assert_eq!(
                s.is_inline(),
                s.len() <= INLINE_BITS,
                "wrong storage at len {}", s.len()
            );
        }
        // Contents survive the spill bit for bit.
        for i in 0..s.len() {
            prop_assert_eq!(s.get(i), Some(i % 5 == 0));
        }
    }

    #[test]
    fn push_get_parse_display_across_boundary(bits in boundary_bits()) {
        let s = BitString::from_bits(bits.iter().copied());
        prop_assert_eq!(s.len(), bits.len());
        prop_assert_eq!(s.is_inline(), bits.len() <= INLINE_BITS);
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(s.get(i), Some(b));
        }
        prop_assert_eq!(s.get(bits.len()), None);
        let text = s.to_string();
        prop_assert_eq!(text.len(), bits.len());
        let parsed = BitString::parse(&text).expect("display output parses");
        prop_assert_eq!(&parsed, &s);
    }

    #[test]
    fn equality_and_count_ones_ignore_storage(bits in boundary_bits()) {
        // Same value built two ways: bit pushes (inline until spill) and
        // a pre-spilled heap string via an oversized capacity request.
        let pushed = BitString::from_bits(bits.iter().copied());
        let mut heaped = BitString::with_capacity(INLINE_BITS * 4);
        heaped.extend(bits.iter().copied());
        prop_assert!(!heaped.is_inline());
        prop_assert_eq!(&pushed, &heaped);
        let expected_ones = bits.iter().filter(|&&b| b).count();
        prop_assert_eq!(pushed.count_ones(), expected_ones);
        prop_assert_eq!(heaped.count_ones(), expected_ones);
    }

    #[test]
    fn serde_wire_format_is_storage_independent(bits in boundary_bits()) {
        let pushed = BitString::from_bits(bits.iter().copied());
        let mut heaped = BitString::with_capacity(INLINE_BITS * 4);
        heaped.extend(bits.iter().copied());
        let expected = reference_json(&pushed);
        prop_assert_eq!(
            serde_json::to_string(&pushed).expect("serializes"),
            expected.clone()
        );
        prop_assert_eq!(
            serde_json::to_string(&heaped).expect("serializes"),
            expected.clone()
        );
        let back: BitString = serde_json::from_str(&expected).expect("deserializes");
        prop_assert_eq!(&back, &pushed);
    }

    #[test]
    fn slice_matches_bitwise_reference(
        bits in proptest::collection::vec(any::<bool>(), 0..420),
        start in 0usize..420,
        len in 0usize..420,
    ) {
        // Exercises the byte-shifted fast path against first principles,
        // with sources and outputs on both sides of the inline boundary.
        let s = BitString::from_bits(bits.iter().copied());
        let start = start % (s.len() + 1);
        let end = (start + len).min(s.len());
        let sliced = s.slice(start..end);
        prop_assert_eq!(sliced.len(), end - start);
        for i in 0..sliced.len() {
            prop_assert_eq!(sliced.get(i), Some(bits[start + i]), "slice bit {}", i);
        }
    }

    #[test]
    fn extend_from_matches_push_loop(
        head in proptest::collection::vec(any::<bool>(), 0..250),
        tail in proptest::collection::vec(any::<bool>(), 0..250),
    ) {
        // Byte-aligned and unaligned appends, inline and spilled, must
        // agree with the bit-at-a-time reference.
        let mut fast = BitString::from_bits(head.iter().copied());
        fast.extend_from(&BitString::from_bits(tail.iter().copied()));
        let reference =
            BitString::from_bits(head.iter().chain(tail.iter()).copied());
        prop_assert_eq!(&fast, &reference);
        prop_assert_eq!(fast.len(), head.len() + tail.len());
    }

    #[test]
    fn writer_reader_roundtrip_across_spill(
        prefix_bits in 150usize..200,
        values in proptest::collection::vec(1u64..1_000_000, 1..8),
    ) {
        // Position the write head near the boundary, then keep encoding:
        // the writer's internal BitString spills mid-message and every
        // field must still read back exactly.
        let mut w = BitWriter::new();
        for i in 0..prefix_bits {
            w.write_bit(i % 2 == 1);
        }
        for &v in &values {
            w.write_elias_delta(v);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for i in 0..prefix_bits {
            prop_assert_eq!(r.read_bit().unwrap(), i % 2 == 1);
        }
        for &v in &values {
            prop_assert_eq!(r.read_elias_delta().unwrap(), v);
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn read_bitstring_crossing_the_boundary(
        bits in proptest::collection::vec(any::<bool>(), 200..400),
        cut in 1usize..199,
    ) {
        // Splitting a heap string yields (possibly) inline pieces whose
        // concatenation is the original.
        let s = BitString::from_bits(bits.iter().copied());
        let mut r = BitReader::new(&s);
        let first = r.read_bitstring(cut).unwrap();
        let rest = r.read_rest();
        prop_assert_eq!(first.len() + rest.len(), s.len());
        let mut rebuilt = first;
        rebuilt.extend_from(&rest);
        prop_assert_eq!(rebuilt, s);
    }
}
