//! Property-based tests for the bit encoding substrate.
//!
//! These pin down the invariants every protocol in the workspace relies on:
//! lossless roundtrips, exact advertised lengths, and self-delimiting
//! concatenation.

use proptest::prelude::*;
use ringleader_bitio::{bits_for, codes, varint, BitReader, BitString, BitWriter};

proptest! {
    #[test]
    fn bitstring_display_parse_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let s = BitString::from_bits(bits.iter().copied());
        let text = s.to_string();
        let parsed = BitString::parse(&text).expect("display output always parses");
        prop_assert_eq!(&parsed, &s);
        prop_assert_eq!(parsed.len(), bits.len());
    }

    #[test]
    fn bitstring_get_matches_source(bits in proptest::collection::vec(any::<bool>(), 0..512)) {
        let s = BitString::from_bits(bits.iter().copied());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(s.get(i), Some(b));
        }
        prop_assert_eq!(s.get(bits.len()), None);
    }

    #[test]
    fn slice_then_concat_is_identity(
        bits in proptest::collection::vec(any::<bool>(), 1..256),
        cut in 0usize..256,
    ) {
        let s = BitString::from_bits(bits.iter().copied());
        let cut = cut % (s.len() + 1);
        let mut rebuilt = s.slice(0..cut);
        rebuilt.extend_from(&s.slice(cut..s.len()));
        prop_assert_eq!(rebuilt, s);
    }

    #[test]
    fn fixed_width_roundtrip(value: u64, width in 0u32..=64) {
        let value = if width == 64 { value } else { value & ((1u64 << width) - 1) };
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        let s = w.finish();
        prop_assert_eq!(s.len(), width as usize);
        let mut r = BitReader::new(&s);
        prop_assert_eq!(r.read_bits(width).unwrap(), value);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn unary_roundtrip_and_len(v in 0u64..4096) {
        let mut w = BitWriter::new();
        w.write_unary(v);
        let s = w.finish();
        prop_assert_eq!(s.len(), codes::unary_len(v));
        let mut r = BitReader::new(&s);
        prop_assert_eq!(r.read_unary().unwrap(), v);
    }

    #[test]
    fn gamma_roundtrip_and_len(v in 1u64..u64::MAX) {
        let mut w = BitWriter::new();
        w.write_elias_gamma(v);
        let s = w.finish();
        prop_assert_eq!(s.len(), codes::elias_gamma_len(v));
        let mut r = BitReader::new(&s);
        prop_assert_eq!(r.read_elias_gamma().unwrap(), v);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn delta_roundtrip_and_len(v in 1u64..u64::MAX) {
        let mut w = BitWriter::new();
        w.write_elias_delta(v);
        let s = w.finish();
        prop_assert_eq!(s.len(), codes::elias_delta_len(v));
        let mut r = BitReader::new(&s);
        prop_assert_eq!(r.read_elias_delta().unwrap(), v);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn mixed_field_sequences_self_delimit(
        fields in proptest::collection::vec(
            prop_oneof![
                (1u64..1_000_000).prop_map(|v| ("gamma", v)),
                (1u64..1_000_000).prop_map(|v| ("delta", v)),
                (0u64..64).prop_map(|v| ("unary", v)),
                (0u64..256).prop_map(|v| ("fixed8", v)),
            ],
            0..40,
        )
    ) {
        let mut w = BitWriter::new();
        for (kind, v) in &fields {
            match *kind {
                "gamma" => { w.write_elias_gamma(*v); }
                "delta" => { w.write_elias_delta(*v); }
                "unary" => { w.write_unary(*v); }
                _ => { w.write_bits(*v, 8); }
            }
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for (kind, v) in &fields {
            let got = match *kind {
                "gamma" => r.read_elias_gamma().unwrap(),
                "delta" => r.read_elias_delta().unwrap(),
                "unary" => r.read_unary().unwrap(),
                _ => r.read_bits(8).unwrap(),
            };
            prop_assert_eq!(got, *v);
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn bits_for_is_minimal(count in 2usize..1_000_000) {
        let width = bits_for(count);
        // Wide enough for every value in 0..count...
        prop_assert!(((count - 1) as u128) < (1u128 << width));
        // ...and one bit narrower is not.
        prop_assert!(((count - 1) as u128) >= (1u128 << (width - 1)));
    }

    #[test]
    fn varint_roundtrip_and_len(v: u64, chunk_bits in 1u32..=32) {
        let mut w = BitWriter::new();
        varint::write_varint(&mut w, v, chunk_bits);
        let s = w.finish();
        prop_assert_eq!(s.len(), varint::varint_len(v, chunk_bits));
        let mut r = BitReader::new(&s);
        prop_assert_eq!(varint::read_varint(&mut r, chunk_bits).unwrap(), v);
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn varint_sequences_self_delimit(
        values in proptest::collection::vec(0u64..1_000_000_000, 0..24),
        chunk_bits in 1u32..=16,
    ) {
        let mut w = BitWriter::new();
        for &v in &values {
            varint::write_varint(&mut w, v, chunk_bits);
        }
        let s = w.finish();
        let mut r = BitReader::new(&s);
        for &v in &values {
            prop_assert_eq!(varint::read_varint(&mut r, chunk_bits).unwrap(), v);
        }
        prop_assert!(r.is_at_end());
    }

    #[test]
    fn varint_decoding_noise_never_panics(
        bits in proptest::collection::vec(any::<bool>(), 0..128),
        chunk_bits in 1u32..=8,
    ) {
        let s = BitString::from_bits(bits);
        let _ = varint::read_varint(&mut BitReader::new(&s), chunk_bits);
    }

    #[test]
    fn decoding_random_noise_never_panics(bits in proptest::collection::vec(any::<bool>(), 0..256)) {
        // Robustness: arbitrary bit strings must decode to Ok or Err, never panic.
        let s = BitString::from_bits(bits);
        let _ = BitReader::new(&s).read_unary();
        let _ = BitReader::new(&s).read_elias_gamma();
        let _ = BitReader::new(&s).read_elias_delta();
        let _ = BitReader::new(&s).read_bits(17);
    }
}
