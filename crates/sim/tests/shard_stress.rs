//! Soak tier for the sharded engine: shard-count extremes, injected
//! worker panics, and the million-process completion run.
//!
//! Everything here is `#[ignore]`d out of the default suite and owned by
//! the nightly soak workflow (`.github/workflows/soak.yml`): the tests
//! spawn 64 worker threads, deliberately panic inside process handlers,
//! or run rings six orders of magnitude above the unit tests. The
//! fast-path equivalence matrix lives in `shard_equiv.rs`.

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitString, BitWriter};
use ringleader_sim::{
    Context, Direction, Process, ProcessResult, Protocol, RingRunner, Scheduler, SimError, Topology,
};

fn word(n: usize) -> Word {
    Word::from_str(&"01".repeat(n)[..n], &Alphabet::binary()).expect("binary word")
}

/// One 1-bit token around the ring; the leader decides when it returns.
/// Exactly `n` deliveries and `n` total bits — the cheapest protocol
/// whose completion proves every link and every shard handed off.
struct TokenRing;

struct RingLeader;
impl Process for RingLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, BitString::parse("1").expect("literal"));
        Ok(())
    }
    fn on_message(&mut self, _d: Direction, _m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.decide(true);
        Ok(())
    }
}

struct RingForwarder;
impl Process for RingForwarder {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for TokenRing {
    fn name(&self) -> &'static str {
        "token-ring"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RingLeader)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RingForwarder)
    }
}

/// Like [`TokenRing`], but the follower at global position `at` panics
/// when the token reaches it. Positions are recovered from the payload:
/// the 8-bit token grows one bit per hop, so position `p` receives an
/// `(8 + p - 1)`-bit message.
struct PanicAt {
    at: usize,
}

impl Protocol for PanicAt {
    fn name(&self) -> &'static str {
        "panic-at"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                let mut w = BitWriter::new();
                w.write_bits(0xA5, 8);
                ctx.send(Direction::Clockwise, w.finish());
                Ok(())
            }
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(true);
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F {
            trip_len: usize,
        }
        impl Process for F {
            fn on_message(
                &mut self,
                d: Direction,
                m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                assert!(m.len() != self.trip_len, "injected shard fault");
                let mut grown = m.clone();
                grown.push(true);
                ctx.send(d, grown);
                Ok(())
            }
        }
        Box::new(F { trip_len: 8 + self.at - 1 })
    }
}

#[test]
#[ignore = "soak: spawns 64 shard workers and injects a mid-run panic; nightly soak runs with --include-ignored"]
fn soak_shard_panic_shuts_down_cleanly_at_64_shards() {
    // n = 256 over 64 shards: 4-process arcs, position 130 owned by
    // shard 32 (bounds are k*256/64). The panicking worker's channels
    // drop; its neighbours and the coordinator observe the disconnect
    // and unwind without hanging or leaking the remaining 63 workers.
    let n = 256;
    let mut runner = RingRunner::new();
    runner.shards(64);
    let err = runner.run(&PanicAt { at: 130 }, &word(n)).expect_err("worker panics");
    assert_eq!(err, SimError::ShardFailed { shard: 32 });

    // The failure is per-run state: a fresh run on the same shard count
    // completes with every event accounted for.
    let mut runner = RingRunner::new();
    runner.shards(64);
    let outcome = runner.run(&TokenRing, &word(n)).expect("healthy run completes");
    assert_eq!(outcome.decision, Some(true));
    assert_eq!(outcome.stats.deliveries, n);
    assert_eq!(outcome.stats.total_bits, n);
}

#[test]
#[ignore = "soak: 64-shard traced equivalence at n = 4096; nightly soak runs with --include-ignored"]
fn soak_no_event_loss_at_64_shards_on_a_large_ring() {
    // Full-trace oracle comparison at a shard count far above the unit
    // matrix: every delivery and send of the 64-shard run must appear,
    // in order, with the serial engine's sequence numbers.
    let n = 4096;
    let run = |shards: usize| {
        let mut runner = RingRunner::new();
        runner.scheduler(Scheduler::Fifo).record_trace(true).shards(shards);
        runner.run(&TokenRing, &word(n)).expect("token ring completes")
    };
    let serial = run(1);
    let sharded = run(64);
    assert_eq!(serial.decision, sharded.decision);
    assert_eq!(serial.stats, sharded.stats);
    let serial_trace = serial.trace.expect("serial trace recorded");
    let sharded_trace = sharded.trace.expect("sharded trace recorded");
    assert_eq!(serial_trace.events().len(), sharded_trace.events().len(), "events lost");
    for (i, (a, b)) in serial_trace.events().iter().zip(sharded_trace.events()).enumerate() {
        assert_eq!(a, b, "trace event {i} diverged");
    }
}

#[test]
#[ignore = "soak: single linear-tier run at n = 1_000_000; nightly soak runs with --include-ignored"]
fn soak_million_process_ring_completes() {
    // Debug builds pay ~an order of magnitude per event; the release
    // soak step below runs this for real, so skip under the blanket
    // debug `--include-ignored` pass (same idiom as the large-scale
    // experiments soak).
    if cfg!(debug_assertions) {
        return;
    }
    let n = 1_000_000;
    let run = |shards: usize| {
        let mut runner = RingRunner::new();
        runner.shards(shards);
        runner.run(&TokenRing, &word(n)).expect("million-process ring completes")
    };
    let sharded = run(8);
    assert_eq!(sharded.decision, Some(true));
    assert_eq!(sharded.stats.deliveries, n);
    assert_eq!(sharded.stats.total_bits, n);
    // And byte-identical to the serial oracle even at this size: the
    // full stats compare covers every per-link bit counter.
    let serial = run(1);
    assert_eq!(serial.stats, sharded.stats);
    assert_eq!(serial.decision, sharded.decision);
}
