//! Stress/soak rig for the sweep thread pool — heavily oversubscribed
//! worker counts, hundreds of grid points, and deliberate mid-run
//! panics. Ignored by default (it exists to shake out races, not to
//! gate every `cargo test`); the CI soak job runs it via
//! `cargo test -- --include-ignored`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::BitString;
use ringleader_sim::pool::{ordered_map, ThreadPool};
use ringleader_sim::{Context, Direction, Process, ProcessResult, Protocol, RingRunner, Topology};

/// Minimal one-token protocol: leader sends one marked bit string around
/// the ring, accepts when it returns. Total bits = payload × n hops.
struct Loop;

struct Fwd;
impl Process for Fwd {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for Loop {
    fn name(&self) -> &'static str {
        "loop"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                ctx.send(Direction::Clockwise, BitString::parse("1011").unwrap());
                Ok(())
            }
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(true);
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(Fwd)
    }
}

fn ring(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

/// 64 workers over 500 tiny grid points: every result arrives, in input
/// order, with the exact value the serial loop would compute — massive
/// oversubscription (64 threads on however few cores CI has) must not
/// lose, duplicate, or reorder work.
#[test]
#[ignore = "soak rig; run with --include-ignored"]
fn soak_64_workers_sweep_500_points_without_losing_results() {
    let points: Vec<usize> = (0..500).map(|i| i % 13 + 1).collect();
    let expected: Vec<usize> = points.iter().map(|&n| 4 * n).collect();
    let results = ordered_map(64, points, |_, n| {
        let outcome = RingRunner::new().run(&Loop, &ring(n)).unwrap();
        assert_eq!(outcome.decision, Some(true));
        outcome.stats.total_bits
    });
    assert_eq!(results, expected, "lost, duplicated, or reordered grid results");
}

/// Dropping a 64-worker pool with a long queue must drain and join
/// without deadlock, and every queued job must have run by the time
/// `drop` returns.
#[test]
#[ignore = "soak rig; run with --include-ignored"]
fn soak_pool_drop_drains_and_joins_without_deadlock() {
    let pool = ThreadPool::new(64);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..500 {
        let done = Arc::clone(&done);
        pool.execute(move || {
            let n = i % 13 + 1;
            let outcome = RingRunner::new().run(&Loop, &ring(n)).unwrap();
            assert_eq!(outcome.stats.total_bits, 4 * n);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    drop(pool); // must not hang: disconnect → drain → join
    assert_eq!(done.load(Ordering::SeqCst), 500);
}

/// A worker that panics mid-run must not deadlock the map or strand
/// results: every non-panicking point still completes, the earliest
/// panic (in grid order) reaches the caller, and the machinery shuts
/// down cleanly enough to run the whole thing again immediately.
#[test]
#[ignore = "soak rig; run with --include-ignored"]
fn soak_worker_panic_mid_run_shuts_down_cleanly() {
    for round in 0..3 {
        let completed = Arc::new(AtomicUsize::new(0));
        let completed_inner = Arc::clone(&completed);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            ordered_map(64, (0..500).collect::<Vec<usize>>(), |_, i| {
                assert!(i != 137, "injected failure at point 137");
                let outcome = RingRunner::new().run(&Loop, &ring(i % 13 + 1)).unwrap();
                completed_inner.fetch_add(1, Ordering::SeqCst);
                outcome.stats.total_bits
            })
        }));
        let payload = caught.expect_err("the injected panic must propagate");
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_else(|| {
            payload.downcast_ref::<&str>().map(ToString::to_string).unwrap_or_default()
        });
        assert!(msg.contains("injected failure at point 137"), "round {round}: got {msg:?}");
        assert_eq!(
            completed.load(Ordering::SeqCst),
            499,
            "round {round}: panicking point must not strand other results"
        );
    }

    // The long-lived pool survives panicking jobs outright.
    let pool = ThreadPool::new(64);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..500 {
        let done = Arc::clone(&done);
        pool.execute(move || {
            assert!(i % 100 != 37, "every 100th-ish job blows up");
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    drop(pool);
    assert_eq!(done.load(Ordering::SeqCst), 495, "5 panics, 495 completions");
}
