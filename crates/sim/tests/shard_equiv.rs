//! Shard-equivalence suite: the sharded engine must be *byte-identical*
//! to the serial engine, which survives as the oracle (exactly like the
//! `NaiveChooser` oracle for the scheduler index).
//!
//! Every comparison here runs the same protocol twice — serial and with
//! `shards(s)` — with full tracing on, and asserts the complete observable
//! result matches: the decision, every field of [`ExecStats`] (total bits,
//! per-link loads, delivery count), and the full event trace, event by
//! event with sequence numbers. Error paths must agree too: the same
//! `SimError` on the same run, for stalls, event-limit aborts, follower
//! decisions, illegal sends, and handler errors.
//!
//! Coverage axes: shards ∈ {1, 2, 3, 8} × all three policies (Fifo,
//! LongestQueue, Random{seed}) × randomized protocols and ring sizes —
//! including the degenerate cases `n < shards` (clamped to one-process
//! arcs), a two-process ring, and traffic across the wrap-around boundary
//! link `pₙ₋₁ ↔ p₀` (always a shard boundary).

use proptest::prelude::*;

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitString, BitWriter};
use ringleader_sim::{
    Context, Direction, Outcome, Process, ProcessError, ProcessResult, Protocol, RingRunner,
    Scheduler, SimError, Topology,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn schedulers() -> [Scheduler; 4] {
    [
        Scheduler::Fifo,
        Scheduler::LongestQueue,
        Scheduler::Random { seed: 11 },
        Scheduler::Random { seed: 0xC0FFEE },
    ]
}

fn word(n: usize) -> Word {
    Word::from_str(&"01".repeat(n)[..n], &Alphabet::binary()).expect("binary word")
}

/// Runs `proto` once serially and once with `shards` — first fully
/// traced, then untraced — and asserts the results are byte-identical
/// (success or error). The two legs exercise different epoch machinery:
/// traced epochs report one entry per delivery for the coordinator to
/// replay, untraced epochs ship aggregate deltas, and both must land on
/// the serial observables.
fn assert_sharded_matches_serial(
    scheduler: &Scheduler,
    n: usize,
    shards: usize,
    proto: &dyn Protocol,
    max_events: Option<usize>,
    known_ring_size: bool,
) {
    let run = |shard_count: usize, traced: bool| -> Result<Outcome, SimError> {
        let mut runner = RingRunner::new();
        runner
            .scheduler(scheduler.clone())
            .record_trace(traced)
            .known_ring_size(known_ring_size)
            .shards(shard_count);
        if let Some(limit) = max_events {
            runner.max_events(limit);
        }
        runner.run(proto, &word(n))
    };
    let ctx = format!("{scheduler:?} n={n} shards={shards}");
    match (run(1, true), run(shards, true)) {
        (Ok(serial), Ok(sharded)) => {
            assert_eq!(serial.decision, sharded.decision, "{ctx}: decision diverged");
            assert_eq!(serial.stats, sharded.stats, "{ctx}: stats diverged");
            let serial_trace = serial.trace.expect("serial trace recorded");
            let sharded_trace = sharded.trace.expect("sharded trace recorded");
            for (i, (a, b)) in serial_trace.events().iter().zip(sharded_trace.events()).enumerate()
            {
                assert_eq!(a, b, "{ctx}: trace event {i} diverged");
            }
            assert_eq!(
                serial_trace.events().len(),
                sharded_trace.events().len(),
                "{ctx}: trace length diverged"
            );
        }
        (Err(serial), Err(sharded)) => {
            assert_eq!(serial, sharded, "{ctx}: error diverged");
        }
        (serial, sharded) => {
            panic!("{ctx}: outcomes diverged — serial: {serial:?}, sharded: {sharded:?}");
        }
    }
    match (run(1, false), run(shards, false)) {
        (Ok(serial), Ok(sharded)) => {
            assert_eq!(serial.decision, sharded.decision, "{ctx} untraced: decision diverged");
            assert_eq!(serial.stats, sharded.stats, "{ctx} untraced: stats diverged");
        }
        (Err(serial), Err(sharded)) => {
            assert_eq!(serial, sharded, "{ctx} untraced: error diverged");
        }
        (serial, sharded) => {
            panic!("{ctx} untraced: outcomes diverged — serial: {serial:?}, sharded: {sharded:?}");
        }
    }
}

// ---------------------------------------------------------------------------
// Protocols exercising real scheduler contention.
// ---------------------------------------------------------------------------

/// Leader launches `k` tokens each way; followers forward; leader accepts
/// when all `2k` return. Several messages in flight at every step.
struct TokenStorm {
    k: usize,
}

struct StormLeader {
    k: usize,
    returned: usize,
}

impl Process for StormLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for i in 0..self.k {
            let mut w = BitWriter::new();
            w.write_bits(i as u64, 4);
            ctx.send(Direction::Clockwise, w.finish());
            let mut w = BitWriter::new();
            w.write_bits(i as u64, 4).write_bit(true);
            ctx.send(Direction::CounterClockwise, w.finish());
        }
        Ok(())
    }
    fn on_message(&mut self, _d: Direction, _m: &BitString, ctx: &mut Context) -> ProcessResult {
        self.returned += 1;
        if self.returned == 2 * self.k {
            ctx.decide(true);
        }
        Ok(())
    }
}

struct Forwarder;

impl Process for Forwarder {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for TokenStorm {
    fn name(&self) -> &'static str {
        "token-storm"
    }
    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormLeader { k: self.k, returned: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(Forwarder)
    }
}

/// Unidirectional burst relay: followers inject one extra padding message
/// per long token (payload-dependent), building uneven backlogs so the
/// LongestQueue policy faces genuine ties and boundary queues spill.
struct BurstRelay {
    burst: usize,
}

struct BurstLeader {
    burst: usize,
    originals: usize,
}

impl Process for BurstLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for _ in 0..self.burst {
            ctx.send(Direction::Clockwise, BitString::parse("1101").expect("literal"));
        }
        Ok(())
    }
    fn on_message(&mut self, _d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        if m.count_ones() > 2 {
            self.originals += 1;
            if self.originals == self.burst {
                ctx.decide(true);
            }
        }
        Ok(())
    }
}

struct BurstFollower {
    emitted: bool,
}

impl Process for BurstFollower {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        if !self.emitted && m.count_ones() > 2 {
            ctx.send(d, BitString::parse("1").expect("literal"));
            self.emitted = true;
        }
        Ok(())
    }
}

impl Protocol for BurstRelay {
    fn name(&self) -> &'static str {
        "burst-relay"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: self.burst, originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstFollower { emitted: false })
    }
}

/// Bidirectional echo mesh parameterized for the proptests: tokens travel
/// clockwise; every `reply_mod`-th position (by input letter parity and
/// position-independent state) injects a 1-bit echo travelling counter-
/// clockwise, which crosses shard boundaries *against* the token flow —
/// including the wrap-around link. Deterministic in its inputs.
struct EchoMesh {
    tokens: usize,
    reply_mod: usize,
}

struct EchoLeader {
    tokens: usize,
    returned: usize,
}

impl Process for EchoLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for i in 0..self.tokens {
            let mut w = BitWriter::new();
            w.write_bits(i as u64 + 1, 5);
            ctx.send(Direction::Clockwise, w.finish());
        }
        Ok(())
    }
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        // Echoes (1 bit) are absorbed; tokens (5 bits) count home.
        if d == Direction::Clockwise && m.len() == 5 {
            self.returned += 1;
            if self.returned == self.tokens {
                ctx.decide(true);
            }
        }
        Ok(())
    }
}

struct EchoFollower {
    reply_mod: usize,
    seen: usize,
}

impl Process for EchoFollower {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        if d == Direction::Clockwise && m.len() == 5 {
            self.seen += 1;
            if self.seen % self.reply_mod == 0 {
                ctx.send(Direction::CounterClockwise, BitString::parse("1").expect("literal"));
            }
        }
        Ok(())
    }
}

impl Protocol for EchoMesh {
    fn name(&self) -> &'static str {
        "echo-mesh"
    }
    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(EchoLeader { tokens: self.tokens, returned: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(EchoFollower { reply_mod: self.reply_mod, seen: 0 })
    }
}

// ---------------------------------------------------------------------------
// Fixed matrix: every policy × every shard count × awkward ring sizes.
// ---------------------------------------------------------------------------

#[test]
fn sharded_matches_serial_across_the_matrix() {
    for scheduler in schedulers() {
        for &shards in &SHARD_COUNTS {
            // n = 2 puts the wrap-around link between two one-process
            // arcs; n = 3 < 8 exercises the shard-count clamp; n = 17
            // gives ragged arc lengths for 3 and 8 shards.
            for n in [2usize, 3, 8, 17] {
                assert_sharded_matches_serial(
                    &scheduler,
                    n,
                    shards,
                    &TokenStorm { k: 3 },
                    None,
                    false,
                );
                assert_sharded_matches_serial(
                    &scheduler,
                    n,
                    shards,
                    &BurstRelay { burst: 3 },
                    None,
                    false,
                );
            }
        }
    }
}

#[test]
fn single_process_ring_is_clamped_to_serial_semantics() {
    // n = 1: every shard count clamps to one shard... which the engine
    // runs serially. The point is the builder accepts it and the result
    // is still the oracle's.
    for &shards in &SHARD_COUNTS {
        assert_sharded_matches_serial(
            &Scheduler::Fifo,
            1,
            shards,
            &BurstRelay { burst: 2 },
            None,
            false,
        );
    }
}

#[test]
fn known_ring_size_mode_reaches_sharded_processes() {
    struct KnownN;
    impl Protocol for KnownN {
        fn name(&self) -> &'static str {
            "known-n"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            struct L;
            impl Process for L {
                fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                    let n = ctx.known_ring_size().expect("known-n mode") as u64;
                    let mut w = BitWriter::new();
                    w.write_bits(n, 8);
                    ctx.send(Direction::Clockwise, w.finish());
                    Ok(())
                }
                fn on_message(
                    &mut self,
                    _d: Direction,
                    _m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    ctx.decide(true);
                    Ok(())
                }
            }
            Box::new(L)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            struct F;
            impl Process for F {
                fn on_message(
                    &mut self,
                    d: Direction,
                    m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    // Followers must see the same n the leader saw.
                    if ctx.known_ring_size().is_none() {
                        return Err(ProcessError::InvalidState("n not propagated".into()));
                    }
                    ctx.send(d, m.clone());
                    Ok(())
                }
            }
            Box::new(F)
        }
    }
    for &shards in &SHARD_COUNTS {
        assert_sharded_matches_serial(&Scheduler::Fifo, 9, shards, &KnownN, None, true);
    }
}

// ---------------------------------------------------------------------------
// Error paths: the sharded engine must fail exactly like the oracle.
// ---------------------------------------------------------------------------

/// Leader sends nothing: both engines must stall at 0 deliveries.
struct Silent;
impl Protocol for Silent {
    fn name(&self) -> &'static str {
        "silent"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                _c: &mut Context,
            ) -> ProcessResult {
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(Forwarder)
    }
}

/// Followers swallow the token midway: stall with deliveries > 0.
struct SwallowAt {
    position: usize,
}
impl Protocol for SwallowAt {
    fn name(&self) -> &'static str {
        "swallow-at"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: 1, originals: 0 })
    }
    fn follower(&self, input: Symbol) -> Box<dyn Process> {
        struct F {
            swallow: bool,
        }
        impl Process for F {
            fn on_message(
                &mut self,
                d: Direction,
                m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                if !self.swallow {
                    ctx.send(d, m.clone());
                }
                Ok(())
            }
        }
        // The word is "0101…": symbol 1 marks odd positions, so the
        // first odd follower at/after `position` drops the token.
        let _ = self.position;
        Box::new(F { swallow: input == Symbol(1) })
    }
}

/// Never-terminating ping-pong: exercises EventLimitExceeded.
struct Livelock;
impl Protocol for Livelock {
    fn name(&self) -> &'static str {
        "livelock"
    }
    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                ctx.send(Direction::Clockwise, BitString::parse("1").expect("literal"));
                Ok(())
            }
            fn on_message(
                &mut self,
                d: Direction,
                m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.send(d, m.clone());
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(Forwarder)
    }
}

/// A follower decides on token receipt: FollowerDecided at position 1.
struct Rogue;
impl Protocol for Rogue {
    fn name(&self) -> &'static str {
        "rogue"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: 1, originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F;
        impl Process for F {
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(false);
                Ok(())
            }
        }
        Box::new(F)
    }
}

/// Followers reply against a unidirectional topology: IllegalSend at the
/// first delivery — on whichever shard owns position 1.
struct WrongWay;
impl Protocol for WrongWay {
    fn name(&self) -> &'static str {
        "wrong-way"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: 1, originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F;
        impl Process for F {
            fn on_message(
                &mut self,
                _d: Direction,
                m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.send(Direction::CounterClockwise, m.clone());
                Ok(())
            }
        }
        Box::new(F)
    }
}

/// Followers error on receipt: SimError::Process at position 1 with the
/// exact ProcessError payload.
struct Faulty;
impl Protocol for Faulty {
    fn name(&self) -> &'static str {
        "faulty"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: 1, originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F;
        impl Process for F {
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                _c: &mut Context,
            ) -> ProcessResult {
                Err(ProcessError::InvalidState("deliberate fault".into()))
            }
        }
        Box::new(F)
    }
}

#[test]
fn error_paths_match_the_oracle() {
    for scheduler in schedulers() {
        for &shards in &SHARD_COUNTS {
            let n = 10;
            assert_sharded_matches_serial(&scheduler, n, shards, &Silent, None, false);
            assert_sharded_matches_serial(
                &scheduler,
                n,
                shards,
                &SwallowAt { position: 1 },
                None,
                false,
            );
            assert_sharded_matches_serial(&scheduler, n, shards, &Livelock, Some(64), false);
            assert_sharded_matches_serial(&scheduler, n, shards, &Rogue, None, false);
            assert_sharded_matches_serial(&scheduler, n, shards, &WrongWay, None, false);
            assert_sharded_matches_serial(&scheduler, n, shards, &Faulty, None, false);
        }
    }
}

#[test]
fn error_positions_are_exact_across_boundaries() {
    // A follower erroring at a shard boundary must be reported with its
    // global position, not its arc-local one: n = 8 with 3 shards puts
    // position 2 at the start of the middle arc.
    struct FaultAtThree;
    impl Protocol for FaultAtThree {
        fn name(&self) -> &'static str {
            "fault-at-three"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(BurstLeader { burst: 1, originals: 0 })
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            struct F {
                hops: usize,
            }
            impl Process for F {
                fn on_message(
                    &mut self,
                    d: Direction,
                    m: &BitString,
                    ctx: &mut Context,
                ) -> ProcessResult {
                    self.hops += 1;
                    // Payload length encodes hop count: the 4-bit token
                    // grows one bit per hop, so the follower at global
                    // position 2 sees a 5-bit message.
                    if m.len() == 5 {
                        return Err(ProcessError::InvalidState("boundary fault".into()));
                    }
                    let mut grown = m.clone();
                    grown.push(true);
                    ctx.send(d, grown);
                    Ok(())
                }
            }
            Box::new(F { hops: 0 })
        }
    }
    for &shards in &SHARD_COUNTS {
        let mut runner = RingRunner::new();
        runner.shards(shards);
        let err = runner.run(&FaultAtThree, &word(8)).expect_err("protocol faults");
        assert_eq!(
            err,
            SimError::Process {
                position: 2,
                source: ProcessError::InvalidState("boundary fault".into())
            },
            "shards={shards}"
        );
    }
}

// ---------------------------------------------------------------------------
// Epoch batching: the fast path must be invisible in the observables.
// ---------------------------------------------------------------------------

/// One-pass unidirectional relay: the leader launches one token, every
/// follower forwards it, the leader decides on its return — `n`
/// deliveries, single-message backlog throughout.
struct OnePass;
impl Protocol for OnePass {
    fn name(&self) -> &'static str {
        "one-pass"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { burst: 1, originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(Forwarder)
    }
}

/// Runs `proto` sharded twice — epoch-batched grants vs one-pick rounds
/// — and asserts the observables are byte-identical (success or error).
/// Runs the comparison traced (entry-mode epochs, replayed per delivery)
/// and untraced (aggregate-mode epochs, merged as deltas).
fn assert_epochs_match_one_pick(
    scheduler: &Scheduler,
    n: usize,
    shards: usize,
    proto: &dyn Protocol,
) {
    let run = |epochs: bool, traced: bool| -> Result<Outcome, SimError> {
        let mut runner = RingRunner::new();
        runner.scheduler(scheduler.clone()).record_trace(traced).shards(shards);
        runner.epoch_batching(epochs);
        runner.run(proto, &word(n))
    };
    let ctx = format!("{scheduler:?} n={n} shards={shards}");
    match (run(false, true), run(true, true)) {
        (Ok(one_pick), Ok(epochs)) => {
            assert_eq!(one_pick.decision, epochs.decision, "{ctx}: decision diverged");
            assert_eq!(one_pick.stats, epochs.stats, "{ctx}: stats diverged");
            let a = one_pick.trace.expect("one-pick trace recorded");
            let b = epochs.trace.expect("epoch trace recorded");
            for (i, (x, y)) in a.events().iter().zip(b.events()).enumerate() {
                assert_eq!(x, y, "{ctx}: trace event {i} diverged");
            }
            assert_eq!(a.events().len(), b.events().len(), "{ctx}: trace length diverged");
        }
        (Err(one_pick), Err(epochs)) => {
            assert_eq!(one_pick, epochs, "{ctx}: error diverged");
        }
        (one_pick, epochs) => {
            panic!("{ctx}: outcomes diverged — one-pick: {one_pick:?}, epochs: {epochs:?}");
        }
    }
    match (run(false, false), run(true, false)) {
        (Ok(one_pick), Ok(epochs)) => {
            assert_eq!(one_pick.decision, epochs.decision, "{ctx} untraced: decision diverged");
            assert_eq!(one_pick.stats, epochs.stats, "{ctx} untraced: stats diverged");
        }
        (Err(one_pick), Err(epochs)) => {
            assert_eq!(one_pick, epochs, "{ctx} untraced: error diverged");
        }
        (one_pick, epochs) => {
            panic!(
                "{ctx} untraced: outcomes diverged — one-pick: {one_pick:?}, epochs: {epochs:?}"
            );
        }
    }
}

/// The epoch path's coordination budget on the workload `BENCH_0004.json`
/// measured: a FIFO one-pass ring must cost *less than one* coordinator
/// channel message per delivery — the one-command-per-delivery regime is
/// exactly what epochs exist to break. The budget is read from the
/// `shard.channel_ops` counter of a per-run metrics registry, so runs
/// never share (or reset) global state.
#[test]
fn fifo_one_pass_needs_under_one_channel_message_per_delivery() {
    let n = 96;
    for shards in [2usize, 4, 8] {
        let metrics = ringleader_obs::Metrics::enabled();
        let mut runner = RingRunner::new();
        runner.scheduler(Scheduler::Fifo).shards(shards).metrics(metrics.clone());
        let out = runner.run(&OnePass, &word(n)).expect("one pass completes");
        let ops = metrics.counter_value("shard.channel_ops");
        assert_eq!(out.stats.deliveries, n, "one pass is n deliveries");
        assert!(
            ops < out.stats.deliveries as u64,
            "shards={shards}: {ops} coordinator channel messages for {} deliveries",
            out.stats.deliveries
        );
    }
}

// ---------------------------------------------------------------------------
// Randomized sweep: protocol shape × ring size × policy × shard count.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn epoch_batched_merge_matches_one_pick_merge(
        n in 2usize..24,
        tokens in 1usize..4,
        reply_mod in 1usize..4,
        k in 1usize..4,
        scheduler_pick in 0usize..3,
        shard_pick in 0usize..3,
    ) {
        // The policies whose windows were one pick per round before
        // epochs; FIFO is covered by the serial-oracle sweeps above.
        let schedulers = [
            Scheduler::LongestQueue,
            Scheduler::Random { seed: 11 },
            Scheduler::Random { seed: 0xC0FFEE },
        ];
        let scheduler = &schedulers[scheduler_pick];
        let shards = [2usize, 3, 8][shard_pick];
        assert_epochs_match_one_pick(scheduler, n, shards, &EchoMesh { tokens, reply_mod });
        assert_epochs_match_one_pick(scheduler, n, shards, &TokenStorm { k });
    }

    #[test]
    fn randomized_protocols_match_serial(
        n in 1usize..28,
        tokens in 1usize..4,
        reply_mod in 1usize..4,
        scheduler_pick in 0usize..4,
        shard_pick in 0usize..4,
    ) {
        let scheduler = &schedulers()[scheduler_pick];
        let shards = SHARD_COUNTS[shard_pick];
        assert_sharded_matches_serial(
            scheduler,
            n,
            shards,
            &EchoMesh { tokens, reply_mod },
            None,
            false,
        );
    }

    #[test]
    fn randomized_storms_match_serial(
        n in 2usize..24,
        k in 1usize..5,
        scheduler_pick in 0usize..4,
        shard_pick in 0usize..4,
    ) {
        let scheduler = &schedulers()[scheduler_pick];
        let shards = SHARD_COUNTS[shard_pick];
        assert_sharded_matches_serial(scheduler, n, shards, &TokenStorm { k }, None, false);
    }
}
