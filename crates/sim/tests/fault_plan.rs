//! Fault plans make every [`SimError`] variant reachable **on demand**:
//! a deterministic, seeded schedule of injections replaces the ad-hoc
//! corrupting adapters the failure tests used to hand-roll. Each test
//! here drives one variant from a plain [`FaultPlan`], and the
//! serial/sharded engines must agree on the failure down to the exact
//! position.

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_sim::{
    Context, Corruption, Direction, Fault, FaultAction, FaultPlan, Process, ProcessResult,
    Protocol, RingRunner, Scheduler, SimError, Topology,
};

fn word(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

/// A framed relay: the leader circulates one token `laps` times; every
/// payload is an Elias-delta frame, so any corruption that breaks the
/// framing surfaces as a decode error at the receiving position.
#[derive(Clone)]
struct FramedRelay {
    laps: u64,
}

struct RelayLeader {
    laps: u64,
}

struct RelayFollower;

fn frame(lap: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_elias_delta(lap + 1);
    w.finish()
}

fn unframe(msg: &BitString) -> Result<u64, ringleader_bitio::DecodeError> {
    Ok(BitReader::new(msg).read_elias_delta()? - 1)
}

impl Process for RelayLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, frame(0));
        Ok(())
    }

    fn on_message(&mut self, _d: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let lap = unframe(msg)?;
        if lap + 1 >= self.laps {
            ctx.decide(true);
        } else {
            ctx.send(Direction::Clockwise, frame(lap + 1));
        }
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, _bytes: &[u8]) -> ProcessResult {
        Ok(())
    }
}

impl Process for RelayFollower {
    fn on_message(&mut self, _d: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let lap = unframe(msg)?;
        ctx.send(Direction::Clockwise, frame(lap));
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, _bytes: &[u8]) -> ProcessResult {
        Ok(())
    }
}

impl Protocol for FramedRelay {
    fn name(&self) -> &'static str {
        "framed-relay"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RelayLeader { laps: self.laps })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RelayFollower)
    }
}

fn one_shot(position: usize, delivery: u64, action: FaultAction) -> FaultPlan {
    let mut plan = FaultPlan::new();
    plan.push(Fault { position, delivery, recurring: false, action });
    plan
}

/// Runs the relay under `plan` on both engines and asserts the same
/// error comes back from each.
fn assert_fault_agrees(plan: &FaultPlan, expected: &SimError) {
    for shards in [1usize, 2, 3] {
        let mut runner = RingRunner::new();
        runner.shards(shards).fault_plan(plan.clone());
        let err = runner.run(&FramedRelay { laps: 3 }, &word(6)).expect_err("fault must fire");
        assert_eq!(&err, expected, "shards={shards}");
    }
}

// ---------------------------------------------------------------------------
// One test per SimError variant.
// ---------------------------------------------------------------------------

#[test]
fn empty_ring_is_reachable() {
    assert!(matches!(
        RingRunner::new().run(&FramedRelay { laps: 1 }, &Word::new()),
        Err(SimError::EmptyRing)
    ));
}

#[test]
fn illegal_send_is_reachable_by_injection() {
    // Inject a counter-clockwise send at a follower of a unidirectional
    // protocol: the topology check rejects it at that exact position.
    let plan = one_shot(
        2,
        1,
        FaultAction::InjectSend { direction: Direction::CounterClockwise, payload: frame(0) },
    );
    assert_fault_agrees(
        &plan,
        &SimError::IllegalSend { position: 2, direction: Direction::CounterClockwise },
    );
}

#[test]
fn follower_decided_is_reachable_by_injection() {
    let plan = one_shot(3, 1, FaultAction::InjectDecide { accept: true });
    assert_fault_agrees(&plan, &SimError::FollowerDecided { position: 3 });
}

#[test]
fn stalled_is_reachable_by_stalling_the_token() {
    // Swallow the only in-flight message: traffic dries up having
    // delivered exactly 2 messages (positions 1 and 2).
    let plan = one_shot(2, 1, FaultAction::Stall);
    assert_fault_agrees(&plan, &SimError::Stalled { deliveries: 2 });
}

#[test]
fn process_error_is_reachable_by_corruption() {
    // Zeroing the frame starves the Elias-delta reader at the receiver.
    let plan = one_shot(4, 1, FaultAction::Corrupt(Corruption::Zero));
    let mut runner = RingRunner::new();
    runner.fault_plan(plan.clone());
    let err = runner.run(&FramedRelay { laps: 3 }, &word(6)).unwrap_err();
    let SimError::Process { position: 4, .. } = err else {
        panic!("expected a decode failure at position 4, got {err:?}");
    };
    assert_fault_agrees(&plan, &err);
}

#[test]
fn event_limit_is_reachable_by_flooding() {
    // A recurring injection at every leader delivery doubles the traffic
    // forever; a small budget trips deterministically.
    let mut plan = FaultPlan::new();
    plan.push(Fault {
        position: 1,
        delivery: 1,
        recurring: true,
        action: FaultAction::InjectSend { direction: Direction::Clockwise, payload: frame(0) },
    });
    for shards in [1usize, 2] {
        let mut runner = RingRunner::new();
        runner.shards(shards).fault_plan(plan.clone()).max_events(40);
        let err = runner.run(&FramedRelay { laps: 100 }, &word(6)).unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 40 }, "shards={shards}");
    }
}

#[test]
fn shard_failed_is_reachable_by_killing_a_worker() {
    // Kill the shard that owns position 4 (of 6, over 2 shards: shard 1
    // owns 3..6). The worker exits silently before handling; the
    // coordinator's next report wait observes the death, deterministically.
    let plan = one_shot(4, 1, FaultAction::KillShard);
    let mut runner = RingRunner::new();
    runner.shards(2).fault_plan(plan.clone());
    let err = runner.run(&FramedRelay { laps: 3 }, &word(6)).unwrap_err();
    assert_eq!(err, SimError::ShardFailed { shard: 1 });

    // Same plan, more shards: 3 shards over 6 positions → position 4
    // belongs to shard 2.
    let mut runner = RingRunner::new();
    runner.shards(3).fault_plan(plan.clone());
    let err = runner.run(&FramedRelay { laps: 3 }, &word(6)).unwrap_err();
    assert_eq!(err, SimError::ShardFailed { shard: 2 });

    // The serial engine has no workers to kill: the action is a no-op
    // there (documented), so the run completes.
    let mut runner = RingRunner::new();
    runner.fault_plan(plan);
    assert!(runner.run(&FramedRelay { laps: 3 }, &word(6)).is_ok());
}

#[test]
fn snapshot_error_is_reachable_by_a_mismatched_restore() {
    let runner = RingRunner::new();
    let snap = runner
        .run_until(&FramedRelay { laps: 3 }, &word(6), 4)
        .unwrap()
        .snapshot()
        .expect("three laps outlast four deliveries");
    // Resuming on the wrong ring size is refused.
    let err = runner.resume(&FramedRelay { laps: 3 }, &word(7), &snap).unwrap_err();
    assert!(matches!(err, SimError::Snapshot { .. }), "{err:?}");
}

// ---------------------------------------------------------------------------
// Plan semantics.
// ---------------------------------------------------------------------------

#[test]
fn delay_faults_do_not_change_observables() {
    let plan = one_shot(1, 1, FaultAction::Delay { micros: 500 });
    let proto = FramedRelay { laps: 2 };
    let clean = RingRunner::new().run(&proto, &word(5)).unwrap();
    for shards in [1usize, 2] {
        let mut runner = RingRunner::new();
        runner.shards(shards).fault_plan(plan.clone());
        let delayed = runner.run(&proto, &word(5)).unwrap();
        assert_eq!(delayed.decision, clean.decision, "shards={shards}");
        assert_eq!(delayed.stats, clean.stats, "shards={shards}");
    }
}

#[test]
fn corruption_can_be_survivable() {
    // Flipping a bit past the end of the frame is a no-op; the run
    // completes with identical observables.
    let plan = one_shot(2, 1, FaultAction::Corrupt(Corruption::FlipBit(1000)));
    let proto = FramedRelay { laps: 2 };
    let clean = RingRunner::new().run(&proto, &word(5)).unwrap();
    let mut runner = RingRunner::new();
    runner.fault_plan(plan);
    let faulted = runner.run(&proto, &word(5)).unwrap();
    assert_eq!(faulted.decision, clean.decision);
    assert_eq!(faulted.stats, clean.stats);
}

#[test]
fn recurring_faults_fire_on_every_later_delivery() {
    // Stall every delivery at position 1 from the first onwards: the
    // token never gets past it, whichever lap it is on.
    let mut plan = FaultPlan::new();
    plan.push(Fault { position: 1, delivery: 1, recurring: true, action: FaultAction::Stall });
    for shards in [1usize, 2] {
        let mut runner = RingRunner::new();
        runner.shards(shards).fault_plan(plan.clone());
        let err = runner.run(&FramedRelay { laps: 3 }, &word(6)).unwrap_err();
        assert_eq!(err, SimError::Stalled { deliveries: 1 }, "shards={shards}");
    }
}

#[test]
fn scattered_plans_are_deterministic_across_engines() {
    // A seeded scatter of one-shot truncations: both engines agree on
    // the outcome, run after run.
    let plan = FaultPlan::scatter(0xFEED, 6, 12, 4);
    let proto = FramedRelay { laps: 4 };
    let mut serial = RingRunner::new();
    serial.fault_plan(plan.clone());
    let baseline = serial.run(&proto, &word(6));
    for _ in 0..3 {
        for shards in [1usize, 2, 3] {
            let mut runner = RingRunner::new();
            runner.shards(shards).fault_plan(plan.clone());
            assert_eq!(runner.run(&proto, &word(6)), baseline, "shards={shards}");
        }
    }
}

#[test]
fn faults_key_on_per_position_deliveries_across_schedulers() {
    // The fault coordinate system is (position, nth delivery at that
    // position) — independent of global interleaving, so the same plan
    // fires identically under every scheduling policy.
    let plan = one_shot(3, 2, FaultAction::Corrupt(Corruption::Zero));
    for scheduler in [Scheduler::Fifo, Scheduler::LongestQueue, Scheduler::Random { seed: 7 }] {
        let mut runner = RingRunner::new();
        runner.scheduler(scheduler.clone()).fault_plan(plan.clone());
        let err = runner.run(&FramedRelay { laps: 3 }, &word(5)).unwrap_err();
        assert!(matches!(err, SimError::Process { position: 3, .. }), "{scheduler:?}: {err:?}");
    }
}
