//! Scheduler-equivalence suite: the incremental active-link index must be
//! *behaviorally invisible* versus the seed implementation's full scan.
//!
//! Two layers of evidence:
//!
//! 1. **Index dynamics** — randomized push/deliver schedules drive the
//!    production [`LinkIndex`](ringleader_sim::LinkIndex) and the retained
//!    naive-scan oracle ([`sched_testkit::NaiveChooser`]) side by side;
//!    the chosen link sequences must match exactly for every policy,
//!    including the engine's single-link fast path (which for the random
//!    policy must consume identical RNG state).
//! 2. **Engine replay** — full runs of contention-heavy protocols record a
//!    trace; every `Deliver` event is then re-validated against what the
//!    naive oracle would have picked given the reconstructed queue state.
//!    This pins the engine integration end to end: queue bookkeeping,
//!    notification ordering, and the fast path.
//!
//! A final set of assertions uses the index's operation counter to show
//! the per-event cost is O(log n), not the seed engine's O(n) scan.

use std::collections::VecDeque;

use proptest::prelude::*;

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitString, BitWriter};
use ringleader_sim::sched_testkit::{LinkView, NaiveChooser};
use ringleader_sim::{
    sched_testkit, Context, Direction, EventKind, Process, ProcessResult, Protocol, RingRunner,
    Scheduler, Topology,
};

fn schedulers() -> [Scheduler; 4] {
    [
        Scheduler::Fifo,
        Scheduler::LongestQueue,
        Scheduler::Random { seed: 7 },
        Scheduler::Random { seed: 0xDEAD_BEEF },
    ]
}

/// Drives the incremental index and the naive oracle through one identical
/// randomized schedule over `links` queues and asserts every choice
/// matches. Returns (events, index_ops) for the complexity assertions.
fn run_dynamics(scheduler: &Scheduler, links: usize, script: &[(u8, u16)]) -> (u64, u64) {
    let mut index = sched_testkit::build_index(scheduler, links);
    let mut oracle = NaiveChooser::new(scheduler);
    // Queue model: per-link FIFO of sequence numbers.
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); links];
    let mut occupied = 0usize;
    let mut id_xor = 0usize;
    let mut seq = 0u64;
    let mut events = 0u64;

    for &(action, link_hint) in script {
        // Bias towards pushes (2/3) so queues actually build backlog.
        let push = action % 3 != 0 || occupied == 0;
        if push {
            let link = link_hint as usize % links;
            queues[link].push_back(seq);
            if queues[link].len() == 1 {
                occupied += 1;
                id_xor ^= link;
            }
            index.on_push(link, seq, queues[link].len());
            seq += 1;
        } else {
            // Mirror the engine: skip the index when one link is non-empty.
            let chosen = if occupied == 1 {
                index.on_trivial_choose();
                id_xor
            } else {
                index.choose()
            };
            let views: Vec<LinkView> = queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .map(|(id, q)| LinkView {
                    id,
                    backlog: q.len(),
                    head_seq: *q.front().expect("filtered non-empty"),
                })
                .collect();
            let expected = oracle.choose(&views);
            assert_eq!(
                chosen, expected,
                "{scheduler:?}: index and oracle disagree at event {events} \
                 (occupied={occupied})"
            );
            queues[chosen].pop_front();
            if queues[chosen].is_empty() {
                occupied -= 1;
                id_xor ^= chosen;
            }
            index.on_pop(chosen, queues[chosen].front().copied(), queues[chosen].len());
        }
        events += 1;
    }
    (events, index.index_ops())
}

proptest! {
    #[test]
    fn index_matches_oracle_on_random_dynamics(
        links in 1usize..24,
        script in proptest::collection::vec((any::<u8>(), any::<u16>()), 1..400),
    ) {
        for scheduler in schedulers() {
            run_dynamics(&scheduler, links, &script);
        }
    }

    #[test]
    fn index_ops_stay_logarithmic(
        links in 2usize..64,
        script in proptest::collection::vec((any::<u8>(), any::<u16>()), 64..512),
    ) {
        for scheduler in schedulers() {
            let (events, ops) = run_dynamics(&scheduler, links, &script);
            // Each event costs O(log links) elementary index operations —
            // heap entry moves, bucket transfers, Fenwick node visits —
            // where the seed implementation's scan cost O(links). The
            // bound below is generous (log₂ rounds up, +4 constant) but
            // two orders of magnitude below O(links) at engine scale.
            let log2 = usize::BITS as u64 - u64::from((2 * links - 1).leading_zeros());
            let budget = events * (2 * log2 + 4);
            prop_assert!(
                ops <= budget,
                "{scheduler:?}: {ops} index ops over {events} events exceeds \
                 amortized budget {budget} (links={links})"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Engine replay: full runs re-validated event by event against the oracle.
// ---------------------------------------------------------------------------

/// Leader launches `k` tokens clockwise and `k` counter-clockwise;
/// followers forward everything onward; the leader accepts once all `2k`
/// tokens return. With several tokens in flight the scheduler makes a
/// genuine choice at nearly every step.
struct TokenStorm {
    k: usize,
}

struct StormLeader {
    k: usize,
    returned: usize,
}

impl Process for StormLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for i in 0..self.k {
            let mut w = BitWriter::new();
            w.write_bits(i as u64, 4);
            ctx.send(Direction::Clockwise, w.finish());
            let mut w = BitWriter::new();
            w.write_bits(i as u64, 4).write_bit(true);
            ctx.send(Direction::CounterClockwise, w.finish());
        }
        Ok(())
    }

    fn on_message(&mut self, _d: Direction, _m: &BitString, ctx: &mut Context) -> ProcessResult {
        self.returned += 1;
        if self.returned == 2 * self.k {
            ctx.decide(true);
        }
        Ok(())
    }
}

struct StormFollower;

impl Process for StormFollower {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for TokenStorm {
    fn name(&self) -> &'static str {
        "token-storm"
    }
    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormLeader { k: self.k, returned: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormFollower)
    }
}

/// Link id for a send from `position` travelling in `direction` (the
/// engine's layout: 0..n clockwise, n..2n counter-clockwise).
fn link_of(position: usize, direction: Direction, n: usize) -> usize {
    match direction {
        Direction::Clockwise => position,
        Direction::CounterClockwise => n + (position + n - 1) % n,
    }
}

/// Receiving end of `link`: the position whose delivery events consume it.
fn receiver_of(link: usize, n: usize) -> (usize, Direction) {
    if link < n {
        ((link + 1) % n, Direction::Clockwise)
    } else {
        (link - n, Direction::CounterClockwise)
    }
}

/// Replays a traced run, asserting every delivery is the link the naive
/// scan oracle picks given the reconstructed queue state.
fn assert_trace_matches_oracle(scheduler: &Scheduler, n: usize, proto: &dyn Protocol) {
    let mut runner = RingRunner::new();
    runner.scheduler(scheduler.clone()).record_trace(true);
    let word = Word::from_str(&"0".repeat(n), &Alphabet::binary()).expect("binary word");
    let outcome = runner.run(proto, &word).expect("protocol completes");
    assert_eq!(outcome.decision, Some(true));

    let trace = outcome.trace.expect("trace was recorded");
    let mut oracle = NaiveChooser::new(scheduler);
    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); 2 * n];
    let mut deliveries = 0usize;
    for event in trace.events() {
        match event.kind {
            EventKind::Send => {
                let link = link_of(event.position, event.direction, n);
                queues[link].push_back(event.seq);
            }
            EventKind::Deliver => {
                let views: Vec<LinkView> = queues
                    .iter()
                    .enumerate()
                    .filter(|(_, q)| !q.is_empty())
                    .map(|(id, q)| LinkView {
                        id,
                        backlog: q.len(),
                        head_seq: *q.front().expect("filtered non-empty"),
                    })
                    .collect();
                let expected = oracle.choose(&views);
                let (position, direction) = receiver_of(expected, n);
                assert_eq!(
                    (event.position, event.direction),
                    (position, direction),
                    "{scheduler:?} n={n}: delivery {deliveries} diverged from the oracle"
                );
                queues[expected].pop_front().expect("oracle picked a non-empty link");
                deliveries += 1;
            }
        }
    }
    assert_eq!(deliveries, outcome.stats.deliveries);
}

#[test]
fn engine_deliveries_match_oracle_for_all_policies() {
    for scheduler in schedulers() {
        for n in [1usize, 2, 3, 8, 17] {
            for k in [1usize, 3] {
                assert_trace_matches_oracle(&scheduler, n, &TokenStorm { k });
            }
        }
    }
}

/// A protocol with bursty, position-dependent fan-out: each follower
/// re-emits a shrinking burst, so backlogs differ across links and the
/// longest-queue policy faces real ties.
struct BurstRelay;

struct BurstLeader {
    originals: usize,
}

impl Process for BurstLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for _ in 0..3 {
            ctx.send(Direction::Clockwise, BitString::parse("1101").unwrap());
        }
        Ok(())
    }

    fn on_message(&mut self, _d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        // Count only the three originals home; padding messages the
        // followers injected may legally still be in flight at decision.
        if m.count_ones() > 2 {
            self.originals += 1;
            if self.originals == 3 {
                ctx.decide(true);
            }
        }
        Ok(())
    }
}

struct BurstFollower {
    emitted: bool,
}

impl Process for BurstFollower {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        if !self.emitted && m.count_ones() > 2 {
            // One extra single-bit padding message per follower: builds
            // uneven backlogs so longest-queue faces genuine ties.
            ctx.send(d, BitString::parse("1").unwrap());
            self.emitted = true;
        }
        Ok(())
    }
}

impl Protocol for BurstRelay {
    fn name(&self) -> &'static str {
        "burst-relay"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstLeader { originals: 0 })
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(BurstFollower { emitted: false })
    }
}

#[test]
fn engine_deliveries_match_oracle_under_bursts() {
    for scheduler in schedulers() {
        for n in [2usize, 5, 12] {
            assert_trace_matches_oracle(&scheduler, n, &BurstRelay);
        }
    }
}

// ---------------------------------------------------------------------------
// Asymptotics: per-event engine cost must not scale with ring size.
// ---------------------------------------------------------------------------

/// One-pass unidirectional run: `n` deliveries, one message in flight.
struct OnePassToken;

impl Protocol for OnePassToken {
    fn name(&self) -> &'static str {
        "one-pass-token"
    }
    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }
    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                ctx.send(Direction::Clockwise, BitString::parse("10110101").unwrap());
                Ok(())
            }
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(true);
                Ok(())
            }
        }
        Box::new(L)
    }
    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F;
        impl Process for F {
            fn on_message(
                &mut self,
                d: Direction,
                m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.send(d, m.clone());
                Ok(())
            }
        }
        Box::new(F)
    }
}

fn time_run(runner: &RingRunner, proto: &dyn Protocol, n: usize, reps: u32) -> std::time::Duration {
    let word = Word::from_str(&"0".repeat(n), &Alphabet::binary()).expect("binary word");
    // Warm up allocator and caches once.
    runner.run(proto, &word).expect("run succeeds");
    let start = std::time::Instant::now();
    for _ in 0..reps {
        std::hint::black_box(runner.run(proto, &word).expect("run succeeds"));
    }
    start.elapsed() / reps
}

/// The headline acceptance property behind the ≥5× `engine_hot_loop`
/// speedup at n = 4096: with the incremental index, growing the ring 8×
/// grows the *total* run time ~8× (deliveries) — not 64× (deliveries ×
/// scan width). The seed engine's measured ratio was ≈ 55; an engine
/// doing any per-event full scan cannot come in under the bound asserted
/// here. Timing-based, so it runs in the nightly soak
/// (`--include-ignored`), not on every push.
#[test]
#[ignore = "timing-sensitive; nightly soak runs with --include-ignored"]
fn per_event_cost_is_flat_in_ring_size() {
    let runner = RingRunner::new();
    let small = time_run(&runner, &OnePassToken, 512, 20);
    let large = time_run(&runner, &OnePassToken, 4096, 5);
    let ratio = large.as_secs_f64() / small.as_secs_f64().max(1e-9);
    // 8× the deliveries: the ratio should sit near 8. Allow generous
    // noise headroom; the O(n·deliveries) seed engine measured ≈ 55×.
    assert!(
        ratio < 24.0,
        "n=4096 run is {ratio:.1}× the n=512 run — per-event cost is scaling with n \
         (was the incremental index bypassed?)"
    );
}
