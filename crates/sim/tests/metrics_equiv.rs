//! Metrics-equivalence suite: attaching an enabled
//! [`ringleader_obs::Metrics`] registry must never change a single
//! observable byte — decision, every [`ExecStats`] field, and the full
//! event trace — across the serial, sharded, and threaded engines,
//! every scheduling policy, and kill/resume splits. The registry itself
//! must still fill with real telemetry: engine counters, epoch-length
//! histograms, per-shard utilization, checkpoint timings.
//!
//! This is the load-bearing contract of the observability layer:
//! telemetry is write-only from the engines' perspective (enforced
//! statically by detlint's `obs-boundary` rule) and zero-cost enough to
//! leave the schedule alone (enforced dynamically here).

use proptest::prelude::*;
use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_obs::{Metrics, RunReport, REPORT_VERSION};
use ringleader_sim::{
    Context, Direction, Outcome, Process, ProcessError, ProcessResult, Protocol, RingRunner,
    RunPhase, Scheduler, ThreadedRunner, Topology,
};

fn word(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

fn schedulers() -> [Scheduler; 3] {
    [Scheduler::Fifo, Scheduler::LongestQueue, Scheduler::Random { seed: 0xC0FFEE }]
}

// ---------------------------------------------------------------------------
// A stateful storm protocol (the checkpoint suite's shape): several
// messages in flight so the scheduling policy matters, per-process
// state stamped into payloads so any disturbance shows in the bytes.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct StatefulStorm {
    burst: usize,
    laps: u64,
}

fn encode(lap: u64, stamp: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_elias_delta(lap + 1);
    w.write_elias_delta(stamp + 1);
    w.finish()
}

fn decode(msg: &BitString) -> Result<(u64, u64), ProcessError> {
    let mut r = BitReader::new(msg);
    let lap = r.read_elias_delta()? - 1;
    let stamp = r.read_elias_delta()? - 1;
    Ok((lap, stamp))
}

struct StormLeader {
    laps: u64,
    burst: usize,
    returned: u64,
}

impl Process for StormLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for i in 0..self.burst {
            let dir = if i % 2 == 0 { Direction::Clockwise } else { Direction::CounterClockwise };
            ctx.send(dir, encode(0, 0));
        }
        Ok(())
    }

    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let (lap, _stamp) = decode(msg)?;
        if lap + 1 >= self.laps {
            self.returned += 1;
            if self.returned == self.burst as u64 {
                ctx.decide(true);
            }
        } else {
            ctx.send(dir, encode(lap + 1, self.returned));
        }
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.returned.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ProcessError::InvalidState("leader state is 8 bytes".into()))?;
        self.returned = u64::from_le_bytes(arr);
        Ok(())
    }
}

struct StormFollower {
    seen: u64,
}

impl Process for StormFollower {
    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let (lap, _stamp) = decode(msg)?;
        self.seen += 1;
        ctx.send(dir, encode(lap, self.seen));
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.seen.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ProcessError::InvalidState("follower state is 8 bytes".into()))?;
        self.seen = u64::from_le_bytes(arr);
        Ok(())
    }
}

impl Protocol for StatefulStorm {
    fn name(&self) -> &'static str {
        "stateful-storm"
    }

    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormLeader { laps: self.laps, burst: self.burst, returned: 0 })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormFollower { seen: 0 })
    }
}

/// A unidirectional one-pass (deterministic on real threads too).
struct OnePassToken;

impl Protocol for OnePassToken {
    fn name(&self) -> &'static str {
        "one-pass-token"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        struct L;
        impl Process for L {
            fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
                ctx.send(Direction::Clockwise, encode(0, 0));
                Ok(())
            }
            fn on_message(
                &mut self,
                _d: Direction,
                _m: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.decide(true);
                Ok(())
            }
        }
        Box::new(L)
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        struct F;
        impl Process for F {
            fn on_message(
                &mut self,
                dir: Direction,
                msg: &BitString,
                ctx: &mut Context,
            ) -> ProcessResult {
                ctx.send(dir, msg.clone());
                Ok(())
            }
        }
        Box::new(F)
    }
}

fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.decision, b.decision, "{label}: decision");
    assert_eq!(a.stats, b.stats, "{label}: stats");
    assert_eq!(a.trace, b.trace, "{label}: trace");
    assert_eq!(a.trace_ring, b.trace_ring, "{label}: trace ring");
}

fn runner(scheduler: &Scheduler, shards: usize, metrics: Option<Metrics>) -> RingRunner {
    let mut r = RingRunner::new();
    r.scheduler(scheduler.clone()).record_trace(true).shards(shards);
    if let Some(m) = metrics {
        r.metrics(m);
    }
    r
}

// ---------------------------------------------------------------------------
// Equivalence: metrics on vs. off is byte-identical.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial and sharded runs, every policy: an enabled registry must
    /// not perturb decision, stats, or a single trace event.
    #[test]
    fn metered_runs_are_byte_identical_to_unmetered(
        n in 2usize..20,
        burst in 1usize..4,
        laps in 1u64..4,
        scheduler_pick in 0usize..3,
        shards in 1usize..5,
    ) {
        let proto = StatefulStorm { burst, laps };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let label = format!("{scheduler:?} n={n} shards={shards}");
        let plain = runner(&scheduler, shards, None).run(&proto, &w).unwrap();
        let metrics = Metrics::enabled();
        let metered = runner(&scheduler, shards, Some(metrics.clone())).run(&proto, &w).unwrap();
        assert_outcomes_identical(&plain, &metered, &label);
        // And the registry really recorded the run it watched.
        let report = metrics.run_report();
        prop_assert_eq!(
            report.counters.get("engine.deliveries").copied().unwrap_or(0),
            plain.stats.deliveries as u64
        );
        prop_assert_eq!(
            report.counters.get("engine.bits_sent").copied().unwrap_or(0),
            plain.stats.total_bits as u64
        );
    }

    /// Kill/resume with metrics on both sides of the split still matches
    /// the unmetered uninterrupted baseline byte for byte.
    #[test]
    fn metered_kill_resume_matches_unmetered_baseline(
        n in 4usize..16,
        burst in 1usize..4,
        laps in 1u64..3,
        k in 0usize..60,
        scheduler_pick in 0usize..3,
        shards in 1usize..4,
    ) {
        let proto = StatefulStorm { burst, laps };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let baseline = runner(&scheduler, shards, None).run(&proto, &w).unwrap();
        let metrics = Metrics::enabled();
        let metered = runner(&scheduler, shards, Some(metrics.clone()));
        match metered.run_until(&proto, &w, k).expect("pause point is reachable") {
            RunPhase::Done(outcome) => assert_outcomes_identical(&outcome, &baseline, "done"),
            RunPhase::Paused(snap) => {
                let resumed = metered.resume(&proto, &w, &snap).expect("resume completes");
                assert_outcomes_identical(&resumed, &baseline, "stitched");
                // The split run timed both sides of the checkpoint.
                let report = metrics.run_report();
                prop_assert!(report.timings.contains_key("checkpoint.capture"));
                prop_assert!(report.timings.contains_key("checkpoint.restore"));
            }
        }
    }
}

#[test]
fn metered_threaded_runs_match_unmetered() {
    for n in [1usize, 2, 5, 16] {
        let plain = ThreadedRunner::new().run(&OnePassToken, &word(n)).unwrap();
        let metrics = Metrics::enabled();
        let mut metered_runner = ThreadedRunner::new();
        metered_runner.metrics(metrics.clone());
        let metered = metered_runner.run(&OnePassToken, &word(n)).unwrap();
        assert_eq!(plain, metered, "n={n}");
        assert_eq!(metrics.counter_value("threaded.bits_sent"), plain.total_bits as u64);
        assert_eq!(metrics.counter_value("threaded.messages"), plain.message_count as u64);
    }
}

// ---------------------------------------------------------------------------
// Content: the registry fills with real telemetry.
// ---------------------------------------------------------------------------

#[test]
fn sharded_run_report_carries_engine_and_shard_telemetry() {
    let metrics = Metrics::enabled();
    let proto = StatefulStorm { burst: 3, laps: 4 };
    let out = runner(&Scheduler::Fifo, 4, Some(metrics.clone())).run(&proto, &word(64)).unwrap();
    assert!(out.decision.unwrap_or(false));

    let report = metrics.run_report();
    assert_eq!(report.version, REPORT_VERSION);
    let counter = |name: &str| report.counters.get(name).copied().unwrap_or(0);
    assert_eq!(counter("engine.deliveries"), out.stats.deliveries as u64);
    assert_eq!(counter("engine.scheduler_picks"), out.stats.deliveries as u64);
    assert_eq!(counter("engine.messages"), out.stats.message_count as u64);
    assert_eq!(counter("engine.bits_sent"), out.stats.total_bits as u64);
    assert!(counter("shard.epoch_grants") > 0, "{report:?}");
    assert!(counter("shard.channel_ops") > 0, "{report:?}");
    assert!(counter("pool.jobs") >= 4, "one pool job per shard worker: {report:?}");

    // Epoch lengths land in the histogram; total observations equal the
    // epoch count, and every epoch is traced here (record_trace(true)).
    let epoch_hist = report.histograms.get("shard.epoch_len").expect("epoch histogram");
    let observations: u64 = epoch_hist.iter().map(|b| b.count).sum();
    assert_eq!(observations, counter("shard.epochs_traced") + counter("shard.epochs_aggregate"));
    assert!(observations > 0);

    // Every shard reports a utilization timeline with some busy time.
    assert_eq!(report.shard_utilization.len(), 4, "{report:?}");
    for shard in &report.shard_utilization {
        assert!(shard.busy_ns > 0, "shard {} never went busy: {report:?}", shard.shard);
    }

    // The report round-trips through its JSON wire format.
    let parsed = RunReport::from_json(&report.to_json_pretty()).expect("round-trip");
    assert_eq!(parsed, report);
}

#[test]
fn serial_run_report_has_no_shard_telemetry() {
    let metrics = Metrics::enabled();
    let proto = StatefulStorm { burst: 2, laps: 2 };
    let out = runner(&Scheduler::Fifo, 1, Some(metrics.clone())).run(&proto, &word(12)).unwrap();
    let report = metrics.run_report();
    assert_eq!(
        report.counters.get("engine.deliveries").copied(),
        Some(out.stats.deliveries as u64)
    );
    assert!(!report.counters.contains_key("shard.epoch_grants"), "{report:?}");
    assert!(report.shard_utilization.is_empty(), "{report:?}");
}

#[test]
fn one_registry_accumulates_across_runs_and_engines() {
    let metrics = Metrics::enabled();
    let proto = StatefulStorm { burst: 2, laps: 2 };
    let first = runner(&Scheduler::Fifo, 1, Some(metrics.clone())).run(&proto, &word(8)).unwrap();
    let second = runner(&Scheduler::Fifo, 2, Some(metrics.clone())).run(&proto, &word(8)).unwrap();
    assert_eq!(first.stats, second.stats, "sharding never changes stats");
    assert_eq!(
        metrics.counter_value("engine.deliveries"),
        (first.stats.deliveries + second.stats.deliveries) as u64,
        "counters accumulate across runs sharing the registry"
    );
}
