//! Property-based tests for the simulator engine.
//!
//! A parameterized "relay" protocol family with arbitrary payload sizes
//! and hop counts lets us pin the engine's accounting and scheduling
//! invariants without depending on any specific paper protocol.

use proptest::prelude::*;
use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_sim::{
    Context, Direction, Process, ProcessResult, Protocol, RingRunner, Scheduler, Topology,
};

/// Leader sends a fixed payload that circles the ring `laps` times, then
/// accepts. Every hop is one message of exactly `payload_bits` bits plus a
/// delta-coded lap counter.
#[derive(Clone)]
struct Relay {
    payload_bits: usize,
    laps: u64,
}

impl Relay {
    fn message(&self, lap: u64) -> BitString {
        let mut w = BitWriter::new();
        w.write_elias_delta(lap + 1);
        for i in 0..self.payload_bits {
            w.write_bit(i % 2 == 0);
        }
        w.finish()
    }

    fn lap_of(&self, msg: &BitString) -> u64 {
        BitReader::new(msg).read_elias_delta().expect("own encoding") - 1
    }

    fn message_bits(&self, lap: u64) -> usize {
        ringleader_bitio::codes::elias_delta_len(lap + 1) + self.payload_bits
    }

    /// Exact total for a ring of `n`: `laps` full circles.
    fn predicted_bits(&self, n: usize) -> usize {
        (0..self.laps).map(|lap| self.message_bits(lap) * n).sum()
    }
}

struct RelayLeader {
    proto: Relay,
}

impl Process for RelayLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, self.proto.message(0));
        Ok(())
    }

    fn on_message(&mut self, _d: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let lap = self.proto.lap_of(msg) + 1;
        if lap >= self.proto.laps {
            ctx.decide(true);
        } else {
            ctx.send(Direction::Clockwise, self.proto.message(lap));
        }
        Ok(())
    }
}

struct RelayFollower {
    proto: Relay,
}

impl Process for RelayFollower {
    fn on_message(&mut self, _d: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let lap = self.proto.lap_of(msg);
        ctx.send(Direction::Clockwise, self.proto.message(lap));
        Ok(())
    }
}

impl Protocol for Relay {
    fn name(&self) -> &'static str {
        "relay"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RelayLeader { proto: self.clone() })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(RelayFollower { proto: self.clone() })
    }
}

fn unary_word(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

proptest! {
    /// Accounting is exact for arbitrary payload sizes, lap counts, and
    /// ring sizes.
    #[test]
    fn accounting_is_exact(n in 1usize..40, payload_bits in 0usize..64, laps in 1u64..5) {
        let proto = Relay { payload_bits, laps };
        let outcome = RingRunner::new().run(&proto, &unary_word(n)).unwrap();
        prop_assert!(outcome.accepted());
        prop_assert_eq!(outcome.stats.total_bits, proto.predicted_bits(n));
        prop_assert_eq!(outcome.stats.message_count, n * laps as usize);
        prop_assert_eq!(outcome.stats.deliveries, n * laps as usize);
        // Per-link accounting sums to the total.
        let link_sum: usize = (0..n).map(|i| outcome.stats.link_bits(i)).sum();
        prop_assert_eq!(link_sum, outcome.stats.total_bits);
        // Unidirectional: nothing counter-clockwise.
        prop_assert!(outcome.stats.counter_clockwise_link_bits.iter().all(|&b| b == 0));
    }

    /// Every scheduler produces the same measurement for token protocols.
    #[test]
    fn schedulers_agree_on_token_protocols(
        n in 1usize..24,
        payload_bits in 0usize..32,
        laps in 1u64..4,
        seed: u64,
    ) {
        let proto = Relay { payload_bits, laps };
        let word = unary_word(n);
        let fifo = RingRunner::new().run(&proto, &word).unwrap();
        for sched in [Scheduler::Random { seed }, Scheduler::LongestQueue] {
            let mut runner = RingRunner::new();
            runner.scheduler(sched);
            let other = runner.run(&proto, &word).unwrap();
            prop_assert_eq!(fifo.decision, other.decision);
            prop_assert_eq!(fifo.stats.total_bits, other.stats.total_bits);
            prop_assert_eq!(fifo.stats.deliveries, other.stats.deliveries);
        }
    }

    /// Traces, when recorded, reconcile with the statistics: the bits in
    /// Send events sum to total_bits, and sends/deliveries balance.
    #[test]
    fn traces_reconcile_with_stats(n in 1usize..20, payload_bits in 0usize..16) {
        let proto = Relay { payload_bits, laps: 2 };
        let mut runner = RingRunner::new();
        runner.record_trace(true);
        let outcome = runner.run(&proto, &unary_word(n)).unwrap();
        let trace = outcome.trace.unwrap();
        let sent_bits: usize = trace
            .events()
            .iter()
            .filter(|e| e.kind == ringleader_sim::EventKind::Send)
            .map(|e| e.payload.len())
            .sum();
        prop_assert_eq!(sent_bits, outcome.stats.total_bits);
        let sends = trace.events().iter().filter(|e| e.kind == ringleader_sim::EventKind::Send).count();
        let delivers = trace.events().iter().filter(|e| e.kind == ringleader_sim::EventKind::Deliver).count();
        prop_assert_eq!(sends, outcome.stats.message_count);
        prop_assert_eq!(delivers, outcome.stats.deliveries);
        // A single-token relay obeys token discipline by construction.
        prop_assert!(ringleader_sim::validate_token_discipline(&trace));
    }

    /// Info states extracted from a trace assign each processor exactly
    /// its own sends and receives.
    #[test]
    fn info_states_partition_the_trace(n in 1usize..16) {
        let proto = Relay { payload_bits: 3, laps: 1 };
        let mut runner = RingRunner::new();
        runner.record_trace(true);
        let word = unary_word(n);
        let outcome = runner.run(&proto, &word).unwrap();
        let trace = outcome.trace.unwrap();
        let states = trace.info_states(word.symbols());
        prop_assert_eq!(states.len(), n);
        let total_entries: usize = states.iter().map(|s| s.entries.len()).sum();
        prop_assert_eq!(total_entries, trace.events().len());
        // Each processor sends once and receives once per lap (leader too).
        for (i, s) in states.iter().enumerate() {
            prop_assert_eq!(s.entries.len(), 2, "processor {}", i);
        }
    }

    /// The event budget aborts exactly when deliveries would exceed it.
    #[test]
    fn event_budget_is_respected(n in 2usize..12, laps in 2u64..5) {
        let proto = Relay { payload_bits: 1, laps };
        let needed = n * laps as usize;
        let mut runner = RingRunner::new();
        runner.max_events(needed); // exactly enough
        prop_assert!(runner.run(&proto, &unary_word(n)).is_ok());
        let mut runner = RingRunner::new();
        runner.max_events(needed - 1); // one short
        let limited = runner.run(&proto, &unary_word(n));
        let hit_limit = matches!(
            limited,
            Err(ringleader_sim::SimError::EventLimitExceeded { limit: _ })
        );
        prop_assert!(hit_limit);
    }
}
