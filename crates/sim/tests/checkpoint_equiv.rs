//! Checkpoint/restore equivalence: `run → snapshot at event k → restore
//! → finish` must be **byte-identical** — trace, stats, and exact error
//! positions — to an uninterrupted run, for every engine and scheduling
//! policy, including snapshots taken mid-fault-plan and snapshots that
//! cross engines (capture serial, resume sharded, and vice versa).

use proptest::prelude::*;
use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::{BitReader, BitString, BitWriter};
use ringleader_sim::{
    Context, Corruption, Direction, Fault, FaultAction, FaultPlan, Outcome, Process, ProcessError,
    ProcessResult, Protocol, RingRunner, RunPhase, Scheduler, SimError, ThreadedRunner, Topology,
};

fn word(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

fn schedulers() -> [Scheduler; 3] {
    [Scheduler::Fifo, Scheduler::LongestQueue, Scheduler::Random { seed: 0xC0FFEE }]
}

// ---------------------------------------------------------------------------
// A genuinely stateful protocol: observables depend on per-process
// mutable state, so a restore that loses or corrupts state cannot stay
// byte-identical.
// ---------------------------------------------------------------------------

/// `burst` tokens circulate the bidirectional ring (half clockwise, half
/// counter-clockwise, so several messages are in flight and the
/// scheduling policy matters). Every follower counts its deliveries and
/// stamps the *current count* into each forwarded payload — wire traffic
/// is a function of process state. The leader decides once every token
/// has come home `laps` times.
#[derive(Clone)]
struct StatefulStorm {
    burst: usize,
    laps: u64,
}

fn encode(lap: u64, stamp: u64) -> BitString {
    let mut w = BitWriter::new();
    w.write_elias_delta(lap + 1);
    w.write_elias_delta(stamp + 1);
    w.finish()
}

fn decode(msg: &BitString) -> Result<(u64, u64), ProcessError> {
    let mut r = BitReader::new(msg);
    let lap = r.read_elias_delta()? - 1;
    let stamp = r.read_elias_delta()? - 1;
    Ok((lap, stamp))
}

struct StormLeader {
    laps: u64,
    burst: usize,
    returned: u64,
}

impl Process for StormLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        for i in 0..self.burst {
            let dir = if i % 2 == 0 { Direction::Clockwise } else { Direction::CounterClockwise };
            ctx.send(dir, encode(0, 0));
        }
        Ok(())
    }

    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let (lap, _stamp) = decode(msg)?;
        if lap + 1 >= self.laps {
            self.returned += 1;
            if self.returned == self.burst as u64 {
                ctx.decide(true);
            }
        } else {
            ctx.send(dir, encode(lap + 1, self.returned));
        }
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.returned.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ProcessError::InvalidState("leader state is 8 bytes".into()))?;
        self.returned = u64::from_le_bytes(arr);
        Ok(())
    }
}

struct StormFollower {
    seen: u64,
}

impl Process for StormFollower {
    fn on_message(&mut self, dir: Direction, msg: &BitString, ctx: &mut Context) -> ProcessResult {
        let (lap, _stamp) = decode(msg)?;
        self.seen += 1;
        // The stamp makes the payload width depend on process state:
        // losing `seen` across a restore changes the bits on the wire.
        ctx.send(dir, encode(lap, self.seen));
        Ok(())
    }

    fn save_state(&self) -> Option<Vec<u8>> {
        Some(self.seen.to_le_bytes().to_vec())
    }

    fn load_state(&mut self, bytes: &[u8]) -> ProcessResult {
        let arr: [u8; 8] = bytes
            .try_into()
            .map_err(|_| ProcessError::InvalidState("follower state is 8 bytes".into()))?;
        self.seen = u64::from_le_bytes(arr);
        Ok(())
    }
}

impl Protocol for StatefulStorm {
    fn name(&self) -> &'static str {
        "stateful-storm"
    }

    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormLeader { laps: self.laps, burst: self.burst, returned: 0 })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormFollower { seen: 0 })
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn assert_outcomes_identical(a: &Outcome, b: &Outcome, label: &str) {
    assert_eq!(a.decision, b.decision, "{label}: decision");
    assert_eq!(a.stats, b.stats, "{label}: stats");
    assert_eq!(a.trace, b.trace, "{label}: trace");
    assert_eq!(a.trace_ring, b.trace_ring, "{label}: trace ring");
}

/// Baseline run, then pause at `k` on `capture` and finish on `resume`;
/// the stitched run must match the baseline byte for byte. Returns
/// whether the run actually paused (small runs may finish first).
fn assert_kill_resume_identical(
    capture: &RingRunner,
    resume: &RingRunner,
    baseline: &Outcome,
    proto: &StatefulStorm,
    w: &Word,
    k: usize,
    label: &str,
) -> bool {
    match capture.run_until(proto, w, k).expect("pause point is reachable") {
        RunPhase::Done(outcome) => {
            assert_outcomes_identical(&outcome, baseline, label);
            false
        }
        RunPhase::Paused(snap) => {
            assert!(snap.deliveries() >= k, "{label}");
            let resumed = resume.resume(proto, w, &snap).expect("resume completes");
            assert_outcomes_identical(&resumed, baseline, label);
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial capture → serial resume, across every scheduling policy
    /// and a random pause point.
    #[test]
    fn serial_snapshot_restore_is_byte_identical(
        n in 2usize..16,
        burst in 1usize..4,
        laps in 1u64..4,
        k in 0usize..80,
        scheduler_pick in 0usize..3,
    ) {
        let proto = StatefulStorm { burst, laps };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let mut runner = RingRunner::new();
        runner.scheduler(scheduler).record_trace(true);
        let baseline = runner.run(&proto, &w).unwrap();
        assert_kill_resume_identical(&runner, &runner, &baseline, &proto, &w, k, "serial");
    }

    /// Sharded capture → sharded resume (round-boundary quiesce), against
    /// the *serial* baseline: the stitched sharded run must still be
    /// byte-identical to one uninterrupted serial run.
    #[test]
    fn sharded_snapshot_restore_matches_serial(
        n in 4usize..16,
        burst in 1usize..4,
        laps in 1u64..3,
        k in 0usize..60,
        scheduler_pick in 0usize..3,
        shards in 2usize..5,
    ) {
        let proto = StatefulStorm { burst, laps };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let mut serial = RingRunner::new();
        serial.scheduler(scheduler.clone()).record_trace(true);
        let baseline = serial.run(&proto, &w).unwrap();
        let mut sharded = RingRunner::new();
        sharded.scheduler(scheduler).record_trace(true).shards(shards);
        assert_kill_resume_identical(&sharded, &sharded, &baseline, &proto, &w, k, "sharded");
    }

    /// Snapshots are engine-agnostic: serial→sharded and sharded→serial
    /// both reproduce the serial baseline.
    #[test]
    fn snapshots_cross_engines(
        n in 4usize..14,
        k in 1usize..40,
        scheduler_pick in 0usize..3,
        shards in 2usize..4,
    ) {
        let proto = StatefulStorm { burst: 2, laps: 2 };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let mut serial = RingRunner::new();
        serial.scheduler(scheduler.clone()).record_trace(true);
        let mut sharded = RingRunner::new();
        sharded.scheduler(scheduler).record_trace(true).shards(shards);
        let baseline = serial.run(&proto, &w).unwrap();
        assert_kill_resume_identical(&serial, &sharded, &baseline, &proto, &w, k, "serial→sharded");
        assert_kill_resume_identical(&sharded, &serial, &baseline, &proto, &w, k, "sharded→serial");
    }

    /// Repeated pause/resume — checkpoint every `step` deliveries until
    /// done — matches one uninterrupted run, and snapshots survive a
    /// serde round trip between legs.
    #[test]
    fn chained_checkpoints_are_transparent(
        n in 2usize..12,
        step in 1usize..9,
        scheduler_pick in 0usize..3,
    ) {
        let proto = StatefulStorm { burst: 3, laps: 2 };
        let w = word(n);
        let scheduler = schedulers()[scheduler_pick].clone();
        let mut runner = RingRunner::new();
        runner.scheduler(scheduler).record_trace(true);
        let baseline = runner.run(&proto, &w).unwrap();

        let mut at = step;
        let mut phase = runner.run_until(&proto, &w, at).unwrap();
        while let RunPhase::Paused(snap) = phase {
            // Serialize/deserialize between legs, as the CLI would.
            let content = serde::Serialize::to_content(&*snap);
            let snap = serde::Deserialize::from_content(&content).unwrap();
            at += step;
            phase = runner.resume_until(&proto, &w, &snap, at).unwrap();
        }
        let outcome = phase.outcome().expect("loop ends when done");
        assert_outcomes_identical(&outcome, &baseline, "chained");
    }
}

// ---------------------------------------------------------------------------
// Error runs: the pause must not move, mask, or duplicate failures.
// ---------------------------------------------------------------------------

/// A fault plan that corrupts a late delivery: snapshotting *before* the
/// fault fires and resuming (re-supplying the plan) must produce the
/// exact same error at the exact same position as the uninterrupted run.
#[test]
fn snapshot_mid_fault_plan_reproduces_the_exact_error() {
    let proto = StatefulStorm { burst: 2, laps: 3 };
    let w = word(8);
    let position = 5;
    let mut plan = FaultPlan::new();
    plan.push(Fault {
        position,
        delivery: 4,
        recurring: false,
        action: FaultAction::Corrupt(Corruption::Zero),
    });

    for scheduler in schedulers() {
        for shards in [1usize, 3] {
            let mut runner = RingRunner::new();
            runner
                .scheduler(scheduler.clone())
                .record_trace(true)
                .shards(shards)
                .fault_plan(plan.clone());
            let baseline = runner.run(&proto, &w).expect_err("corruption kills the run");
            let SimError::Process { position: base_pos, source: base_src } = &baseline else {
                panic!("expected a process error, got {baseline:?}");
            };
            assert_eq!(*base_pos, position);

            // Pause well before the fault fires, then resume with the
            // plan re-supplied.
            for k in [1usize, 6, 11] {
                match runner.run_until(&proto, &w, k) {
                    Ok(RunPhase::Paused(snap)) => {
                        let err = runner.resume(&proto, &w, &snap).expect_err("fault still fires");
                        let SimError::Process { position: pos, source: src } = &err else {
                            panic!("expected a process error, got {err:?}");
                        };
                        assert_eq!(pos, base_pos, "k={k}");
                        assert_eq!(src, base_src, "k={k}");
                    }
                    Ok(RunPhase::Done(_)) => panic!("the faulty run cannot finish"),
                    Err(err) => {
                        // The pause point may land after the fault fires.
                        assert_eq!(err, baseline, "k={k}");
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Threaded runner: restore-only.
// ---------------------------------------------------------------------------

/// Single-token variant: with one message in flight at a time the bit
/// totals are schedule-independent, which the threaded runner (whose
/// schedule belongs to the OS) requires to match the event engine.
#[derive(Clone)]
struct StatefulRelay {
    laps: u64,
}

impl Protocol for StatefulRelay {
    fn name(&self) -> &'static str {
        "stateful-relay"
    }

    fn topology(&self) -> Topology {
        Topology::Unidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormLeader { laps: self.laps, burst: 1, returned: 0 })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(StormFollower { seen: 0 })
    }
}

#[test]
fn threaded_resume_matches_event_engine_observables() {
    let proto = StatefulRelay { laps: 3 };
    let w = word(6);
    let runner = RingRunner::new();
    let baseline = runner.run(&proto, &w).unwrap();

    for k in [1usize, 4, 9] {
        let Some(snap) = runner.run_until(&proto, &w, k).unwrap().snapshot() else {
            continue;
        };
        let threaded = ThreadedRunner::new().resume(&proto, &w, &snap).unwrap();
        assert_eq!(Some(threaded.decision), baseline.decision, "k={k}");
        assert_eq!(threaded.total_bits, baseline.stats.total_bits, "k={k}");
        assert_eq!(threaded.message_count, baseline.stats.message_count, "k={k}");
    }
}

#[test]
fn threaded_resume_rejects_a_mismatched_snapshot() {
    let proto = StatefulStorm { burst: 2, laps: 2 };
    let snap = RingRunner::new()
        .run_until(&proto, &word(6), 3)
        .unwrap()
        .snapshot()
        .expect("storm runs longer than 3 deliveries");
    let err = ThreadedRunner::new().resume(&proto, &word(7), &snap).unwrap_err();
    assert!(matches!(err, SimError::Snapshot { .. }), "{err:?}");
}

// ---------------------------------------------------------------------------
// Trace rings ride through checkpoints too.
// ---------------------------------------------------------------------------

#[test]
fn trace_ring_survives_checkpoints_and_matches_the_trace_tail() {
    let proto = StatefulStorm { burst: 3, laps: 2 };
    let w = word(8);
    let capacity = 16;

    for shards in [1usize, 3] {
        let mut full = RingRunner::new();
        full.record_trace(true).shards(shards);
        let baseline = full.run(&proto, &w).unwrap();
        let trace = baseline.trace.as_ref().unwrap();

        let mut ringed = RingRunner::new();
        ringed.trace_ring(capacity).shards(shards);
        let direct = ringed.run(&proto, &w).unwrap();

        // Interrupted run with the same ring: identical ring contents.
        let stitched = match ringed.run_until(&proto, &w, 7).unwrap() {
            RunPhase::Done(o) => o,
            RunPhase::Paused(snap) => ringed.resume(&proto, &w, &snap).unwrap(),
        };
        assert_eq!(direct.trace_ring, stitched.trace_ring, "shards={shards}");

        // The ring holds exactly the tail of the full trace.
        let ring = direct.trace_ring.as_ref().unwrap();
        let tail: Vec<_> = trace.events().iter().rev().take(capacity).rev().collect();
        assert_eq!(ring.tail(capacity), tail, "shards={shards}");
        assert_eq!(
            ring.dropped() as usize,
            trace.events().len().saturating_sub(capacity),
            "shards={shards}"
        );
    }
}

// ---------------------------------------------------------------------------
// Capture preconditions.
// ---------------------------------------------------------------------------

#[test]
fn capture_requires_save_state() {
    /// A protocol that never implements `save_state`.
    struct Opaque;
    struct Hop;
    impl Process for Hop {
        fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
            ctx.send(Direction::Clockwise, BitString::parse("1").unwrap());
            Ok(())
        }
        fn on_message(
            &mut self,
            dir: Direction,
            msg: &BitString,
            ctx: &mut Context,
        ) -> ProcessResult {
            if ctx.is_leader() {
                ctx.decide(true);
            } else {
                let mut w = BitWriter::new();
                for _ in 0..=msg.len() {
                    w.write_bit(true);
                }
                ctx.send(dir, w.finish());
            }
            Ok(())
        }
    }
    impl Protocol for Opaque {
        fn name(&self) -> &'static str {
            "opaque"
        }
        fn topology(&self) -> Topology {
            Topology::Unidirectional
        }
        fn leader(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Hop)
        }
        fn follower(&self, _input: Symbol) -> Box<dyn Process> {
            Box::new(Hop)
        }
    }

    for shards in [1usize, 2] {
        let mut runner = RingRunner::new();
        runner.shards(shards);
        // Plain runs don't need save_state...
        assert!(runner.run(&Opaque, &word(4)).is_ok(), "shards={shards}");
        // ...but capture does.
        let err = runner.run_until(&Opaque, &word(4), 1).unwrap_err();
        assert!(matches!(err, SimError::Snapshot { .. }), "shards={shards}: {err:?}");
        assert!(err.to_string().contains("save_state"), "shards={shards}: {err}");
    }
}
