//! Engine-level determinism audit: a seeded run is a *function* of
//! (protocol, word, scheduler). Same seed ⇒ same delivery order ⇒ same
//! trace ⇒ same `total_bits`. This is what makes every experiment in the
//! workspace regenerable byte-for-byte.
//!
//! The workload is deliberately contention-heavy: two tokens circulate in
//! opposite directions around a bidirectional ring, so the random
//! scheduler makes a genuine choice at nearly every step — unlike
//! one-token protocols, where scheduling is immaterial.

use ringleader_automata::{Alphabet, Symbol, Word};
use ringleader_bitio::BitString;
use ringleader_sim::{
    Context, Direction, Outcome, Process, ProcessResult, Protocol, RingRunner, Scheduler, SimError,
    Topology,
};

/// Leader launches one clockwise and one counter-clockwise token; followers
/// forward whatever arrives, preserving direction; the leader accepts once
/// both tokens return.
struct CounterRotate;

struct CrLeader {
    returned: usize,
}

impl Process for CrLeader {
    fn on_start(&mut self, ctx: &mut Context) -> ProcessResult {
        ctx.send(Direction::Clockwise, BitString::parse("101").unwrap());
        ctx.send(Direction::CounterClockwise, BitString::parse("0110").unwrap());
        Ok(())
    }

    fn on_message(&mut self, _d: Direction, _m: &BitString, ctx: &mut Context) -> ProcessResult {
        self.returned += 1;
        if self.returned == 2 {
            ctx.decide(true);
        }
        Ok(())
    }
}

struct CrFollower;

impl Process for CrFollower {
    fn on_message(&mut self, d: Direction, m: &BitString, ctx: &mut Context) -> ProcessResult {
        ctx.send(d, m.clone());
        Ok(())
    }
}

impl Protocol for CounterRotate {
    fn name(&self) -> &'static str {
        "counter-rotate"
    }

    fn topology(&self) -> Topology {
        Topology::Bidirectional
    }

    fn leader(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(CrLeader { returned: 0 })
    }

    fn follower(&self, _input: Symbol) -> Box<dyn Process> {
        Box::new(CrFollower)
    }
}

fn ring(n: usize) -> Word {
    Word::from_str(&"a".repeat(n), &Alphabet::from_chars("a").unwrap()).unwrap()
}

fn traced_run(n: usize, scheduler: Scheduler) -> Result<Outcome, SimError> {
    let mut runner = RingRunner::new();
    runner.scheduler(scheduler);
    runner.record_trace(true);
    runner.run(&CounterRotate, &ring(n))
}

#[test]
fn same_seed_same_execution() {
    for n in [2usize, 3, 7, 16] {
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = traced_run(n, Scheduler::Random { seed }).unwrap();
            let b = traced_run(n, Scheduler::Random { seed }).unwrap();
            // Bit-identical replay: decision, stats, and the full event
            // trace, including delivery order.
            assert_eq!(a.decision, b.decision, "n={n} seed={seed}");
            assert_eq!(a.stats, b.stats, "n={n} seed={seed}");
            assert_eq!(a.trace, b.trace, "n={n} seed={seed}");
        }
    }
}

#[test]
fn total_bits_is_schedule_invariant_for_token_protocols() {
    // The two tokens never interact, so every legal schedule delivers the
    // same multiset of messages: totals must agree across all policies.
    for n in [2usize, 5, 12] {
        let fifo = traced_run(n, Scheduler::Fifo).unwrap();
        // 3-bit token circles n hops + 4-bit token circles n hops.
        assert_eq!(fifo.stats.total_bits, 7 * n, "n={n}");
        for scheduler in
            [Scheduler::Random { seed: 7 }, Scheduler::Random { seed: 8 }, Scheduler::LongestQueue]
        {
            let other = traced_run(n, scheduler.clone()).unwrap();
            assert_eq!(other.decision, fifo.decision, "n={n} {scheduler:?}");
            assert_eq!(other.stats.total_bits, fifo.stats.total_bits, "n={n} {scheduler:?}");
            assert_eq!(other.stats.message_count, fifo.stats.message_count, "n={n} {scheduler:?}");
        }
    }
}

#[test]
fn pooled_grid_replays_serial_grid_exactly() {
    // The sweep layer's foundation: fanning (n, seed) grid points out to
    // a pool must reproduce the serial loop bit for bit — same decisions,
    // same stats, same traces, same order. Run the contention-heavy
    // workload over a grid and compare every worker count against the
    // serial reference.
    let grid: Vec<(usize, u64)> = [2usize, 3, 7, 16]
        .into_iter()
        .flat_map(|n| [0u64, 1, 42, 1337].into_iter().map(move |seed| (n, seed)))
        .collect();
    let reference: Vec<_> = grid
        .iter()
        .map(|&(n, seed)| {
            let o = traced_run(n, Scheduler::Random { seed }).unwrap();
            (o.decision, o.stats, o.trace)
        })
        .collect();
    for workers in [1usize, 4, 16] {
        let pooled = ringleader_sim::pool::ordered_map(workers, grid.clone(), |_, (n, seed)| {
            let o = traced_run(n, Scheduler::Random { seed }).unwrap();
            (o.decision, o.stats, o.trace)
        });
        assert_eq!(pooled, reference, "workers={workers}");
    }
}

#[test]
fn different_seeds_may_reorder_but_stay_consistent() {
    // With 16 processors and two counter-rotating tokens there are many
    // scheduling decisions; two far-apart seeds almost surely differ in
    // delivery order, yet both runs must satisfy the same accounting.
    let a = traced_run(16, Scheduler::Random { seed: 1 }).unwrap();
    let b = traced_run(16, Scheduler::Random { seed: 999_999 }).unwrap();
    assert_eq!(a.stats.total_bits, b.stats.total_bits);
    assert_eq!(a.stats.deliveries, b.stats.deliveries);
    // Identical multiset of events is required; identical order is not.
    // (We do not assert traces differ — equality would be legal, just
    // astronomically unlikely — only that both reconcile.)
    let bits_in_trace = |o: &Outcome| -> usize {
        o.trace
            .as_ref()
            .unwrap()
            .events()
            .iter()
            .filter(|e| e.kind == ringleader_sim::EventKind::Send)
            .map(|e| e.payload.len())
            .sum()
    };
    assert_eq!(bits_in_trace(&a), a.stats.total_bits);
    assert_eq!(bits_in_trace(&b), b.stats.total_bits);
}
