//! The sharded event engine: contiguous arcs, boundary channels, and a
//! deterministic merge that replays the serial schedule exactly.
//!
//! # Architecture
//!
//! The ring `p₀ … pₙ₋₁` is partitioned into `S` contiguous **arcs**, one
//! per shard; shard `k` owns positions `[k·n/S, (k+1)·n/S)` and runs on a
//! worker of a dedicated [`ThreadPool`](crate::pool::ThreadPool). Link
//! queues whose receiver lies inside an arc are stored shard-locally in
//! structure-of-arrays slot queues ([`SlotQueues`]); the two links that
//! cross each arc boundary hand payloads off through the vendored
//! crossbeam channels.
//!
//! The **coordinator** (the caller's thread) owns everything that is
//! observable in a run's result: the [`ExecStats`], the [`Trace`], the
//! global event sequence, the delivery count, and — crucially — the
//! scheduling decisions. It maintains [`MetaLinks`], a payload-free
//! replica of the serial engine's link state driven by the same
//! [`LinkIndex`], and repeatedly:
//!
//! 1. picks the next *window* of deliveries exactly as the serial engine
//!    would (for [`Scheduler::Fifo`] the whole in-flight set is one
//!    window — every in-flight seq is smaller than any seq a new send can
//!    get, so the next `in_flight` picks are fixed; for `LongestQueue`
//!    and `Random` the window is a single delivery, reproducing the
//!    serial interleaving pick by pick, RNG draws included);
//! 2. dispatches each shard's slice of the window as one
//!    [`ShardJob::Round`];
//! 3. collects one [`RoundReport`] per commanded shard and **merges**
//!    them in window order, applying sends to `MetaLinks`, stats, and
//!    trace in exactly the order `apply_effects` would have.
//!
//! Because every result-bearing effect flows through the merge in serial
//! order, the sharded engine is **byte-identical to the serial engine**
//! for every shard count and policy: same `Outcome`, same trace, same
//! error on the same event. The serial path survives as the test oracle
//! (`tests/shard_equiv.rs`), exactly like the `NaiveChooser` oracle for
//! the scheduler index.
//!
//! # Why blocking boundary receives cannot deadlock
//!
//! A shard only blocks on a boundary channel for a delivery the
//! coordinator commanded, and the coordinator only commands deliveries of
//! messages it has already merged — which means the producing shard
//! routed the payload into the channel *before* reporting the round that
//! sent it. The payload is therefore already in the channel (or the
//! producer died, which disconnects the channel and surfaces as
//! [`SimError::ShardFailed`]).
//!
//! # Teardown
//!
//! [`Coordinator`]'s field order is load-bearing: dropping the job
//! senders first wakes every idle shard, their exits cascade through the
//! boundary-channel disconnects, and the per-run pool drops (and joins)
//! last. A shard that panics is caught by the pool's worker, which drops
//! the shard's channels; the coordinator sees the disconnect as
//! `ShardFailed` on the next send or receive.

use std::collections::VecDeque;

use ringleader_automata::Word;
use ringleader_bitio::BitString;

use crossbeam::channel::{unbounded, Receiver, RecvError, Sender};

use crate::context::{Context, Process, ProcessError, ProcessResult, Protocol};
use crate::engine::{Outcome, RingRunner};
use crate::pool::ThreadPool;
use crate::sched::LinkIndex;
use crate::trace::{EventKind, Trace, TraceEvent};
use crate::{Direction, ExecStats, Scheduler, SimError, Topology};

/// One delivery command: deliver the head of the `(local_pos, direction)`
/// inbound queue to the process at `local_pos` within the shard's arc.
struct DeliverCmd {
    local_pos: usize,
    direction: Direction,
}

/// Work the coordinator hands a shard.
enum ShardJob {
    /// Run the leader's `on_start` (only ever sent to shard 0).
    Start,
    /// Execute these deliveries in order and report back.
    Round(Vec<DeliverCmd>),
}

/// A send a shard observed, in outbox order. `payload` is carried only
/// when tracing (the merge needs the bits for the trace; stats need only
/// the length).
struct SendRecord {
    direction: Direction,
    bits: usize,
    payload: Option<BitString>,
}

/// What one commanded delivery (or the leader start) did.
struct DeliveryReport {
    /// The delivered payload, carried only when tracing.
    payload: Option<BitString>,
    sends: Vec<SendRecord>,
    decision: Option<bool>,
    error: Option<ProcessError>,
}

/// A shard's answer to one [`ShardJob`]: reports for the commanded
/// deliveries in order, truncated at the first error or decision.
struct RoundReport {
    deliveries: Vec<DeliveryReport>,
}

/// One delivery of the coordinator's current window, in global order.
struct WindowEntry {
    receiver: usize,
    direction: Direction,
    shard: usize,
}

/// How one delivery's execution ended, from the shard's point of view.
enum EventEnd {
    /// Keep executing the round.
    Continue,
    /// A decision or handler error: stop the round and report.
    EndRun,
    /// A boundary channel disconnected: the run is being torn down —
    /// exit without reporting.
    NeighbourGone,
}

/// A payload-free replica of the serial engine's `Links`: the same queue
/// occupancy, the same head seqs, the same [`LinkIndex`] transitions —
/// so `choose()` returns exactly the serial pick at every step.
struct MetaLinks {
    queues: Vec<VecDeque<u64>>,
    index: Box<dyn LinkIndex>,
    occupied: usize,
    id_xor: usize,
    /// Total messages in flight across all links.
    in_flight: usize,
}

impl MetaLinks {
    fn new(n: usize, index: Box<dyn LinkIndex>) -> Self {
        let mut queues = Vec::with_capacity(2 * n);
        queues.resize_with(2 * n, VecDeque::new);
        Self { queues, index, occupied: 0, id_xor: 0, in_flight: 0 }
    }

    fn push(&mut self, link: usize, seq: u64) {
        let queue = &mut self.queues[link];
        queue.push_back(seq);
        let backlog = queue.len();
        if backlog == 1 {
            self.occupied += 1;
            self.id_xor ^= link;
        }
        self.in_flight += 1;
        self.index.on_push(link, seq, backlog);
    }

    /// Mirrors `Links::choose`, including the single-link fast path (the
    /// `Random` index consumes identical RNG state either way).
    fn choose(&mut self) -> Option<usize> {
        match self.occupied {
            0 => None,
            1 => {
                self.index.on_trivial_choose();
                Some(self.id_xor)
            }
            _ => Some(self.index.choose()),
        }
    }

    fn pop(&mut self, link: usize) {
        let queue = &mut self.queues[link];
        queue.pop_front().expect("chosen link non-empty");
        let backlog = queue.len();
        if backlog == 0 {
            self.occupied -= 1;
            self.id_xor ^= link;
        }
        self.in_flight -= 1;
        self.index.on_pop(link, queue.front().copied(), backlog);
    }
}

/// Structure-of-arrays inbound queues for one arc and one travel
/// direction: slot `q` feeds the arc's `q`-th process. The common case —
/// at most one message waiting per slot — stays in the flat `head` array
/// (one cache line per few slots); bursts spill to per-slot overflow
/// queues without disturbing the heads.
struct SlotQueues {
    head: Vec<Option<BitString>>,
    overflow: Vec<VecDeque<BitString>>,
}

impl SlotQueues {
    fn new(len: usize) -> Self {
        let mut overflow = Vec::with_capacity(len);
        overflow.resize_with(len, VecDeque::new);
        Self { head: vec![None; len], overflow }
    }

    fn push(&mut self, slot: usize, payload: BitString) {
        if self.head[slot].is_none() && self.overflow[slot].is_empty() {
            self.head[slot] = Some(payload);
        } else {
            self.overflow[slot].push_back(payload);
        }
    }

    fn pop(&mut self, slot: usize) -> Option<BitString> {
        let payload = self.head[slot].take()?;
        self.head[slot] = self.overflow[slot].pop_front();
        Some(payload)
    }
}

/// One shard: an arc of processes, their inbound queues, and the
/// channels tying it to the coordinator and its two neighbour shards.
struct ShardWorker {
    /// Global position of the arc's first process.
    lo: usize,
    /// Arc length (≥ 1).
    len: usize,
    known: Option<usize>,
    tracing: bool,
    procs: Vec<Box<dyn Process>>,
    /// Clockwise-travelling inbound queues: `cw` slot `q` feeds process
    /// `lo + q`; slot 0 is additionally fed by `left_rx`.
    cw: SlotQueues,
    /// Counter-clockwise inbound queues; slot `len - 1` is additionally
    /// fed by `right_rx`.
    ccw: SlotQueues,
    job_rx: Receiver<ShardJob>,
    report_tx: Sender<RoundReport>,
    /// Clockwise messages crossing the left boundary in.
    left_rx: Receiver<BitString>,
    /// Counter-clockwise messages crossing the right boundary in.
    right_rx: Receiver<BitString>,
    halt_rx: Receiver<()>,
    /// Clockwise messages crossing the right boundary out.
    cw_out: Sender<BitString>,
    /// Counter-clockwise messages crossing the left boundary out.
    ccw_out: Sender<BitString>,
}

impl ShardWorker {
    fn run(mut self) {
        let mut ctx = Context::new(false, self.known);
        loop {
            // Idle loop: wait for work, eagerly buffering boundary
            // traffic so round-time receives rarely block. Any
            // disconnect means the run is over.
            let job = crossbeam::channel::select! {
                recv(self.job_rx) -> j => match j {
                    Ok(job) => Some(job),
                    Err(RecvError) => return,
                },
                recv(self.left_rx) -> m => match m {
                    Ok(payload) => {
                        self.cw.push(0, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.right_rx) -> m => match m {
                    Ok(payload) => {
                        self.ccw.push(self.len - 1, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.halt_rx) -> _m => return,
            };
            if let Some(job) = job {
                if !self.execute(job, &mut ctx) {
                    return;
                }
            }
        }
    }

    /// Executes one job and reports. Returns `false` when a neighbour
    /// disconnect showed the run is being torn down (no report is sent;
    /// the coordinator observes the cascade as a channel disconnect).
    fn execute(&mut self, job: ShardJob, ctx: &mut Context) -> bool {
        let mut report = RoundReport { deliveries: Vec::new() };
        match job {
            ShardJob::Start => {
                ctx.reset(true);
                let result = self.procs[0].on_start(ctx);
                if matches!(
                    self.finish_event(ctx, 0, None, result, &mut report),
                    EventEnd::NeighbourGone
                ) {
                    return false;
                }
            }
            ShardJob::Round(cmds) => {
                for cmd in cmds {
                    let Some(payload) = self.take_inbound(cmd.local_pos, cmd.direction) else {
                        return false;
                    };
                    ctx.reset(self.lo + cmd.local_pos == 0);
                    let result = self.procs[cmd.local_pos].on_message(cmd.direction, &payload, ctx);
                    let delivered = self.tracing.then_some(payload);
                    match self.finish_event(ctx, cmd.local_pos, delivered, result, &mut report) {
                        EventEnd::Continue => {}
                        EventEnd::EndRun => break,
                        EventEnd::NeighbourGone => return false,
                    }
                }
            }
        }
        // A send failure here means the coordinator already went away;
        // the worker just retires.
        let _ = self.report_tx.send(report);
        true
    }

    /// Records one executed event into `report`, routing its sends.
    /// Sends are *recorded* unconditionally (the merge applies stats and
    /// trace from the records) but *routed* only when the handler
    /// neither erred (the serial engine discards a failing handler's
    /// outbox) nor decided (the run is over; routing would only stuff
    /// channels nobody will drain).
    fn finish_event(
        &mut self,
        ctx: &mut Context,
        local_pos: usize,
        delivered: Option<BitString>,
        result: ProcessResult,
        report: &mut RoundReport,
    ) -> EventEnd {
        let mut entry =
            DeliveryReport { payload: delivered, sends: Vec::new(), decision: None, error: None };
        if let Err(source) = result {
            entry.error = Some(source);
            report.deliveries.push(entry);
            return EventEnd::EndRun;
        }
        let decision = ctx.take_decision();
        let route = decision.is_none();
        let mut neighbour_gone = false;
        for (direction, payload) in ctx.drain_outbox() {
            entry.sends.push(SendRecord {
                direction,
                bits: payload.len(),
                payload: self.tracing.then(|| payload.clone()),
            });
            if route && !neighbour_gone {
                neighbour_gone = !self.route(local_pos, direction, payload);
            }
        }
        entry.decision = decision;
        report.deliveries.push(entry);
        if neighbour_gone {
            EventEnd::NeighbourGone
        } else if decision.is_some() {
            EventEnd::EndRun
        } else {
            EventEnd::Continue
        }
    }

    /// Pops the commanded inbound message, blocking on the boundary
    /// channel when the coordinator commanded a boundary delivery whose
    /// payload has not been buffered yet (it is guaranteed to be in the
    /// channel — see the module docs). `None` means the channel
    /// disconnected: tear-down.
    fn take_inbound(&mut self, local_pos: usize, direction: Direction) -> Option<BitString> {
        match direction {
            Direction::Clockwise => self.cw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos, 0, "interior CW queue empty on command");
                self.left_rx.recv().ok()
            }),
            Direction::CounterClockwise => self.ccw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos + 1, self.len, "interior CCW queue empty on command");
                self.right_rx.recv().ok()
            }),
        }
    }

    /// Hands a sent payload to the next hop: the shard-local slot queue
    /// of the neighbouring process, or the boundary channel when the
    /// neighbour lives on another shard. Returns `false` on a
    /// disconnected boundary (tear-down in progress).
    fn route(&mut self, local_pos: usize, direction: Direction, payload: BitString) -> bool {
        match direction {
            Direction::Clockwise => {
                if local_pos + 1 < self.len {
                    self.cw.push(local_pos + 1, payload);
                    true
                } else {
                    self.cw_out.send(payload).is_ok()
                }
            }
            Direction::CounterClockwise => {
                if local_pos > 0 {
                    self.ccw.push(local_pos - 1, payload);
                    true
                } else {
                    self.ccw_out.send(payload).is_ok()
                }
            }
        }
    }
}

/// Decodes a link id to `(receiver, direction)` — the inverse of the
/// send-side link formula in `apply_effects`.
fn decode_link(link: usize, n: usize) -> (usize, Direction) {
    if link < n {
        ((link + 1) % n, Direction::Clockwise)
    } else {
        (link - n, Direction::CounterClockwise)
    }
}

/// The coordinator's handles on the shard fleet.
///
/// Field order is drop order and is load-bearing: `job_txs` drop first
/// (waking idle shards into exit), the boundary/report channels cascade,
/// and the pool drops — and joins its workers — last.
struct Coordinator {
    job_txs: Vec<Sender<ShardJob>>,
    /// Held only so a clone-per-shard halt channel stays constructible;
    /// dropping it with the struct wakes any shard parked on it.
    _halt: Sender<()>,
    report_rxs: Vec<Receiver<RoundReport>>,
    _pool: ThreadPool,
    n: usize,
    shards: usize,
    topology: Topology,
    max_events: usize,
    tracing: bool,
    /// `bounds[k]` = the half-open global range of shard `k`'s arc.
    bounds: Vec<(usize, usize)>,
    /// `owner[p]` = the shard owning global position `p`.
    owner: Vec<usize>,
}

/// Runs `protocol` sharded over `shards ≥ 2` arcs, byte-identical to
/// [`RingRunner::run`]'s serial path.
pub(crate) fn run_sharded(
    runner: &RingRunner,
    protocol: &dyn Protocol,
    word: &Word,
    shards: usize,
) -> Result<Outcome, SimError> {
    let n = word.len();
    let known = runner.known_ring_size.then_some(n);
    let tracing = runner.record_trace;

    let mut processes: Vec<Box<dyn Process>> = Vec::with_capacity(n);
    for (i, &sym) in word.symbols().iter().enumerate() {
        processes.push(if i == 0 { protocol.leader(sym) } else { protocol.follower(sym) });
    }

    let bounds: Vec<(usize, usize)> =
        (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
    let mut owner = vec![0usize; n];
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        for o in owner.iter_mut().take(hi).skip(lo) {
            *o = k;
        }
    }

    let mut job_txs = Vec::with_capacity(shards);
    let mut job_rxs = Vec::with_capacity(shards);
    let mut report_txs = Vec::with_capacity(shards);
    let mut report_rxs = Vec::with_capacity(shards);
    let mut cw_txs = Vec::with_capacity(shards);
    let mut cw_rxs = Vec::with_capacity(shards);
    let mut ccw_txs = Vec::with_capacity(shards);
    let mut ccw_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<ShardJob>();
        job_txs.push(tx);
        job_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<RoundReport>();
        report_txs.push(Some(tx));
        report_rxs.push(rx);
        let (tx, rx) = unbounded::<BitString>();
        cw_txs.push(Some(tx));
        cw_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<BitString>();
        ccw_txs.push(Some(tx));
        ccw_rxs.push(Some(rx));
    }
    let (halt_tx, halt_rx) = unbounded::<()>();

    let pool = ThreadPool::new(shards);
    let mut rest = processes;
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        let len = hi - lo;
        let tail = rest.split_off(len);
        let procs = rest;
        rest = tail;
        let worker = ShardWorker {
            lo,
            len,
            known,
            tracing,
            procs,
            cw: SlotQueues::new(len),
            ccw: SlotQueues::new(len),
            job_rx: job_rxs[k].take().expect("each job receiver is moved once"),
            report_tx: report_txs[k].take().expect("each report sender is moved once"),
            left_rx: cw_rxs[k].take().expect("each boundary receiver is moved once"),
            right_rx: ccw_rxs[k].take().expect("each boundary receiver is moved once"),
            halt_rx: halt_rx.clone(),
            // Clockwise traffic leaving shard k enters shard k+1's left
            // boundary; counter-clockwise leaving enters shard k-1's
            // right boundary. Each sender is moved to exactly one shard,
            // so the coordinator holds no boundary endpoint and the
            // disconnect cascade is purely shard-to-shard.
            cw_out: cw_txs[(k + 1) % shards].take().expect("each boundary sender is moved once"),
            ccw_out: ccw_txs[(k + shards - 1) % shards]
                .take()
                .expect("each boundary sender is moved once"),
        };
        pool.execute(move || worker.run());
    }
    drop(halt_rx);

    let coordinator = Coordinator {
        job_txs,
        _halt: halt_tx,
        report_rxs,
        _pool: pool,
        n,
        shards,
        topology: protocol.topology(),
        max_events: runner.max_events,
        tracing,
        bounds,
        owner,
    };
    coordinator.run(runner)
}

impl Coordinator {
    fn run(&self, runner: &RingRunner) -> Result<Outcome, SimError> {
        let n = self.n;
        let mut meta = MetaLinks::new(n, runner.scheduler.build_index(2 * n));
        let mut stats = ExecStats::new(n);
        let mut trace = if self.tracing { Some(Trace::default()) } else { None };
        let mut seq: u64 = 0;
        let mut deliveries: usize = 0;

        // Start the leader on shard 0 and merge its report — the
        // counterpart of the serial engine's pre-loop `on_start` block.
        if self.job_txs[0].send(ShardJob::Start).is_err() {
            return Err(SimError::ShardFailed { shard: 0 });
        }
        let report =
            self.report_rxs[0].recv().map_err(|RecvError| SimError::ShardFailed { shard: 0 })?;
        let entry =
            report.deliveries.into_iter().next().ok_or(SimError::ShardFailed { shard: 0 })?;
        if let Some(source) = entry.error {
            return Err(SimError::Process { position: 0, source });
        }
        merge_sends(
            &entry.sends,
            0,
            n,
            self.topology,
            &mut meta,
            &mut stats,
            &mut trace,
            &mut seq,
        )?;
        if let Some(d) = entry.decision {
            stats.deliveries = deliveries;
            return Ok(Outcome { decision: Some(d), stats, trace });
        }

        // For FIFO the next `in_flight` picks are already determined (a
        // new send's seq exceeds every in-flight seq, and the min-heap's
        // pop order depends only on its unique keys), so the whole
        // in-flight set is one window. LongestQueue and Random picks
        // depend on the sends merged between deliveries: window size 1.
        let fifo = matches!(runner.scheduler, Scheduler::Fifo);

        let mut cmds: Vec<Vec<DeliverCmd>> = Vec::new();
        cmds.resize_with(self.shards, Vec::new);
        loop {
            if meta.in_flight == 0 {
                return Err(SimError::Stalled { deliveries });
            }
            let batch = if fifo { meta.in_flight } else { 1 };
            let mut window: Vec<WindowEntry> = Vec::with_capacity(batch);
            for _ in 0..batch {
                let link = meta.choose().expect("in-flight messages imply a non-empty link");
                meta.pop(link);
                let (receiver, direction) = decode_link(link, n);
                let shard = self.owner[receiver];
                cmds[shard]
                    .push(DeliverCmd { local_pos: receiver - self.bounds[shard].0, direction });
                window.push(WindowEntry { receiver, direction, shard });
            }

            let active: Vec<usize> = (0..self.shards).filter(|&k| !cmds[k].is_empty()).collect();
            for &k in &active {
                if self.job_txs[k].send(ShardJob::Round(std::mem::take(&mut cmds[k]))).is_err() {
                    return Err(SimError::ShardFailed { shard: k });
                }
            }
            let mut reports: Vec<Option<RoundReport>> = Vec::new();
            reports.resize_with(self.shards, || None);
            for &k in &active {
                let report = self.report_rxs[k]
                    .recv()
                    .map_err(|RecvError| SimError::ShardFailed { shard: k })?;
                reports[k] = Some(report);
            }

            // Merge the window in global (serial) order.
            let mut cursors = vec![0usize; self.shards];
            for entry in &window {
                if deliveries >= self.max_events {
                    return Err(SimError::EventLimitExceeded { limit: self.max_events });
                }
                let report = reports[entry.shard]
                    .as_ref()
                    .ok_or(SimError::ShardFailed { shard: entry.shard })?;
                let cursor = cursors[entry.shard];
                cursors[entry.shard] += 1;
                let done = report
                    .deliveries
                    .get(cursor)
                    .ok_or(SimError::ShardFailed { shard: entry.shard })?;
                deliveries += 1;
                if let Some(t) = trace.as_mut() {
                    t.push(TraceEvent {
                        seq,
                        kind: EventKind::Deliver,
                        position: entry.receiver,
                        direction: entry.direction,
                        payload: done
                            .payload
                            .clone()
                            .expect("tracing rounds report delivery payloads"),
                    });
                    seq += 1;
                }
                if let Some(source) = done.error.clone() {
                    return Err(SimError::Process { position: entry.receiver, source });
                }
                if done.decision.is_some() && entry.receiver != 0 {
                    return Err(SimError::FollowerDecided { position: entry.receiver });
                }
                merge_sends(
                    &done.sends,
                    entry.receiver,
                    n,
                    self.topology,
                    &mut meta,
                    &mut stats,
                    &mut trace,
                    &mut seq,
                )?;
                if let Some(d) = done.decision {
                    stats.deliveries = deliveries;
                    return Ok(Outcome { decision: Some(d), stats, trace });
                }
            }
        }
    }
}

/// Applies one event's reported sends in outbox order — the merge-side
/// mirror of the serial engine's `apply_effects` send loop, producing
/// identical stats, trace events, sequence numbers, and link pushes.
#[allow(clippy::too_many_arguments)]
fn merge_sends(
    sends: &[SendRecord],
    position: usize,
    n: usize,
    topology: Topology,
    meta: &mut MetaLinks,
    stats: &mut ExecStats,
    trace: &mut Option<Trace>,
    seq: &mut u64,
) -> Result<(), SimError> {
    for send in sends {
        if !topology.allows(position, send.direction, n) {
            return Err(SimError::IllegalSend { position, direction: send.direction });
        }
        stats.record_send(position, send.direction, send.bits);
        if let Some(t) = trace.as_mut() {
            t.push(TraceEvent {
                seq: *seq,
                kind: EventKind::Send,
                position,
                direction: send.direction,
                payload: send.payload.clone().expect("tracing rounds report send payloads"),
            });
        }
        let link = match send.direction {
            Direction::Clockwise => position,
            Direction::CounterClockwise => n + (position + n - 1) % n,
        };
        meta.push(link, *seq);
        *seq += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_queues_are_fifo_and_spill() {
        let mut q = SlotQueues::new(2);
        assert_eq!(q.pop(0), None);
        let bits = |s: &str| BitString::parse(s).unwrap();
        q.push(0, bits("1"));
        q.push(0, bits("01"));
        q.push(0, bits("001"));
        q.push(1, bits("11"));
        assert_eq!(q.pop(0), Some(bits("1")));
        assert_eq!(q.pop(0), Some(bits("01")));
        // Interleaved push while overflow is non-empty keeps order.
        q.push(0, bits("0001"));
        assert_eq!(q.pop(0), Some(bits("001")));
        assert_eq!(q.pop(0), Some(bits("0001")));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), Some(bits("11")));
    }

    #[test]
    fn decode_link_inverts_the_send_formula() {
        for n in [1usize, 2, 3, 5, 8] {
            for position in 0..n {
                // Clockwise send from `position` lands on link `position`.
                let (receiver, dir) = decode_link(position, n);
                assert_eq!(receiver, (position + 1) % n);
                assert_eq!(dir, Direction::Clockwise);
                // Counter-clockwise send from `position`.
                let link = n + (position + n - 1) % n;
                let (receiver, dir) = decode_link(link, n);
                assert_eq!(receiver, (position + n - 1) % n);
                assert_eq!(dir, Direction::CounterClockwise);
            }
        }
    }

    #[test]
    fn arc_bounds_tile_the_ring() {
        for n in 1..40usize {
            for shards in 1..=n {
                let bounds: Vec<(usize, usize)> =
                    (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[shards - 1].1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "arcs must be contiguous");
                }
                assert!(bounds.iter().all(|&(lo, hi)| hi > lo), "every arc is non-empty");
            }
        }
    }

    #[test]
    fn meta_links_mirror_occupancy() {
        let mut meta = MetaLinks::new(3, Scheduler::Fifo.build_index(6));
        assert_eq!(meta.choose(), None);
        meta.push(2, 0);
        meta.push(2, 1);
        meta.push(5, 2);
        assert_eq!(meta.in_flight, 3);
        assert_eq!(meta.occupied, 2);
        assert_eq!(meta.choose(), Some(2)); // earliest seq wins under FIFO
        meta.pop(2);
        assert_eq!(meta.choose(), Some(2));
        meta.pop(2);
        assert_eq!(meta.occupied, 1);
        assert_eq!(meta.choose(), Some(5)); // fast path via id_xor
        meta.pop(5);
        assert_eq!(meta.in_flight, 0);
        assert_eq!(meta.choose(), None);
    }
}
