//! The sharded event engine: contiguous arcs, boundary channels, and a
//! deterministic merge that replays the serial schedule exactly.
//!
//! # Architecture
//!
//! The ring `p₀ … pₙ₋₁` is partitioned into `S` contiguous **arcs**, one
//! per shard; shard `k` owns positions `[k·n/S, (k+1)·n/S)` and runs on a
//! worker of a dedicated [`ThreadPool`](crate::pool::ThreadPool). Link
//! queues whose receiver lies inside an arc are stored shard-locally in
//! structure-of-arrays slot queues ([`SlotQueues`]); the two links that
//! cross each arc boundary hand payloads off through the vendored
//! crossbeam channels.
//!
//! The **coordinator** (the caller's thread) owns everything that is
//! observable in a run's result: the [`ExecStats`], the [`Trace`], the
//! global event sequence, the delivery count, and — crucially — the
//! scheduling decisions. It maintains [`MetaLinks`], a payload-free
//! replica of the serial engine's link state driven by the same
//! [`LinkIndex`], and commands deliveries through two merge paths:
//!
//! * **Epochs** (the fast path, every policy). Whenever every non-empty
//!   link is owned (receiver-side) by a single shard — the steady state
//!   of any protocol whose activity is a token walking the ring — the
//!   next pick, and every pick after it until a message crosses a shard
//!   boundary, is computable *inside that shard*: no other shard can
//!   execute, so no send the coordinator hasn't seen can change the
//!   pick sequence. The coordinator grants the shard an
//!   [`EpochGrant`] — the non-empty link seqs, the scheduler RNG state,
//!   and a delivery cap — and the shard replays the *same* policy on a
//!   [`LocalSched`] replica, executing picks locally until one targets
//!   a remote receiver, the cap is hit, the arc quiesces, or the run
//!   ends. One [`RoundReport`] comes back for the whole epoch, and the
//!   coordinator merges it one of two ways. When a trace sink is
//!   active it **replays** entry by entry — `choose`/`pop` on
//!   `MetaLinks`, stats, trace, limit checks — regenerating every
//!   observable in serial order. Untraced runs skip the per-entry
//!   record entirely: the shard executes the same walk but accumulates
//!   an [`AggReport`] — delivery/bit counters as dense arc-local
//!   arrays with touched-index lists, the end-of-epoch link state, and
//!   how the epoch ended — and the coordinator folds it in O(touched)
//!   instead of O(deliveries). This is exact, not approximate: every
//!   [`ExecStats`] field is a commutative sum, stats on errored runs
//!   are unobservable (the run returns `Err`), and the scheduler
//!   replica's end state (links, RNG, seq) is shipped verbatim, so the
//!   merge rebases `MetaLinks` to it and continues as if it had
//!   replayed every pick. When an epoch ends at a boundary with
//!   exactly one non-empty link, the report carries a [`Handoff`] and
//!   the coordinator pre-grants the next arc's epoch *before* replaying,
//!   so the next shard executes while the merge runs: the token
//!   pipeline never waits on the coordinator.
//! * **Windows** (the fallback, exact for every interleaving). When
//!   in-flight messages span shards (or a fault plan is active), the
//!   coordinator picks the next *window* of deliveries exactly as the
//!   serial engine would (for [`Scheduler::Fifo`] the whole in-flight
//!   set is one window — every in-flight seq is smaller than any seq a
//!   new send can get, so the next `in_flight` picks are fixed; for
//!   `LongestQueue` and `Random` the window is a single delivery,
//!   reproducing the serial interleaving pick by pick, RNG draws
//!   included), dispatches each shard's slice as one
//!   [`ShardJob::Round`], and merges the reports in window order.
//!
//! Report, command, and send buffers shuttle between the coordinator
//! and the shards (`reuse` on [`ShardJob`], `cmds` riding back on
//! [`RoundReport`]), so the steady-state channel hop allocates nothing.
//!
//! Because every result-bearing effect flows through the merge in serial
//! order — epochs only move *where* picks are computed, never *what*
//! they are — the sharded engine is **byte-identical to the serial
//! engine** for every shard count and policy: same `Outcome`, same
//! trace, same error on the same event. The serial path survives as the
//! test oracle (`tests/shard_equiv.rs`, which also pins epoch-batched ≡
//! one-pick merges), exactly like the `NaiveChooser` oracle for the
//! scheduler index.
//!
//! # Why blocking boundary receives cannot deadlock
//!
//! A shard only blocks on a boundary channel for a delivery the
//! coordinator commanded, and the coordinator only commands deliveries of
//! messages it has already merged — which means the producing shard
//! routed the payload into the channel *before* reporting the round that
//! sent it. The payload is therefore already in the channel (or the
//! producer died, which disconnects the channel and surfaces as
//! [`SimError::ShardFailed`]).
//!
//! # Teardown
//!
//! [`Coordinator`]'s field order is load-bearing: dropping the job
//! senders first wakes every idle shard, their exits cascade through the
//! boundary-channel disconnects, and the per-run pool drops (and joins)
//! last. A shard that panics is caught by the pool's worker, which drops
//! the shard's channels; the coordinator sees the disconnect as
//! `ShardFailed` on the next send or receive.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ringleader_automata::Word;
use ringleader_bitio::BitString;

use crossbeam::channel::{unbounded, Receiver, RecvError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ringleader_obs::{Metrics, Phase};

use crate::checkpoint::{EngineSnapshot, RunPhase, SNAPSHOT_VERSION};
use crate::context::{Context, Process, ProcessError, ProcessResult, Protocol};
use crate::engine::{flush_engine_metrics, Outcome, RingRunner};
use crate::faults::DeliveryFault;
use crate::pool::ThreadPool;
use crate::sched::LinkIndex;
use crate::trace::{EventKind, TraceEvent, TraceSink};
use crate::{Direction, ExecStats, Scheduler, SimError, Topology};

/// One delivery command: deliver the head of the `(local_pos, direction)`
/// inbound queue to the process at `local_pos` within the shard's arc,
/// applying `fault` (resolved by the coordinator, which owns the
/// per-position delivery counters) if one fires.
struct DeliverCmd {
    local_pos: usize,
    direction: Direction,
    fault: Option<DeliveryFault>,
}

/// Work the coordinator hands a shard. `reuse` carries a recycled report
/// (buffers intact from a previous round) back to the shard, so the
/// steady-state hop allocates nothing.
enum ShardJob {
    /// Run the leader's `on_start` (only ever sent to shard 0).
    Start,
    /// Execute these deliveries in order and report back.
    Round { cmds: Vec<DeliverCmd>, reuse: RoundReport },
    /// Run picks locally under the granted link/RNG state until a pick
    /// leaves the arc, the cap is reached, the arc quiesces, or the run
    /// ends — then report the whole epoch at once.
    Epoch { grant: EpochGrant, reuse: RoundReport },
    /// Serialize the arc's state (processes + inbound queues) and reply
    /// on the snapshot channel. Only sent at a quiesced round boundary.
    Snapshot,
}

/// Everything a shard needs to compute the serial pick sequence locally:
/// a snapshot of the non-empty link queues (all owned by the granted
/// shard), the global send-sequence counter, the scheduler RNG state
/// (`Random` only), and a delivery cap bounding the epoch at the next
/// pause/event-limit boundary.
struct EpochGrant {
    /// Global sequence counter at the epoch's start.
    seq: u64,
    /// Maximum deliveries this epoch may execute (≥ 1).
    cap: usize,
    /// Every non-empty link: `(link id, queued seqs front first)`.
    links: Vec<(usize, Vec<u64>)>,
    /// Scheduler RNG state at the epoch's start, when the policy has one.
    rng: Option<Vec<u64>>,
}

/// An epoch's parting gift: when the epoch ended on a pick targeting a
/// remote receiver and that link was the *only* non-empty one, the next
/// epoch's grant is fully determined — the coordinator forwards it to
/// the receiving shard before replaying this report, overlapping the
/// merge with the next arc's execution.
struct Handoff {
    /// The link the final (un-executed) pick chose.
    link: usize,
    /// Its queued seqs, front first.
    seqs: Vec<u64>,
    /// RNG state from *before* the final pick's draw: the next consumer
    /// of that draw (the receiving shard's first pick) re-draws it.
    rng: Option<Vec<u64>>,
    /// Global sequence counter when the epoch stopped.
    seq_end: u64,
}

/// One arc's state at a quiesced round boundary.
struct ShardSnapshot {
    /// Per-process [`Process::save_state`] results, arc-local order
    /// (`None` = the protocol does not support checkpointing).
    procs: Vec<Option<Vec<u8>>>,
    /// Clockwise inbound payloads per slot, front of queue first.
    cw: Vec<Vec<BitString>>,
    /// Counter-clockwise inbound payloads per slot, front first.
    ccw: Vec<Vec<BitString>>,
}

/// A send a shard observed, in outbox order. `payload` is carried only
/// when tracing (the merge needs the bits for the trace; stats need only
/// the length).
struct SendRecord {
    direction: Direction,
    bits: usize,
    payload: Option<BitString>,
}

/// What one commanded delivery (or the leader start) did.
struct DeliveryReport {
    /// Arc-local receiver position — redundant on the window path (the
    /// coordinator commanded it), asserted against the replayed pick on
    /// the epoch path.
    local_pos: u32,
    direction: Direction,
    /// The delivered payload, carried only when tracing.
    payload: Option<BitString>,
    sends: Vec<SendRecord>,
    decision: Option<bool>,
    error: Option<ProcessError>,
}

impl Default for DeliveryReport {
    fn default() -> Self {
        Self {
            local_pos: 0,
            direction: Direction::Clockwise,
            payload: None,
            sends: Vec::new(),
            decision: None,
            error: None,
        }
    }
}

impl DeliveryReport {
    /// Clears the entry for reuse, keeping the send buffer's capacity.
    fn reset(&mut self) {
        self.local_pos = 0;
        self.direction = Direction::Clockwise;
        self.payload = None;
        self.sends.clear();
        self.decision = None;
        self.error = None;
    }
}

/// How an aggregate-mode epoch ended, with enough position data for the
/// coordinator to raise the exact serial error without per-entry replay.
#[derive(Default)]
enum AggEnd {
    /// Cap, quiescence, or a remote pick: the run continues.
    #[default]
    Clean,
    /// The receiving process decided. A non-leader position becomes
    /// `FollowerDecided`; the leader's ends the run with this outcome.
    Decision { local_pos: u32, decision: bool },
    /// The handler erred: `SimError::Process` at `lo + local_pos`.
    Error { local_pos: u32, source: ProcessError },
    /// A topology-violating send: `SimError::IllegalSend`.
    Illegal { local_pos: u32, direction: Direction },
}

/// Aggregated observables of one *untraced* epoch: the exact deltas the
/// coordinator folds into its state in O(touched links) instead of
/// replaying one entry per delivery. Sound because every coordinator
/// observable on this path is order-free: [`ExecStats`] is commutative
/// accumulation, per-position delivery counts are sums, and the link
/// state only matters at the epoch boundary — the shard ships its end
/// state verbatim. Stats on an error ending are dropped with the run
/// (the serial engine returns `Err`), so only clean and decision ends
/// need them, and those the shard computes exactly. Dense per-slot
/// buffers persist inside the recycled [`RoundReport`]; `touched_*`
/// lists the dirty slots so reset is O(touched), not O(arc).
struct AggReport {
    delivered: usize,
    /// The global send-seq counter after the epoch's last send.
    seq_end: u64,
    total_bits: usize,
    message_count: usize,
    max_message_bits: usize,
    /// Deliveries per arc slot (dense, arc-sized).
    pos_deliveries: Vec<u32>,
    /// Clockwise bits sent from arc slot `i` (link `lo + i`).
    cw_bits: Vec<usize>,
    /// Counter-clockwise bits sent from arc slot `i` (link
    /// `(lo + i + n - 1) % n`).
    ccw_bits: Vec<usize>,
    touched_pos: Vec<u32>,
    touched_cw: Vec<u32>,
    touched_ccw: Vec<u32>,
    /// Every link still in flight at epoch end, front-to-back seqs —
    /// the handoff link included (the coordinator rebuilds its replica
    /// from this, then the pre-granted epoch consumes the handoff).
    end_links: Vec<(usize, Vec<u64>)>,
    /// Scheduler RNG state at epoch end — saved *before* an un-executed
    /// remote pick's draw, exactly as per-entry replay would leave it.
    rng_end: Option<Vec<u64>>,
    end: AggEnd,
}

impl Default for AggReport {
    fn default() -> Self {
        Self {
            delivered: 0,
            seq_end: 0,
            total_bits: 0,
            message_count: 0,
            max_message_bits: 0,
            pos_deliveries: Vec::new(),
            cw_bits: Vec::new(),
            ccw_bits: Vec::new(),
            touched_pos: Vec::new(),
            touched_cw: Vec::new(),
            touched_ccw: Vec::new(),
            end_links: Vec::new(),
            rng_end: None,
            end: AggEnd::Clean,
        }
    }
}

impl AggReport {
    /// Readies the buffers for a new epoch over an arc of `len` slots.
    /// Defensive O(touched) scrub: a report abandoned mid-teardown may
    /// come back dirty.
    fn begin(&mut self, len: usize) {
        if self.pos_deliveries.len() != len {
            self.pos_deliveries = vec![0; len];
            self.cw_bits = vec![0; len];
            self.ccw_bits = vec![0; len];
        }
        while let Some(i) = self.touched_pos.pop() {
            self.pos_deliveries[i as usize] = 0;
        }
        while let Some(i) = self.touched_cw.pop() {
            self.cw_bits[i as usize] = 0;
        }
        while let Some(i) = self.touched_ccw.pop() {
            self.ccw_bits[i as usize] = 0;
        }
        self.delivered = 0;
        self.seq_end = 0;
        self.total_bits = 0;
        self.message_count = 0;
        self.max_message_bits = 0;
        self.end_links.clear();
        self.rng_end = None;
        self.end = AggEnd::Clean;
    }
}

/// A shard's answer to one [`ShardJob`]: the first `used` entries (in
/// execution order, truncated at the first error or decision), plus the
/// drained command buffer riding back for reuse and, on the epoch path,
/// an optional [`Handoff`]. Entry buffers beyond `used` are spares kept
/// for their capacity. Untraced epochs set `agg_active` and fill `agg`
/// instead of `entries`.
#[derive(Default)]
struct RoundReport {
    entries: Vec<DeliveryReport>,
    used: usize,
    /// The [`ShardJob::Round`] command buffer, returned for reuse.
    cmds: Vec<DeliverCmd>,
    handoff: Option<Handoff>,
    /// Aggregate-mode deltas; meaningful only while `agg_active`.
    agg: AggReport,
    agg_active: bool,
}

impl RoundReport {
    /// Clears the report for a new round/epoch, keeping every buffer.
    fn reset(&mut self) {
        self.used = 0;
        self.cmds.clear();
        self.handoff = None;
        self.agg_active = false;
    }

    /// The next writable entry, recycled if one is spare.
    fn next_entry(&mut self) -> &mut DeliveryReport {
        if self.used == self.entries.len() {
            self.entries.push(DeliveryReport::default());
        }
        let entry = &mut self.entries[self.used];
        self.used += 1;
        entry.reset();
        entry
    }
}

/// One delivery of the coordinator's current window, in global order.
struct WindowEntry {
    receiver: usize,
    direction: Direction,
    shard: usize,
}

/// How one delivery's execution ended, from the shard's point of view.
enum EventEnd {
    /// Keep executing the round.
    Continue,
    /// A decision or handler error: stop the round and report.
    EndRun,
    /// A boundary channel disconnected: the run is being torn down —
    /// exit without reporting.
    NeighbourGone,
}

/// A payload-free replica of the serial engine's `Links`: the same queue
/// occupancy, the same head seqs, the same [`LinkIndex`] transitions —
/// so `choose()` returns exactly the serial pick at every step. Laid out
/// structure-of-arrays like the serial `Links` (dense head-seq/backlog
/// vectors, rare multi-message tails in a side table), and additionally
/// tracking, in O(1) per transition, which *shards* own non-empty links
/// — the epoch grant condition.
struct MetaLinks {
    /// Head seq per link; meaningful only while `backlog[link] > 0`.
    head_seq: Vec<u64>,
    /// Queued-seq count per link.
    backlog: Vec<u32>,
    /// Tail seqs (behind the head) for links with backlog ≥ 2.
    overflow: BTreeMap<usize, VecDeque<u64>>,
    index: Box<dyn LinkIndex>,
    occupied: usize,
    id_xor: usize,
    /// Total messages in flight across all links.
    in_flight: usize,
    /// Shard owning each link's receiver.
    link_owner: Vec<u32>,
    /// Non-empty link count per shard.
    shard_occ: Vec<u32>,
    /// Number of shards owning ≥ 1 non-empty link.
    occupied_shards: usize,
    /// Xor of the ids of shards owning ≥ 1 non-empty link; equals the
    /// unique such shard whenever `occupied_shards == 1`.
    shard_xor: usize,
    /// Ids of all non-empty links, for epoch grant assembly.
    active: BTreeSet<usize>,
}

impl MetaLinks {
    fn new(n: usize, index: Box<dyn LinkIndex>, owner: &[usize], shards: usize) -> Self {
        let link_owner = (0..2 * n).map(|link| owner[decode_link(link, n).0] as u32).collect();
        Self {
            head_seq: vec![0; 2 * n],
            backlog: vec![0; 2 * n],
            overflow: BTreeMap::new(),
            index,
            occupied: 0,
            id_xor: 0,
            in_flight: 0,
            link_owner,
            shard_occ: vec![0; shards],
            occupied_shards: 0,
            shard_xor: 0,
            active: BTreeSet::new(),
        }
    }

    fn push(&mut self, link: usize, seq: u64) {
        if self.backlog[link] == 0 {
            self.head_seq[link] = seq;
            self.occupied += 1;
            self.id_xor ^= link;
            self.active.insert(link);
            let shard = self.link_owner[link] as usize;
            self.shard_occ[shard] += 1;
            if self.shard_occ[shard] == 1 {
                self.occupied_shards += 1;
                self.shard_xor ^= shard;
            }
        } else {
            self.overflow.entry(link).or_default().push_back(seq);
        }
        self.backlog[link] += 1;
        self.in_flight += 1;
        self.index.on_push(link, seq, self.backlog[link] as usize);
    }

    /// Mirrors `Links::choose`, including the single-link fast path (the
    /// `Random` index consumes identical RNG state either way).
    fn choose(&mut self) -> Option<usize> {
        match self.occupied {
            0 => None,
            1 => {
                self.index.on_trivial_choose();
                Some(self.id_xor)
            }
            _ => Some(self.index.choose()),
        }
    }

    fn pop(&mut self, link: usize) {
        let backlog = self.backlog[link].checked_sub(1).expect("chosen link non-empty");
        self.backlog[link] = backlog;
        self.in_flight -= 1;
        if backlog == 0 {
            self.occupied -= 1;
            self.id_xor ^= link;
            self.active.remove(&link);
            let shard = self.link_owner[link] as usize;
            self.shard_occ[shard] -= 1;
            if self.shard_occ[shard] == 0 {
                self.occupied_shards -= 1;
                self.shard_xor ^= shard;
            }
            self.index.on_pop(link, None, 0);
        } else {
            let tail = self.overflow.get_mut(&link).expect("backlog ≥ 2 spills to overflow");
            let next = tail.pop_front().expect("overflow entry non-empty");
            if tail.is_empty() {
                self.overflow.remove(&link);
            }
            self.head_seq[link] = next;
            self.index.on_pop(link, Some(next), backlog as usize);
        }
    }

    /// The shard owning the receivers of *all* non-empty links, when
    /// there is exactly one — the epoch grant condition.
    fn single_owner(&self) -> Option<usize> {
        (self.occupied_shards == 1).then_some(self.shard_xor)
    }

    /// Front-to-back queued seqs of `link`, for grants and capture.
    fn queue_seqs(&self, link: usize) -> Vec<u64> {
        if self.backlog[link] == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.backlog[link] as usize);
        out.push(self.head_seq[link]);
        if let Some(tail) = self.overflow.get(&link) {
            out.extend(tail.iter().copied());
        }
        out
    }
}

/// A shard-local replica of the scheduling policy for one epoch.
///
/// Exactness argument: during an epoch no other shard executes, so the
/// global link state is the granted queues plus this shard's own pushes
/// — all of which flow through this replica. Each policy's pick is then
/// recomputed from first principles over the (id-ordered) non-empty
/// set: FIFO picks the minimum head seq (seqs are unique), LongestQueue
/// the lowest-id link among the largest backlogs, Random the `k`-th
/// smallest non-empty id for `k` drawn from the granted RNG state — the
/// same definitions the incremental [`LinkIndex`] implementations
/// maintain, checked against them by the epoch-equivalence suite. The
/// replica is O(occupied) per pick rather than O(log n), which is fine:
/// epochs exist precisely because `occupied` is tiny in the steady
/// state (one token, one link) — which is also why the queues live in
/// an id-ordered vec rather than a tree: a size-1 tree pays a node
/// alloc/dealloc every time the single token pops its link empty and
/// pushes the next, while vec insert/remove at these sizes is a
/// register-width move, and `spare` recycles drained deques so the
/// whole per-delivery path allocates nothing.
struct LocalSched {
    /// Non-empty link queues, ordered by global link id.
    queues: Vec<(usize, VecDeque<u64>)>,
    /// Drained queues kept for their capacity.
    spare: Vec<VecDeque<u64>>,
    policy: LocalPolicy,
}

enum LocalPolicy {
    Fifo,
    LongestQueue,
    Random(StdRng),
}

impl LocalSched {
    fn new(scheduler: &Scheduler, grant: &EpochGrant) -> Self {
        let policy = match scheduler {
            Scheduler::Fifo => LocalPolicy::Fifo,
            Scheduler::LongestQueue => LocalPolicy::LongestQueue,
            Scheduler::Random { seed } => LocalPolicy::Random(match &grant.rng {
                Some(state) => {
                    let mut s = [0u64; 4];
                    for (slot, word) in s.iter_mut().zip(state) {
                        *slot = *word;
                    }
                    StdRng::from_state(s)
                }
                None => StdRng::seed_from_u64(*seed),
            }),
        };
        // Grant links arrive in ascending id order (the coordinator walks
        // its ordered active set), which `push`/`pop` then maintain.
        let queues = grant
            .links
            .iter()
            .map(|(link, seqs)| (*link, seqs.iter().copied().collect()))
            .collect();
        Self { queues, spare: Vec::new(), policy }
    }

    /// RNG state right now (`Random` only) — saved before each pick so a
    /// boundary pick can hand its un-consumed draw to the next epoch.
    fn rng_state(&self) -> Option<Vec<u64>> {
        match &self.policy {
            LocalPolicy::Random(rng) => Some(rng.state().to_vec()),
            _ => None,
        }
    }

    /// The policy's next pick, or `None` when every link is empty.
    /// Consumes RNG state exactly as the serial engine's single-link
    /// fast path / full draw would.
    fn choose(&mut self) -> Option<usize> {
        let occupied = self.queues.len();
        if occupied == 0 {
            return None;
        }
        if occupied == 1 {
            if let LocalPolicy::Random(rng) = &mut self.policy {
                let k = rng.gen_range(0..1usize);
                debug_assert_eq!(k, 0);
            }
            return Some(self.queues[0].0);
        }
        match &mut self.policy {
            LocalPolicy::Fifo => {
                self.queues.iter().min_by_key(|(_, q)| q.front().copied()).map(|&(link, _)| link)
            }
            LocalPolicy::LongestQueue => {
                let mut best = None;
                let mut best_len = 0;
                for &(link, ref q) in &self.queues {
                    if q.len() > best_len {
                        best_len = q.len();
                        best = Some(link);
                    }
                }
                best
            }
            LocalPolicy::Random(rng) => {
                let k = rng.gen_range(0..occupied);
                Some(self.queues[k].0)
            }
        }
    }

    fn push(&mut self, link: usize, seq: u64) {
        match self.queues.binary_search_by_key(&link, |&(l, _)| l) {
            Ok(i) => self.queues[i].1.push_back(seq),
            Err(i) => {
                let mut queue = self.spare.pop().unwrap_or_default();
                queue.push_back(seq);
                self.queues.insert(i, (link, queue));
            }
        }
    }

    fn pop(&mut self, link: usize) {
        let i =
            self.queues.binary_search_by_key(&link, |&(l, _)| l).expect("chosen link non-empty");
        let queue = &mut self.queues[i].1;
        queue.pop_front().expect("chosen link non-empty");
        if queue.is_empty() {
            let (_, drained) = self.queues.remove(i);
            self.spare.push(drained);
        }
    }

    /// Removes and returns `link`'s queued seqs, for a [`Handoff`].
    fn take_seqs(&mut self, link: usize) -> Vec<u64> {
        match self.queues.binary_search_by_key(&link, |&(l, _)| l) {
            Ok(i) => Vec::from(self.queues.remove(i).1),
            Err(_) => Vec::new(),
        }
    }
}

/// Structure-of-arrays inbound queues for one arc and one travel
/// direction: slot `q` feeds the arc's `q`-th process. The common case —
/// at most one message waiting per slot — stays in the flat `head` array
/// (one cache line per few slots); bursts spill to per-slot overflow
/// queues without disturbing the heads.
struct SlotQueues {
    head: Vec<Option<BitString>>,
    /// Tail payloads for the rare slots holding more than one message —
    /// a side table rather than a dense per-slot vector, so an idle
    /// 10⁶-slot arc costs one flat `head` array and nothing else.
    overflow: BTreeMap<usize, VecDeque<BitString>>,
}

impl SlotQueues {
    fn new(len: usize) -> Self {
        Self { head: vec![None; len], overflow: BTreeMap::new() }
    }

    fn push(&mut self, slot: usize, payload: BitString) {
        if self.head[slot].is_none() {
            debug_assert!(!self.overflow.contains_key(&slot), "empty head implies empty tail");
            self.head[slot] = Some(payload);
        } else {
            self.overflow.entry(slot).or_default().push_back(payload);
        }
    }

    fn pop(&mut self, slot: usize) -> Option<BitString> {
        let payload = self.head[slot].take()?;
        if let Some(tail) = self.overflow.get_mut(&slot) {
            self.head[slot] = tail.pop_front();
            if tail.is_empty() {
                self.overflow.remove(&slot);
            }
        }
        Some(payload)
    }

    /// Front-to-back contents of a slot (head first, then overflow), for
    /// checkpoint capture.
    fn slot_contents(&self, slot: usize) -> Vec<BitString> {
        let mut out = Vec::with_capacity(usize::from(self.head[slot].is_some()));
        if let Some(head) = &self.head[slot] {
            out.push(head.clone());
        }
        if let Some(tail) = self.overflow.get(&slot) {
            out.extend(tail.iter().cloned());
        }
        out
    }
}

/// One shard: an arc of processes, their inbound queues, and the
/// channels tying it to the coordinator and its two neighbour shards.
struct ShardWorker {
    /// Global position of the arc's first process.
    lo: usize,
    /// Arc length (≥ 1).
    len: usize,
    /// Ring size — epochs decode global link ids shard-side.
    n: usize,
    scheduler: Scheduler,
    topology: Topology,
    known: Option<usize>,
    tracing: bool,
    procs: Vec<Box<dyn Process>>,
    /// Clockwise-travelling inbound queues: `cw` slot `q` feeds process
    /// `lo + q`; slot 0 is additionally fed by `left_rx`.
    cw: SlotQueues,
    /// Counter-clockwise inbound queues; slot `len - 1` is additionally
    /// fed by `right_rx`.
    ccw: SlotQueues,
    job_rx: Receiver<ShardJob>,
    report_tx: Sender<RoundReport>,
    snap_tx: Sender<ShardSnapshot>,
    /// Clockwise messages crossing the left boundary in.
    left_rx: Receiver<BitString>,
    /// Counter-clockwise messages crossing the right boundary in.
    right_rx: Receiver<BitString>,
    halt_rx: Receiver<()>,
    /// Clockwise messages crossing the right boundary out.
    cw_out: Sender<BitString>,
    /// Counter-clockwise messages crossing the left boundary out.
    ccw_out: Sender<BitString>,
    /// This shard's index, for per-shard utilization telemetry.
    shard: usize,
    /// Phase transitions (busy/idle/blocked) flow here; a disabled
    /// handle makes every mark a no-op.
    metrics: Metrics,
}

impl ShardWorker {
    fn run(self) {
        let metrics = self.metrics.clone();
        let shard = self.shard;
        self.run_inner();
        metrics.shard_done(shard);
    }

    fn run_inner(mut self) {
        let mut ctx = Context::new(false, self.known);
        loop {
            self.metrics.shard_phase(self.shard, Phase::Idle);
            // Idle loop: wait for work, eagerly buffering boundary
            // traffic so round-time receives rarely block. Any
            // disconnect means the run is over.
            let job = crossbeam::channel::select! {
                recv(self.job_rx) -> j => match j {
                    Ok(job) => Some(job),
                    Err(RecvError) => return,
                },
                recv(self.left_rx) -> m => match m {
                    Ok(payload) => {
                        self.cw.push(0, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.right_rx) -> m => match m {
                    Ok(payload) => {
                        self.ccw.push(self.len - 1, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.halt_rx) -> _m => return,
            };
            if let Some(job) = job {
                self.metrics.shard_phase(self.shard, Phase::Busy);
                if !self.execute(job, &mut ctx) {
                    return;
                }
            }
        }
    }

    /// Executes one job and reports. Returns `false` when a neighbour
    /// disconnect showed the run is being torn down (no report is sent;
    /// the coordinator observes the cascade as a channel disconnect).
    fn execute(&mut self, job: ShardJob, ctx: &mut Context) -> bool {
        let mut report;
        match job {
            ShardJob::Start => {
                report = RoundReport::default();
                ctx.reset(true);
                let result = self.procs[0].on_start(ctx);
                if matches!(
                    self.finish_event(ctx, 0, Direction::Clockwise, None, result, &mut report),
                    EventEnd::NeighbourGone
                ) {
                    return false;
                }
            }
            ShardJob::Round { cmds, reuse } => {
                report = reuse;
                report.reset();
                for cmd in &cmds {
                    let Some(mut payload) = self.take_inbound(cmd.local_pos, cmd.direction) else {
                        return false;
                    };
                    if let Some(f) = &cmd.fault {
                        if f.kill_shard {
                            // Die before handling: no report, channels
                            // drop, and the coordinator observes a
                            // deterministic `ShardFailed` for this shard.
                            return false;
                        }
                        if let Some(c) = &f.corrupt {
                            payload = c.apply(&payload);
                        }
                        if f.delay_micros > 0 {
                            std::thread::sleep(std::time::Duration::from_micros(f.delay_micros));
                        }
                    }
                    ctx.reset(self.lo + cmd.local_pos == 0);
                    let result = self.procs[cmd.local_pos].on_message(cmd.direction, &payload, ctx);
                    if result.is_ok() {
                        if let Some(f) = &cmd.fault {
                            if f.stall {
                                // Swallow the handler's effects, exactly
                                // like the serial engine's stall path.
                                ctx.reset(self.lo + cmd.local_pos == 0);
                            }
                            for (d, p) in &f.inject_sends {
                                ctx.send(*d, p.clone());
                            }
                            if let Some(accept) = f.inject_decide {
                                ctx.decide(accept);
                            }
                        }
                    }
                    let delivered = self.tracing.then_some(payload);
                    match self.finish_event(
                        ctx,
                        cmd.local_pos,
                        cmd.direction,
                        delivered,
                        result,
                        &mut report,
                    ) {
                        EventEnd::Continue => {}
                        EventEnd::EndRun => break,
                        EventEnd::NeighbourGone => return false,
                    }
                }
                // The drained command buffer rides back for reuse.
                report.cmds = cmds;
            }
            ShardJob::Epoch { grant, reuse } => {
                report = reuse;
                report.reset();
                let ok = if self.tracing {
                    self.run_epoch(&grant, ctx, &mut report)
                } else {
                    self.run_epoch_agg(&grant, ctx, &mut report)
                };
                if !ok {
                    return false;
                }
            }
            ShardJob::Snapshot => {
                // Quiesced boundary: every payload of a merged send was
                // enqueued on its boundary channel *before* the producing
                // shard reported the round — which the coordinator
                // received before asking for snapshots — so a
                // non-blocking drain is complete by happens-before.
                while let Ok(payload) = self.left_rx.try_recv() {
                    self.cw.push(0, payload);
                }
                while let Ok(payload) = self.right_rx.try_recv() {
                    self.ccw.push(self.len - 1, payload);
                }
                let snap = ShardSnapshot {
                    procs: self.procs.iter().map(|p| p.save_state()).collect(),
                    cw: (0..self.len).map(|s| self.cw.slot_contents(s)).collect(),
                    ccw: (0..self.len).map(|s| self.ccw.slot_contents(s)).collect(),
                };
                // The worker keeps serving jobs after a snapshot; a send
                // failure means the coordinator already went away.
                let _ = self.snap_tx.send(snap);
                return true;
            }
        }
        // A send failure here means the coordinator already went away;
        // the worker just retires.
        let _ = self.report_tx.send(report);
        true
    }

    /// Records one executed event into `report`, routing its sends.
    /// Sends are *recorded* unconditionally (the merge applies stats and
    /// trace from the records) but *routed* only when the handler
    /// neither erred (the serial engine discards a failing handler's
    /// outbox) nor decided (the run is over; routing would only stuff
    /// channels nobody will drain).
    fn finish_event(
        &mut self,
        ctx: &mut Context,
        local_pos: usize,
        direction: Direction,
        delivered: Option<BitString>,
        result: ProcessResult,
        report: &mut RoundReport,
    ) -> EventEnd {
        let tracing = self.tracing;
        let entry = report.next_entry();
        entry.local_pos = local_pos as u32;
        entry.direction = direction;
        entry.payload = delivered;
        if let Err(source) = result {
            entry.error = Some(source);
            return EventEnd::EndRun;
        }
        let decision = ctx.take_decision();
        entry.decision = decision;
        let route = decision.is_none();
        let mut neighbour_gone = false;
        for (send_dir, payload) in ctx.drain_outbox() {
            entry.sends.push(SendRecord {
                direction: send_dir,
                bits: payload.len(),
                payload: tracing.then(|| payload.clone()),
            });
            if route && !neighbour_gone {
                neighbour_gone = !self.route(local_pos, send_dir, payload);
            }
        }
        if neighbour_gone {
            EventEnd::NeighbourGone
        } else if decision.is_some() {
            EventEnd::EndRun
        } else {
            EventEnd::Continue
        }
    }

    /// Runs one epoch: replays the granted scheduler state locally,
    /// executing every pick that lands in this arc, until a pick leaves
    /// the arc, the cap is reached, the arc quiesces, or the run ends.
    /// Returns `false` on tear-down (no report).
    fn run_epoch(
        &mut self,
        grant: &EpochGrant,
        ctx: &mut Context,
        report: &mut RoundReport,
    ) -> bool {
        let mut sched = LocalSched::new(&self.scheduler, grant);
        let mut seq = grant.seq;
        let mut delivered = 0usize;
        while delivered < grant.cap {
            // Saved *before* the draw: a boundary pick's draw is re-drawn
            // by the next consumer of the scheduler state.
            let pre_rng = sched.rng_state();
            let Some(link) = sched.choose() else { break };
            let (receiver, direction) = decode_link(link, self.n);
            if receiver < self.lo || receiver >= self.lo + self.len {
                // The pick left the arc: the epoch is over. When the
                // chosen link is the only non-empty one, the next epoch
                // is fully determined — hand it off so the coordinator
                // can pre-grant it before replaying this report.
                if sched.queues.len() == 1 {
                    let seqs = sched.take_seqs(link);
                    report.handoff = Some(Handoff { link, seqs, rng: pre_rng, seq_end: seq });
                }
                break;
            }
            sched.pop(link);
            let local_pos = receiver - self.lo;
            let Some(payload) = self.take_inbound(local_pos, direction) else {
                return false;
            };
            ctx.reset(receiver == 0);
            let result = self.procs[local_pos].on_message(direction, &payload, ctx);
            delivered += 1;
            let delivered_payload = self.tracing.then_some(payload);
            match self.finish_epoch_event(
                ctx,
                local_pos,
                direction,
                delivered_payload,
                result,
                report,
                &mut sched,
                &mut seq,
            ) {
                EventEnd::Continue => {}
                EventEnd::EndRun => break,
                EventEnd::NeighbourGone => return false,
            }
        }
        true
    }

    /// The epoch-path counterpart of [`finish_event`](Self::finish_event):
    /// additionally advances the local sequence counter and scheduler
    /// replica (the coordinator is not in the loop to do it), and gates
    /// routing on the topology check — an illegal send must not reach the
    /// replica, or the picks after it would diverge from the serial run
    /// the replay reconstructs (which ends *at* that send).
    #[allow(clippy::too_many_arguments)]
    fn finish_epoch_event(
        &mut self,
        ctx: &mut Context,
        local_pos: usize,
        direction: Direction,
        delivered: Option<BitString>,
        result: ProcessResult,
        report: &mut RoundReport,
        sched: &mut LocalSched,
        seq: &mut u64,
    ) -> EventEnd {
        if self.tracing {
            // The Deliver trace event the replay will emit consumes a seq
            // before any of this event's sends.
            *seq += 1;
        }
        let tracing = self.tracing;
        let position = self.lo + local_pos;
        let entry = report.next_entry();
        entry.local_pos = local_pos as u32;
        entry.direction = direction;
        entry.payload = delivered;
        if let Err(source) = result {
            entry.error = Some(source);
            return EventEnd::EndRun;
        }
        let decision = ctx.take_decision();
        entry.decision = decision;
        // A follower deciding ends the run at the replay's
        // `FollowerDecided` check; sends are still recorded (the serial
        // engine raises IllegalSend in preference to any decision) but
        // nothing routes.
        let run_over = decision.is_some();
        let mut poisoned = false;
        let mut neighbour_gone = false;
        for (send_dir, payload) in ctx.drain_outbox() {
            entry.sends.push(SendRecord {
                direction: send_dir,
                bits: payload.len(),
                payload: tracing.then(|| payload.clone()),
            });
            if run_over || poisoned || neighbour_gone {
                continue;
            }
            if !self.topology.allows(position, send_dir, self.n) {
                // The replay raises IllegalSend at exactly this record;
                // everything after it is unobservable.
                poisoned = true;
                continue;
            }
            let link = match send_dir {
                Direction::Clockwise => position,
                Direction::CounterClockwise => self.n + (position + self.n - 1) % self.n,
            };
            sched.push(link, *seq);
            *seq += 1;
            neighbour_gone = !self.route(local_pos, send_dir, payload);
        }
        if neighbour_gone {
            EventEnd::NeighbourGone
        } else if run_over || poisoned {
            EventEnd::EndRun
        } else {
            EventEnd::Continue
        }
    }

    /// The aggregate-mode counterpart of [`run_epoch`](Self::run_epoch),
    /// used when no trace sink is active: instead of recording one entry
    /// per delivery for the coordinator to replay, it folds each event
    /// into [`AggReport`] deltas and ships the epoch-end link state, so
    /// the merge costs O(links touched) rather than O(deliveries). The
    /// walk itself — replica picks, routing, handoff detection — is
    /// identical to the entry-mode epoch, and so are the error
    /// precedences: a handler error discards the outbox, a follower
    /// decision is raised before its sends are examined, an illegal
    /// send beats a leader decision.
    fn run_epoch_agg(
        &mut self,
        grant: &EpochGrant,
        ctx: &mut Context,
        report: &mut RoundReport,
    ) -> bool {
        let mut sched = LocalSched::new(&self.scheduler, grant);
        let mut seq = grant.seq;
        report.agg_active = true;
        let agg = &mut report.agg;
        agg.begin(self.len);
        // `Some` when the epoch ended on a pick outside the arc: the
        // link, with the RNG state from *before* its draw (the next
        // consumer of the scheduler state re-draws it).
        let mut remote: Option<(usize, Option<Vec<u64>>)> = None;
        while agg.delivered < grant.cap {
            let pre_rng = sched.rng_state();
            let Some(link) = sched.choose() else { break };
            let (receiver, direction) = decode_link(link, self.n);
            if receiver < self.lo || receiver >= self.lo + self.len {
                remote = Some((link, pre_rng));
                break;
            }
            sched.pop(link);
            let local_pos = receiver - self.lo;
            let Some(payload) = self.take_inbound(local_pos, direction) else {
                return false;
            };
            ctx.reset(receiver == 0);
            let result = self.procs[local_pos].on_message(direction, &payload, ctx);
            agg.delivered += 1;
            if agg.pos_deliveries[local_pos] == 0 {
                agg.touched_pos.push(local_pos as u32);
            }
            agg.pos_deliveries[local_pos] += 1;
            if let Err(source) = result {
                agg.end = AggEnd::Error { local_pos: local_pos as u32, source };
                break;
            }
            let decision = ctx.take_decision();
            if decision.is_some() && receiver != 0 {
                // The merge raises FollowerDecided before looking at
                // the event's sends — stop without scanning them.
                agg.end = AggEnd::Decision {
                    local_pos: local_pos as u32,
                    decision: decision.unwrap_or_default(),
                };
                break;
            }
            let run_over = decision.is_some();
            let mut poisoned = false;
            let mut neighbour_gone = false;
            for (send_dir, payload) in ctx.drain_outbox() {
                if poisoned || neighbour_gone {
                    continue;
                }
                if !self.topology.allows(receiver, send_dir, self.n) {
                    // Raised before this send's stats, in preference to
                    // a leader decision — the serial merge order.
                    agg.end = AggEnd::Illegal { local_pos: local_pos as u32, direction: send_dir };
                    poisoned = true;
                    continue;
                }
                let bits = payload.len();
                agg.total_bits += bits;
                agg.message_count += 1;
                agg.max_message_bits = agg.max_message_bits.max(bits);
                match send_dir {
                    Direction::Clockwise => {
                        if agg.cw_bits[local_pos] == 0 && bits > 0 {
                            agg.touched_cw.push(local_pos as u32);
                        }
                        agg.cw_bits[local_pos] += bits;
                    }
                    Direction::CounterClockwise => {
                        if agg.ccw_bits[local_pos] == 0 && bits > 0 {
                            agg.touched_ccw.push(local_pos as u32);
                        }
                        agg.ccw_bits[local_pos] += bits;
                    }
                }
                if run_over {
                    // A deciding event's sends count toward stats (the
                    // serial merge records them before returning the
                    // outcome) but route nowhere.
                    continue;
                }
                let send_link = match send_dir {
                    Direction::Clockwise => receiver,
                    Direction::CounterClockwise => self.n + (receiver + self.n - 1) % self.n,
                };
                sched.push(send_link, seq);
                seq += 1;
                neighbour_gone = !self.route(local_pos, send_dir, payload);
            }
            if neighbour_gone {
                return false;
            }
            if let Some(d) = decision {
                if matches!(agg.end, AggEnd::Clean) {
                    agg.end = AggEnd::Decision { local_pos: local_pos as u32, decision: d };
                }
                break;
            }
            if poisoned {
                break;
            }
        }
        agg.seq_end = seq;
        let (remote_link, rng_end) = match remote {
            Some((link, pre)) => (Some(link), pre),
            None => (None, sched.rng_state()),
        };
        agg.rng_end = rng_end;
        agg.end_links
            .extend(sched.queues.iter().map(|&(l, ref q)| (l, q.iter().copied().collect())));
        if let Some(link) = remote_link {
            if sched.queues.len() == 1 {
                let rng = agg.rng_end.clone();
                let seqs = sched.take_seqs(link);
                report.handoff = Some(Handoff { link, seqs, rng, seq_end: seq });
            }
        }
        true
    }

    /// Pops the commanded inbound message, blocking on the boundary
    /// channel when the coordinator commanded a boundary delivery whose
    /// payload has not been buffered yet (it is guaranteed to be in the
    /// channel — see the module docs). `None` means the channel
    /// disconnected: tear-down.
    fn take_inbound(&mut self, local_pos: usize, direction: Direction) -> Option<BitString> {
        match direction {
            Direction::Clockwise => self.cw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos, 0, "interior CW queue empty on command");
                self.metrics.shard_phase(self.shard, Phase::Blocked);
                let payload = self.left_rx.recv().ok();
                self.metrics.shard_phase(self.shard, Phase::Busy);
                payload
            }),
            Direction::CounterClockwise => self.ccw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos + 1, self.len, "interior CCW queue empty on command");
                self.metrics.shard_phase(self.shard, Phase::Blocked);
                let payload = self.right_rx.recv().ok();
                self.metrics.shard_phase(self.shard, Phase::Busy);
                payload
            }),
        }
    }

    /// Hands a sent payload to the next hop: the shard-local slot queue
    /// of the neighbouring process, or the boundary channel when the
    /// neighbour lives on another shard. Returns `false` on a
    /// disconnected boundary (tear-down in progress).
    fn route(&mut self, local_pos: usize, direction: Direction, payload: BitString) -> bool {
        match direction {
            Direction::Clockwise => {
                if local_pos + 1 < self.len {
                    self.cw.push(local_pos + 1, payload);
                    true
                } else {
                    self.cw_out.send(payload).is_ok()
                }
            }
            Direction::CounterClockwise => {
                if local_pos > 0 {
                    self.ccw.push(local_pos - 1, payload);
                    true
                } else {
                    self.ccw_out.send(payload).is_ok()
                }
            }
        }
    }
}

/// Decodes a link id to `(receiver, direction)` — the inverse of the
/// send-side link formula in `apply_effects`.
fn decode_link(link: usize, n: usize) -> (usize, Direction) {
    if link < n {
        ((link + 1) % n, Direction::Clockwise)
    } else {
        (link - n, Direction::CounterClockwise)
    }
}

/// The coordinator's handles on the shard fleet.
///
/// Field order is drop order and is load-bearing: `job_txs` drop first
/// (waking idle shards into exit), the boundary/report channels cascade,
/// and the pool drops — and joins its workers — last.
struct Coordinator {
    job_txs: Vec<Sender<ShardJob>>,
    /// Held only so a clone-per-shard halt channel stays constructible;
    /// dropping it with the struct wakes any shard parked on it.
    _halt: Sender<()>,
    report_rxs: Vec<Receiver<RoundReport>>,
    snap_rxs: Vec<Receiver<ShardSnapshot>>,
    _pool: ThreadPool,
    n: usize,
    shards: usize,
    topology: Topology,
    scheduler: Scheduler,
    known_ring_size: bool,
    max_events: usize,
    /// `bounds[k]` = the half-open global range of shard `k`'s arc.
    bounds: Vec<(usize, usize)>,
    /// `owner[p]` = the shard owning global position `p`.
    owner: Vec<usize>,
    /// Coordinator-side telemetry: channel ops, epoch/window counters,
    /// epoch-length histogram, capture timing. Disabled by default.
    metrics: Metrics,
}

/// Runs `protocol` sharded over `shards ≥ 2` arcs, byte-identical to
/// [`RingRunner::run`]'s serial path — optionally resuming from a
/// snapshot and/or pausing at a round boundary at or after `pause_at`
/// deliveries.
pub(crate) fn run_sharded(
    runner: &RingRunner,
    protocol: &dyn Protocol,
    word: &Word,
    shards: usize,
    resume: Option<&EngineSnapshot>,
    pause_at: Option<usize>,
) -> Result<RunPhase, SimError> {
    let n = word.len();
    // A resumed run takes its configuration from the snapshot, exactly
    // like the serial engine; only the shard count and fault plan come
    // from the resuming runner (neither affects observables).
    let (scheduler, known_ring_size, max_events) = match resume {
        Some(snap) => (snap.scheduler.clone(), snap.known_ring_size, snap.max_events),
        None => (runner.scheduler.clone(), runner.known_ring_size, runner.max_events),
    };
    let sink = match resume {
        Some(snap) => TraceSink { trace: snap.trace.clone(), ring: snap.ring.clone() },
        None => TraceSink::new(runner.record_trace, runner.trace_ring),
    };
    let known = known_ring_size.then_some(n);
    let tracing = sink.active();

    let mut processes: Vec<Box<dyn Process>> = Vec::with_capacity(n);
    for (i, &sym) in word.symbols().iter().enumerate() {
        processes.push(if i == 0 { protocol.leader(sym) } else { protocol.follower(sym) });
    }
    if let Some(snap) = resume {
        let _restore_timer = runner.metrics.start_timer("checkpoint.restore");
        for (i, bytes) in snap.processes.iter().enumerate() {
            processes[i]
                .load_state(bytes)
                .map_err(|source| SimError::Process { position: i, source })?;
        }
    }

    let bounds: Vec<(usize, usize)> =
        (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
    let mut owner = vec![0usize; n];
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        for o in owner.iter_mut().take(hi).skip(lo) {
            *o = k;
        }
    }

    let mut job_txs = Vec::with_capacity(shards);
    let mut job_rxs = Vec::with_capacity(shards);
    let mut report_txs = Vec::with_capacity(shards);
    let mut report_rxs = Vec::with_capacity(shards);
    let mut snap_txs = Vec::with_capacity(shards);
    let mut snap_rxs = Vec::with_capacity(shards);
    let mut cw_txs = Vec::with_capacity(shards);
    let mut cw_rxs = Vec::with_capacity(shards);
    let mut ccw_txs = Vec::with_capacity(shards);
    let mut ccw_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<ShardJob>();
        job_txs.push(tx);
        job_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<RoundReport>();
        report_txs.push(Some(tx));
        report_rxs.push(rx);
        let (tx, rx) = unbounded::<ShardSnapshot>();
        snap_txs.push(Some(tx));
        snap_rxs.push(rx);
        let (tx, rx) = unbounded::<BitString>();
        cw_txs.push(Some(tx));
        cw_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<BitString>();
        ccw_txs.push(Some(tx));
        ccw_rxs.push(Some(rx));
    }
    let (halt_tx, halt_rx) = unbounded::<()>();

    let pool = ThreadPool::new_with_metrics(shards, runner.metrics.clone());
    let mut rest = processes;
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        let len = hi - lo;
        let tail = rest.split_off(len);
        let procs = rest;
        rest = tail;
        let mut cw = SlotQueues::new(len);
        let mut ccw = SlotQueues::new(len);
        if let Some(snap) = resume {
            // Preload the arc's inbound queues from the snapshot: the
            // clockwise link feeding global position `p` is `(p-1) mod n`,
            // the counter-clockwise one is stored at `n + p`.
            for slot in 0..len {
                let receiver = lo + slot;
                for (_, payload) in &snap.links[(receiver + n - 1) % n] {
                    cw.push(slot, payload.clone());
                }
                for (_, payload) in &snap.links[n + receiver] {
                    ccw.push(slot, payload.clone());
                }
            }
        }
        let worker = ShardWorker {
            lo,
            len,
            n,
            scheduler: scheduler.clone(),
            topology: protocol.topology(),
            known,
            tracing,
            procs,
            cw,
            ccw,
            job_rx: job_rxs[k].take().expect("each job receiver is moved once"),
            report_tx: report_txs[k].take().expect("each report sender is moved once"),
            snap_tx: snap_txs[k].take().expect("each snapshot sender is moved once"),
            left_rx: cw_rxs[k].take().expect("each boundary receiver is moved once"),
            right_rx: ccw_rxs[k].take().expect("each boundary receiver is moved once"),
            halt_rx: halt_rx.clone(),
            // Clockwise traffic leaving shard k enters shard k+1's left
            // boundary; counter-clockwise leaving enters shard k-1's
            // right boundary. Each sender is moved to exactly one shard,
            // so the coordinator holds no boundary endpoint and the
            // disconnect cascade is purely shard-to-shard.
            cw_out: cw_txs[(k + 1) % shards].take().expect("each boundary sender is moved once"),
            ccw_out: ccw_txs[(k + shards - 1) % shards]
                .take()
                .expect("each boundary sender is moved once"),
            shard: k,
            metrics: runner.metrics.clone(),
        };
        pool.execute(move || worker.run());
    }
    drop(halt_rx);

    let coordinator = Coordinator {
        job_txs,
        _halt: halt_tx,
        report_rxs,
        snap_rxs,
        _pool: pool,
        n,
        shards,
        topology: protocol.topology(),
        scheduler,
        known_ring_size,
        max_events,
        bounds,
        owner,
        metrics: runner.metrics.clone(),
    };
    coordinator.run(runner, resume, pause_at, sink)
}

impl Coordinator {
    fn run(
        &self,
        runner: &RingRunner,
        resume: Option<&EngineSnapshot>,
        pause_at: Option<usize>,
        mut sink: TraceSink,
    ) -> Result<RunPhase, SimError> {
        let n = self.n;
        let mut meta =
            MetaLinks::new(n, self.scheduler.build_index(2 * n), &self.owner, self.shards);
        let mut stats;
        let mut seq: u64;
        let mut deliveries: usize;
        let mut position_deliveries: Vec<u64>;
        let fault_plan = runner.fault_plan.as_ref();

        if let Some(snap) = resume {
            // Rebuild the payload-free link replica by replaying the
            // snapshot's queues front-to-back; per-link seqs are
            // increasing, so the index lands in its canonical state.
            for (link, queue) in snap.links.iter().enumerate() {
                for &(s, _) in queue {
                    meta.push(link, s);
                }
            }
            if let Some(state) = &snap.rng {
                meta.index.import_rng(state);
            }
            stats = snap.stats.clone();
            seq = snap.seq;
            deliveries = snap.deliveries;
            position_deliveries = snap.position_deliveries.clone();
        } else {
            stats = ExecStats::new(n);
            seq = 0;
            deliveries = 0;
            position_deliveries = vec![0; n];

            // Start the leader on shard 0 and merge its report — the
            // counterpart of the serial engine's pre-loop `on_start` block.
            self.metrics.counter_add("shard.channel_ops", 1);
            if self.job_txs[0].send(ShardJob::Start).is_err() {
                return Err(SimError::ShardFailed { shard: 0 });
            }
            self.metrics.counter_add("shard.channel_ops", 1);
            let report = self.report_rxs[0]
                .recv()
                .map_err(|RecvError| SimError::ShardFailed { shard: 0 })?;
            if report.used == 0 {
                return Err(SimError::ShardFailed { shard: 0 });
            }
            let entry =
                report.entries.into_iter().next().ok_or(SimError::ShardFailed { shard: 0 })?;
            if let Some(source) = entry.error {
                return Err(SimError::Process { position: 0, source });
            }
            merge_sends(
                &entry.sends,
                0,
                n,
                self.topology,
                &mut meta,
                &mut stats,
                &mut sink,
                &mut seq,
            )?;
            if let Some(d) = entry.decision {
                stats.deliveries = deliveries;
                flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                return Ok(RunPhase::Done(Outcome {
                    decision: Some(d),
                    stats,
                    trace: sink.trace,
                    trace_ring: sink.ring,
                }));
            }
        }

        // For FIFO the next `in_flight` picks are already determined (a
        // new send's seq exceeds every in-flight seq, and the min-heap's
        // pop order depends only on its unique keys), so the whole
        // in-flight set is one window. LongestQueue and Random picks
        // depend on the sends merged between deliveries: window size 1.
        let fifo = matches!(self.scheduler, Scheduler::Fifo);
        // Epochs move pick computation into a shard; a fault plan keys on
        // coordinator-owned per-position counters, so it forces the
        // window path.
        let epochs = runner.epoch_batching && fault_plan.is_none();

        // Round-trip buffers, hoisted so the steady state allocates
        // nothing: command vectors and spare reports shuttle to the
        // shards and back.
        let mut cmds: Vec<Vec<DeliverCmd>> = Vec::new();
        cmds.resize_with(self.shards, Vec::new);
        let mut spares: Vec<Option<RoundReport>> = Vec::new();
        spares.resize_with(self.shards, || Some(RoundReport::default()));
        let mut window: Vec<WindowEntry> = Vec::new();
        let mut reports: Vec<Option<RoundReport>> = Vec::new();
        reports.resize_with(self.shards, || None);
        let mut cursors = vec![0usize; self.shards];
        let mut active: Vec<usize> = Vec::with_capacity(self.shards);
        // The shard whose epoch report is outstanding, if any.
        let mut pending: Option<usize> = None;

        loop {
            if pending.is_none() {
                // Quiesce check first, mirroring the serial engine's
                // pause-before-choose ordering: a round/epoch is atomic,
                // so the boundary lands at the first edge at or after `k`.
                if let Some(k) = pause_at {
                    if deliveries >= k {
                        let snap = self.capture(
                            &meta,
                            &stats,
                            seq,
                            deliveries,
                            &position_deliveries,
                            &sink,
                        )?;
                        return Ok(RunPhase::Paused(Box::new(snap)));
                    }
                }
                if meta.in_flight == 0 {
                    return Err(SimError::Stalled { deliveries });
                }
                if epochs {
                    if let Some(shard) = meta.single_owner() {
                        let cap = self.epoch_cap(deliveries, pause_at);
                        let grant = EpochGrant {
                            seq,
                            cap,
                            links: meta
                                .active
                                .iter()
                                .map(|&link| (link, meta.queue_seqs(link)))
                                .collect(),
                            rng: meta.index.export_rng(),
                        };
                        let reuse = spares[shard].take().unwrap_or_default();
                        self.metrics.counter_add("shard.epoch_grants", 1);
                        self.metrics.counter_add("shard.channel_ops", 1);
                        if self.job_txs[shard].send(ShardJob::Epoch { grant, reuse }).is_err() {
                            return Err(SimError::ShardFailed { shard });
                        }
                        pending = Some(shard);
                    }
                }
            }

            if let Some(shard) = pending.take() {
                self.metrics.counter_add("shard.channel_ops", 1);
                let mut report = self.report_rxs[shard]
                    .recv()
                    .map_err(|RecvError| SimError::ShardFailed { shard })?;
                // Pre-grant the handed-off epoch *before* replaying, so
                // the next arc executes while this report merges. Safe:
                // a handoff means the epoch ended on a remote pick, so
                // the report holds no error/decision and fewer than
                // `cap` deliveries — the replay below completes cleanly
                // and the pre-granted state is exactly meta's state
                // after it.
                if let Some(h) = report.handoff.take() {
                    let done_count =
                        if report.agg_active { report.agg.delivered } else { report.used };
                    let after = deliveries + done_count;
                    let within_pause = pause_at.is_none_or(|p| after < p);
                    if within_pause && after <= self.max_events {
                        let next = self.owner[decode_link(h.link, n).0];
                        let grant = EpochGrant {
                            seq: h.seq_end,
                            cap: self.epoch_cap(after, pause_at),
                            links: vec![(h.link, h.seqs)],
                            rng: h.rng,
                        };
                        let reuse = spares[next].take().unwrap_or_default();
                        self.metrics.counter_add("shard.epoch_grants", 1);
                        self.metrics.counter_add("shard.handoff_pregrants", 1);
                        self.metrics.counter_add("shard.channel_ops", 1);
                        if self.job_txs[next].send(ShardJob::Epoch { grant, reuse }).is_err() {
                            return Err(SimError::ShardFailed { shard: next });
                        }
                        pending = Some(next);
                    }
                }
                if report.agg_active {
                    // Aggregate merge: fold the epoch's deltas instead of
                    // replaying entries — see [`AggReport`] for why this
                    // is exact. Order matters only for the error checks:
                    // the event limit preempts everything (the serial
                    // loop checks it before each delivery), then the
                    // epoch's own ending.
                    let lo = self.bounds[shard].0;
                    let agg = &mut report.agg;
                    self.metrics.counter_add("shard.epochs_aggregate", 1);
                    self.metrics.record_histogram("shard.epoch_len", agg.delivered as u64);
                    if deliveries + agg.delivered > self.max_events {
                        return Err(SimError::EventLimitExceeded { limit: self.max_events });
                    }
                    while let Some(i) = agg.touched_pos.pop() {
                        let local = i as usize;
                        position_deliveries[lo + local] += u64::from(agg.pos_deliveries[local]);
                        agg.pos_deliveries[local] = 0;
                    }
                    deliveries += agg.delivered;
                    stats.total_bits += agg.total_bits;
                    stats.message_count += agg.message_count;
                    stats.max_message_bits = stats.max_message_bits.max(agg.max_message_bits);
                    while let Some(i) = agg.touched_cw.pop() {
                        let local = i as usize;
                        stats.clockwise_link_bits[lo + local] += agg.cw_bits[local];
                        agg.cw_bits[local] = 0;
                    }
                    while let Some(i) = agg.touched_ccw.pop() {
                        let local = i as usize;
                        stats.counter_clockwise_link_bits[(lo + local + n - 1) % n] +=
                            agg.ccw_bits[local];
                        agg.ccw_bits[local] = 0;
                    }
                    match std::mem::take(&mut agg.end) {
                        AggEnd::Error { local_pos, source } => {
                            return Err(SimError::Process {
                                position: lo + local_pos as usize,
                                source,
                            });
                        }
                        AggEnd::Illegal { local_pos, direction } => {
                            return Err(SimError::IllegalSend {
                                position: lo + local_pos as usize,
                                direction,
                            });
                        }
                        AggEnd::Decision { local_pos, decision } => {
                            let position = lo + local_pos as usize;
                            if position != 0 {
                                return Err(SimError::FollowerDecided { position });
                            }
                            stats.deliveries = deliveries;
                            flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                            return Ok(RunPhase::Done(Outcome {
                                decision: Some(decision),
                                stats,
                                trace: sink.trace,
                                trace_ring: sink.ring,
                            }));
                        }
                        AggEnd::Clean => {}
                    }
                    // Re-base the link replica on the shipped end state:
                    // drain this epoch's granted content, push what
                    // survived, restore the replica RNG to the shard's.
                    // Draining goes in global seq order — the one pop
                    // order every index accepts (FIFO's heap asserts
                    // each pop is the current minimum).
                    while meta.in_flight > 0 {
                        let link = meta
                            .active
                            .iter()
                            .copied()
                            .min_by_key(|&l| meta.head_seq[l])
                            .expect("in-flight implies an active link");
                        meta.pop(link);
                    }
                    for (link, seqs) in agg.end_links.drain(..) {
                        for s in seqs {
                            meta.push(link, s);
                        }
                    }
                    if let Some(state) = agg.rng_end.take() {
                        meta.index.import_rng(&state);
                    }
                    seq = agg.seq_end;
                    report.reset();
                    spares[shard] = Some(report);
                    continue;
                }
                // Replay the epoch: regenerate every observable — picks,
                // pops, stats, trace, error positions — in serial order.
                let lo = self.bounds[shard].0;
                self.metrics.counter_add("shard.epochs_traced", 1);
                self.metrics.record_histogram("shard.epoch_len", report.used as u64);
                for done in &report.entries[..report.used] {
                    if deliveries >= self.max_events {
                        return Err(SimError::EventLimitExceeded { limit: self.max_events });
                    }
                    let link = meta.choose().expect("reported deliveries imply in-flight picks");
                    meta.pop(link);
                    let (receiver, direction) = decode_link(link, n);
                    debug_assert_eq!(receiver, lo + done.local_pos as usize);
                    debug_assert_eq!(direction, done.direction);
                    position_deliveries[receiver] += 1;
                    deliveries += 1;
                    if sink.active() {
                        sink.push(TraceEvent {
                            seq,
                            kind: EventKind::Deliver,
                            position: receiver,
                            direction,
                            payload: done
                                .payload
                                .clone()
                                .expect("tracing epochs report delivery payloads"),
                        });
                        seq += 1;
                    }
                    if let Some(source) = done.error.clone() {
                        return Err(SimError::Process { position: receiver, source });
                    }
                    if done.decision.is_some() && receiver != 0 {
                        return Err(SimError::FollowerDecided { position: receiver });
                    }
                    merge_sends(
                        &done.sends,
                        receiver,
                        n,
                        self.topology,
                        &mut meta,
                        &mut stats,
                        &mut sink,
                        &mut seq,
                    )?;
                    if let Some(d) = done.decision {
                        stats.deliveries = deliveries;
                        flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                        return Ok(RunPhase::Done(Outcome {
                            decision: Some(d),
                            stats,
                            trace: sink.trace,
                            trace_ring: sink.ring,
                        }));
                    }
                }
                report.reset();
                spares[shard] = Some(report);
                continue;
            }

            // Window fallback: in-flight messages span shards (or a
            // fault plan / the epoch toggle forces it).
            self.metrics.counter_add("shard.window_rounds", 1);
            let batch = if fifo { meta.in_flight } else { 1 };
            window.clear();
            window.reserve(batch);
            for _ in 0..batch {
                let link = meta.choose().expect("in-flight messages imply a non-empty link");
                meta.pop(link);
                let (receiver, direction) = decode_link(link, n);
                position_deliveries[receiver] += 1;
                let fault = fault_plan
                    .and_then(|p| p.for_delivery(receiver, position_deliveries[receiver]));
                let shard = self.owner[receiver];
                cmds[shard].push(DeliverCmd {
                    local_pos: receiver - self.bounds[shard].0,
                    direction,
                    fault,
                });
                window.push(WindowEntry { receiver, direction, shard });
            }

            active.clear();
            active.extend((0..self.shards).filter(|&k| !cmds[k].is_empty()));
            for &k in &active {
                let job = ShardJob::Round {
                    cmds: std::mem::take(&mut cmds[k]),
                    reuse: spares[k].take().unwrap_or_default(),
                };
                self.metrics.counter_add("shard.channel_ops", 1);
                if self.job_txs[k].send(job).is_err() {
                    return Err(SimError::ShardFailed { shard: k });
                }
            }
            for &k in &active {
                self.metrics.counter_add("shard.channel_ops", 1);
                let report = self.report_rxs[k]
                    .recv()
                    .map_err(|RecvError| SimError::ShardFailed { shard: k })?;
                reports[k] = Some(report);
                cursors[k] = 0;
            }

            // Merge the window in global (serial) order.
            for entry in &window {
                if deliveries >= self.max_events {
                    return Err(SimError::EventLimitExceeded { limit: self.max_events });
                }
                let report = reports[entry.shard]
                    .as_ref()
                    .ok_or(SimError::ShardFailed { shard: entry.shard })?;
                let cursor = cursors[entry.shard];
                cursors[entry.shard] += 1;
                if cursor >= report.used {
                    return Err(SimError::ShardFailed { shard: entry.shard });
                }
                let done = &report.entries[cursor];
                deliveries += 1;
                if sink.active() {
                    sink.push(TraceEvent {
                        seq,
                        kind: EventKind::Deliver,
                        position: entry.receiver,
                        direction: entry.direction,
                        payload: done
                            .payload
                            .clone()
                            .expect("tracing rounds report delivery payloads"),
                    });
                    seq += 1;
                }
                if let Some(source) = done.error.clone() {
                    return Err(SimError::Process { position: entry.receiver, source });
                }
                if done.decision.is_some() && entry.receiver != 0 {
                    return Err(SimError::FollowerDecided { position: entry.receiver });
                }
                merge_sends(
                    &done.sends,
                    entry.receiver,
                    n,
                    self.topology,
                    &mut meta,
                    &mut stats,
                    &mut sink,
                    &mut seq,
                )?;
                if let Some(d) = done.decision {
                    stats.deliveries = deliveries;
                    flush_engine_metrics(&self.metrics, &stats, sink.ring.as_ref());
                    return Ok(RunPhase::Done(Outcome {
                        decision: Some(d),
                        stats,
                        trace: sink.trace,
                        trace_ring: sink.ring,
                    }));
                }
            }

            // Recycle the round's buffers for the next hop. The command
            // vector rides back still holding this round's commands;
            // clear it (keeping capacity) before the next window appends.
            for &k in &active {
                if let Some(mut report) = reports[k].take() {
                    cmds[k] = std::mem::take(&mut report.cmds);
                    cmds[k].clear();
                    report.reset();
                    spares[k] = Some(report);
                }
            }
        }
    }

    /// The delivery cap for an epoch starting at `deliveries`: large
    /// enough to reach the event-limit error exactly where the serial
    /// engine raises it, clipped to the pause boundary so a quiesce
    /// lands at the first epoch edge at or after the request. Both
    /// bounds are ≥ 1 at every grant site (`deliveries` is below the
    /// pause point and at most `max_events` there).
    fn epoch_cap(&self, deliveries: usize, pause_at: Option<usize>) -> usize {
        let budget = self.max_events - deliveries + 1;
        pause_at.map_or(budget, |p| budget.min(p - deliveries))
    }

    /// Quiesces every shard and assembles an [`EngineSnapshot`].
    ///
    /// Safe at a round boundary: every worker has already sent its round
    /// report (which happens-after it routed all boundary traffic), so a
    /// `try_recv` drain inside the worker's `Snapshot` handler observes
    /// every in-flight boundary payload.
    fn capture(
        &self,
        meta: &MetaLinks,
        stats: &ExecStats,
        seq: u64,
        deliveries: usize,
        position_deliveries: &[u64],
        sink: &TraceSink,
    ) -> Result<EngineSnapshot, SimError> {
        let _capture_timer = self.metrics.start_timer("checkpoint.capture");
        for (k, tx) in self.job_txs.iter().enumerate() {
            self.metrics.counter_add("shard.channel_ops", 1);
            if tx.send(ShardJob::Snapshot).is_err() {
                return Err(SimError::ShardFailed { shard: k });
            }
        }
        let mut shard_snaps = Vec::with_capacity(self.shards);
        for (k, rx) in self.snap_rxs.iter().enumerate() {
            self.metrics.counter_add("shard.channel_ops", 1);
            shard_snaps.push(rx.recv().map_err(|RecvError| SimError::ShardFailed { shard: k })?);
        }

        let mut processes = Vec::with_capacity(self.n);
        for (k, snap) in shard_snaps.iter().enumerate() {
            for (j, state) in snap.procs.iter().enumerate() {
                match state {
                    Some(bytes) => processes.push(bytes.clone()),
                    None => {
                        return Err(SimError::Snapshot {
                            reason: format!(
                                "protocol does not implement save_state (processor {})",
                                self.bounds[k].0 + j
                            ),
                        })
                    }
                }
            }
        }

        // Zip each link's payloads (held by the receiver's shard) with
        // the coordinator's payload-free seq replica, front first.
        let mut links = Vec::with_capacity(2 * self.n);
        for link in 0..2 * self.n {
            let seqs = meta.queue_seqs(link);
            let (receiver, direction) = decode_link(link, self.n);
            let k = self.owner[receiver];
            let slot = receiver - self.bounds[k].0;
            let payloads = match direction {
                Direction::Clockwise => &shard_snaps[k].cw[slot],
                Direction::CounterClockwise => &shard_snaps[k].ccw[slot],
            };
            if seqs.len() != payloads.len() {
                return Err(SimError::Snapshot {
                    reason: format!(
                        "link {link} replica holds {} seqs but shard {k} drained {} payloads",
                        seqs.len(),
                        payloads.len()
                    ),
                });
            }
            links.push(seqs.iter().copied().zip(payloads.iter().cloned()).collect());
        }

        Ok(EngineSnapshot {
            version: SNAPSHOT_VERSION,
            n: self.n,
            scheduler: self.scheduler.clone(),
            known_ring_size: self.known_ring_size,
            max_events: self.max_events,
            seq,
            deliveries,
            position_deliveries: position_deliveries.to_vec(),
            stats: stats.clone(),
            links,
            rng: meta.index.export_rng(),
            processes,
            trace: sink.trace.clone(),
            ring: sink.ring.clone(),
        })
    }
}

/// Applies one event's reported sends in outbox order — the merge-side
/// mirror of the serial engine's `apply_effects` send loop, producing
/// identical stats, trace events, sequence numbers, and link pushes.
#[allow(clippy::too_many_arguments)]
fn merge_sends(
    sends: &[SendRecord],
    position: usize,
    n: usize,
    topology: Topology,
    meta: &mut MetaLinks,
    stats: &mut ExecStats,
    sink: &mut TraceSink,
    seq: &mut u64,
) -> Result<(), SimError> {
    for send in sends {
        if !topology.allows(position, send.direction, n) {
            return Err(SimError::IllegalSend { position, direction: send.direction });
        }
        stats.record_send(position, send.direction, send.bits);
        if sink.active() {
            sink.push(TraceEvent {
                seq: *seq,
                kind: EventKind::Send,
                position,
                direction: send.direction,
                payload: send.payload.clone().expect("tracing rounds report send payloads"),
            });
        }
        let link = match send.direction {
            Direction::Clockwise => position,
            Direction::CounterClockwise => n + (position + n - 1) % n,
        };
        meta.push(link, *seq);
        *seq += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_queues_are_fifo_and_spill() {
        let mut q = SlotQueues::new(2);
        assert_eq!(q.pop(0), None);
        let bits = |s: &str| BitString::parse(s).unwrap();
        q.push(0, bits("1"));
        q.push(0, bits("01"));
        q.push(0, bits("001"));
        q.push(1, bits("11"));
        assert_eq!(q.pop(0), Some(bits("1")));
        assert_eq!(q.pop(0), Some(bits("01")));
        // Interleaved push while overflow is non-empty keeps order.
        q.push(0, bits("0001"));
        assert_eq!(q.pop(0), Some(bits("001")));
        assert_eq!(q.pop(0), Some(bits("0001")));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), Some(bits("11")));
    }

    #[test]
    fn decode_link_inverts_the_send_formula() {
        for n in [1usize, 2, 3, 5, 8] {
            for position in 0..n {
                // Clockwise send from `position` lands on link `position`.
                let (receiver, dir) = decode_link(position, n);
                assert_eq!(receiver, (position + 1) % n);
                assert_eq!(dir, Direction::Clockwise);
                // Counter-clockwise send from `position`.
                let link = n + (position + n - 1) % n;
                let (receiver, dir) = decode_link(link, n);
                assert_eq!(receiver, (position + n - 1) % n);
                assert_eq!(dir, Direction::CounterClockwise);
            }
        }
    }

    #[test]
    fn arc_bounds_tile_the_ring() {
        for n in 1..40usize {
            for shards in 1..=n {
                let bounds: Vec<(usize, usize)> =
                    (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[shards - 1].1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "arcs must be contiguous");
                }
                assert!(bounds.iter().all(|&(lo, hi)| hi > lo), "every arc is non-empty");
            }
        }
    }

    #[test]
    fn meta_links_mirror_occupancy() {
        // Ring of 3, two shards: positions {0, 1} on shard 0, {2} on
        // shard 1. Link 2 delivers to position 0 (shard 0); link 5
        // (= n + 2) delivers to position 2 (shard 1).
        let owner = [0usize, 0, 1];
        let mut meta = MetaLinks::new(3, Scheduler::Fifo.build_index(6), &owner, 2);
        assert_eq!(meta.choose(), None);
        assert_eq!(meta.single_owner(), None);
        meta.push(2, 0);
        meta.push(2, 1);
        assert_eq!(meta.single_owner(), Some(0));
        meta.push(5, 2);
        assert_eq!(meta.in_flight, 3);
        assert_eq!(meta.occupied, 2);
        assert_eq!(meta.single_owner(), None); // links span both shards
        assert_eq!(meta.queue_seqs(2), vec![0, 1]);
        assert_eq!(meta.choose(), Some(2)); // earliest seq wins under FIFO
        meta.pop(2);
        assert_eq!(meta.choose(), Some(2));
        meta.pop(2);
        assert_eq!(meta.occupied, 1);
        assert_eq!(meta.single_owner(), Some(1));
        assert_eq!(meta.choose(), Some(5)); // fast path via id_xor
        meta.pop(5);
        assert_eq!(meta.in_flight, 0);
        assert_eq!(meta.queue_seqs(5), Vec::<u64>::new());
        assert_eq!(meta.choose(), None);
        assert_eq!(meta.single_owner(), None);
    }

    #[test]
    fn local_sched_matches_index_semantics() {
        // LongestQueue: largest backlog, lowest id on ties.
        let grant = EpochGrant {
            seq: 10,
            cap: 100,
            links: vec![(1, vec![0, 3]), (4, vec![1, 2]), (7, vec![5])],
            rng: None,
        };
        let mut sched = LocalSched::new(&Scheduler::LongestQueue, &grant);
        assert_eq!(sched.choose(), Some(1)); // ties at backlog 2 → lowest id
        sched.pop(1);
        assert_eq!(sched.choose(), Some(4));
        sched.pop(4);
        sched.pop(4);
        sched.push(7, 10);
        assert_eq!(sched.choose(), Some(7)); // backlog 2 beats 1
        assert_eq!(sched.take_seqs(7), vec![5, 10]);

        // FIFO: minimum head seq across links.
        let grant = EpochGrant {
            seq: 10,
            cap: 100,
            links: vec![(3, vec![4]), (0, vec![2]), (9, vec![7])],
            rng: None,
        };
        let mut sched = LocalSched::new(&Scheduler::Fifo, &grant);
        assert_eq!(sched.choose(), Some(0));
        sched.pop(0);
        assert_eq!(sched.choose(), Some(3));
        sched.pop(3);
        assert_eq!(sched.choose(), Some(9)); // single-link fast path
        sched.pop(9);
        assert_eq!(sched.choose(), None);
    }

    #[test]
    fn local_sched_random_mirrors_the_fenwick_index() {
        // Same RNG state, same non-empty set ⇒ the k-th-smallest-id pick
        // matches the production Fenwick index draw for draw.
        let scheduler = Scheduler::Random { seed: 99 };
        let mut index = scheduler.build_index(16);
        let links = [2usize, 5, 11, 13];
        for (i, &link) in links.iter().enumerate() {
            index.on_push(link, i as u64, 1);
        }
        let grant = EpochGrant {
            seq: 4,
            cap: 100,
            links: links.iter().enumerate().map(|(i, &l)| (l, vec![i as u64])).collect(),
            rng: index.export_rng(),
        };
        let mut sched = LocalSched::new(&scheduler, &grant);
        for _ in 0..50 {
            // Neither side pops, so the candidate set never changes and
            // the two RNG streams stay step-for-step comparable.
            let local = sched.choose().expect("links stay non-empty");
            let global = index.choose();
            assert_eq!(local, global);
        }
    }
}
