//! The sharded event engine: contiguous arcs, boundary channels, and a
//! deterministic merge that replays the serial schedule exactly.
//!
//! # Architecture
//!
//! The ring `p₀ … pₙ₋₁` is partitioned into `S` contiguous **arcs**, one
//! per shard; shard `k` owns positions `[k·n/S, (k+1)·n/S)` and runs on a
//! worker of a dedicated [`ThreadPool`](crate::pool::ThreadPool). Link
//! queues whose receiver lies inside an arc are stored shard-locally in
//! structure-of-arrays slot queues ([`SlotQueues`]); the two links that
//! cross each arc boundary hand payloads off through the vendored
//! crossbeam channels.
//!
//! The **coordinator** (the caller's thread) owns everything that is
//! observable in a run's result: the [`ExecStats`], the [`Trace`], the
//! global event sequence, the delivery count, and — crucially — the
//! scheduling decisions. It maintains [`MetaLinks`], a payload-free
//! replica of the serial engine's link state driven by the same
//! [`LinkIndex`], and repeatedly:
//!
//! 1. picks the next *window* of deliveries exactly as the serial engine
//!    would (for [`Scheduler::Fifo`] the whole in-flight set is one
//!    window — every in-flight seq is smaller than any seq a new send can
//!    get, so the next `in_flight` picks are fixed; for `LongestQueue`
//!    and `Random` the window is a single delivery, reproducing the
//!    serial interleaving pick by pick, RNG draws included);
//! 2. dispatches each shard's slice of the window as one
//!    [`ShardJob::Round`];
//! 3. collects one [`RoundReport`] per commanded shard and **merges**
//!    them in window order, applying sends to `MetaLinks`, stats, and
//!    trace in exactly the order `apply_effects` would have.
//!
//! Because every result-bearing effect flows through the merge in serial
//! order, the sharded engine is **byte-identical to the serial engine**
//! for every shard count and policy: same `Outcome`, same trace, same
//! error on the same event. The serial path survives as the test oracle
//! (`tests/shard_equiv.rs`), exactly like the `NaiveChooser` oracle for
//! the scheduler index.
//!
//! # Why blocking boundary receives cannot deadlock
//!
//! A shard only blocks on a boundary channel for a delivery the
//! coordinator commanded, and the coordinator only commands deliveries of
//! messages it has already merged — which means the producing shard
//! routed the payload into the channel *before* reporting the round that
//! sent it. The payload is therefore already in the channel (or the
//! producer died, which disconnects the channel and surfaces as
//! [`SimError::ShardFailed`]).
//!
//! # Teardown
//!
//! [`Coordinator`]'s field order is load-bearing: dropping the job
//! senders first wakes every idle shard, their exits cascade through the
//! boundary-channel disconnects, and the per-run pool drops (and joins)
//! last. A shard that panics is caught by the pool's worker, which drops
//! the shard's channels; the coordinator sees the disconnect as
//! `ShardFailed` on the next send or receive.

use std::collections::VecDeque;

use ringleader_automata::Word;
use ringleader_bitio::BitString;

use crossbeam::channel::{unbounded, Receiver, RecvError, Sender};

use crate::checkpoint::{EngineSnapshot, RunPhase, SNAPSHOT_VERSION};
use crate::context::{Context, Process, ProcessError, ProcessResult, Protocol};
use crate::engine::{Outcome, RingRunner};
use crate::faults::DeliveryFault;
use crate::pool::ThreadPool;
use crate::sched::LinkIndex;
use crate::trace::{EventKind, TraceEvent, TraceSink};
use crate::{Direction, ExecStats, Scheduler, SimError, Topology};

/// One delivery command: deliver the head of the `(local_pos, direction)`
/// inbound queue to the process at `local_pos` within the shard's arc,
/// applying `fault` (resolved by the coordinator, which owns the
/// per-position delivery counters) if one fires.
struct DeliverCmd {
    local_pos: usize,
    direction: Direction,
    fault: Option<DeliveryFault>,
}

/// Work the coordinator hands a shard.
enum ShardJob {
    /// Run the leader's `on_start` (only ever sent to shard 0).
    Start,
    /// Execute these deliveries in order and report back.
    Round(Vec<DeliverCmd>),
    /// Serialize the arc's state (processes + inbound queues) and reply
    /// on the snapshot channel. Only sent at a quiesced round boundary.
    Snapshot,
}

/// One arc's state at a quiesced round boundary.
struct ShardSnapshot {
    /// Per-process [`Process::save_state`] results, arc-local order
    /// (`None` = the protocol does not support checkpointing).
    procs: Vec<Option<Vec<u8>>>,
    /// Clockwise inbound payloads per slot, front of queue first.
    cw: Vec<Vec<BitString>>,
    /// Counter-clockwise inbound payloads per slot, front first.
    ccw: Vec<Vec<BitString>>,
}

/// A send a shard observed, in outbox order. `payload` is carried only
/// when tracing (the merge needs the bits for the trace; stats need only
/// the length).
struct SendRecord {
    direction: Direction,
    bits: usize,
    payload: Option<BitString>,
}

/// What one commanded delivery (or the leader start) did.
struct DeliveryReport {
    /// The delivered payload, carried only when tracing.
    payload: Option<BitString>,
    sends: Vec<SendRecord>,
    decision: Option<bool>,
    error: Option<ProcessError>,
}

/// A shard's answer to one [`ShardJob`]: reports for the commanded
/// deliveries in order, truncated at the first error or decision.
struct RoundReport {
    deliveries: Vec<DeliveryReport>,
}

/// One delivery of the coordinator's current window, in global order.
struct WindowEntry {
    receiver: usize,
    direction: Direction,
    shard: usize,
}

/// How one delivery's execution ended, from the shard's point of view.
enum EventEnd {
    /// Keep executing the round.
    Continue,
    /// A decision or handler error: stop the round and report.
    EndRun,
    /// A boundary channel disconnected: the run is being torn down —
    /// exit without reporting.
    NeighbourGone,
}

/// A payload-free replica of the serial engine's `Links`: the same queue
/// occupancy, the same head seqs, the same [`LinkIndex`] transitions —
/// so `choose()` returns exactly the serial pick at every step.
struct MetaLinks {
    queues: Vec<VecDeque<u64>>,
    index: Box<dyn LinkIndex>,
    occupied: usize,
    id_xor: usize,
    /// Total messages in flight across all links.
    in_flight: usize,
}

impl MetaLinks {
    fn new(n: usize, index: Box<dyn LinkIndex>) -> Self {
        let mut queues = Vec::with_capacity(2 * n);
        queues.resize_with(2 * n, VecDeque::new);
        Self { queues, index, occupied: 0, id_xor: 0, in_flight: 0 }
    }

    fn push(&mut self, link: usize, seq: u64) {
        let queue = &mut self.queues[link];
        queue.push_back(seq);
        let backlog = queue.len();
        if backlog == 1 {
            self.occupied += 1;
            self.id_xor ^= link;
        }
        self.in_flight += 1;
        self.index.on_push(link, seq, backlog);
    }

    /// Mirrors `Links::choose`, including the single-link fast path (the
    /// `Random` index consumes identical RNG state either way).
    fn choose(&mut self) -> Option<usize> {
        match self.occupied {
            0 => None,
            1 => {
                self.index.on_trivial_choose();
                Some(self.id_xor)
            }
            _ => Some(self.index.choose()),
        }
    }

    fn pop(&mut self, link: usize) {
        let queue = &mut self.queues[link];
        queue.pop_front().expect("chosen link non-empty");
        let backlog = queue.len();
        if backlog == 0 {
            self.occupied -= 1;
            self.id_xor ^= link;
        }
        self.in_flight -= 1;
        self.index.on_pop(link, queue.front().copied(), backlog);
    }
}

/// Structure-of-arrays inbound queues for one arc and one travel
/// direction: slot `q` feeds the arc's `q`-th process. The common case —
/// at most one message waiting per slot — stays in the flat `head` array
/// (one cache line per few slots); bursts spill to per-slot overflow
/// queues without disturbing the heads.
struct SlotQueues {
    head: Vec<Option<BitString>>,
    overflow: Vec<VecDeque<BitString>>,
}

impl SlotQueues {
    fn new(len: usize) -> Self {
        let mut overflow = Vec::with_capacity(len);
        overflow.resize_with(len, VecDeque::new);
        Self { head: vec![None; len], overflow }
    }

    fn push(&mut self, slot: usize, payload: BitString) {
        if self.head[slot].is_none() && self.overflow[slot].is_empty() {
            self.head[slot] = Some(payload);
        } else {
            self.overflow[slot].push_back(payload);
        }
    }

    fn pop(&mut self, slot: usize) -> Option<BitString> {
        let payload = self.head[slot].take()?;
        self.head[slot] = self.overflow[slot].pop_front();
        Some(payload)
    }

    /// Front-to-back contents of a slot (head first, then overflow), for
    /// checkpoint capture.
    fn slot_contents(&self, slot: usize) -> Vec<BitString> {
        let mut out = Vec::with_capacity(usize::from(self.head[slot].is_some()));
        if let Some(head) = &self.head[slot] {
            out.push(head.clone());
        }
        out.extend(self.overflow[slot].iter().cloned());
        out
    }
}

/// One shard: an arc of processes, their inbound queues, and the
/// channels tying it to the coordinator and its two neighbour shards.
struct ShardWorker {
    /// Global position of the arc's first process.
    lo: usize,
    /// Arc length (≥ 1).
    len: usize,
    known: Option<usize>,
    tracing: bool,
    procs: Vec<Box<dyn Process>>,
    /// Clockwise-travelling inbound queues: `cw` slot `q` feeds process
    /// `lo + q`; slot 0 is additionally fed by `left_rx`.
    cw: SlotQueues,
    /// Counter-clockwise inbound queues; slot `len - 1` is additionally
    /// fed by `right_rx`.
    ccw: SlotQueues,
    job_rx: Receiver<ShardJob>,
    report_tx: Sender<RoundReport>,
    snap_tx: Sender<ShardSnapshot>,
    /// Clockwise messages crossing the left boundary in.
    left_rx: Receiver<BitString>,
    /// Counter-clockwise messages crossing the right boundary in.
    right_rx: Receiver<BitString>,
    halt_rx: Receiver<()>,
    /// Clockwise messages crossing the right boundary out.
    cw_out: Sender<BitString>,
    /// Counter-clockwise messages crossing the left boundary out.
    ccw_out: Sender<BitString>,
}

impl ShardWorker {
    fn run(mut self) {
        let mut ctx = Context::new(false, self.known);
        loop {
            // Idle loop: wait for work, eagerly buffering boundary
            // traffic so round-time receives rarely block. Any
            // disconnect means the run is over.
            let job = crossbeam::channel::select! {
                recv(self.job_rx) -> j => match j {
                    Ok(job) => Some(job),
                    Err(RecvError) => return,
                },
                recv(self.left_rx) -> m => match m {
                    Ok(payload) => {
                        self.cw.push(0, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.right_rx) -> m => match m {
                    Ok(payload) => {
                        self.ccw.push(self.len - 1, payload);
                        None
                    }
                    Err(RecvError) => return,
                },
                recv(self.halt_rx) -> _m => return,
            };
            if let Some(job) = job {
                if !self.execute(job, &mut ctx) {
                    return;
                }
            }
        }
    }

    /// Executes one job and reports. Returns `false` when a neighbour
    /// disconnect showed the run is being torn down (no report is sent;
    /// the coordinator observes the cascade as a channel disconnect).
    fn execute(&mut self, job: ShardJob, ctx: &mut Context) -> bool {
        let mut report = RoundReport { deliveries: Vec::new() };
        match job {
            ShardJob::Start => {
                ctx.reset(true);
                let result = self.procs[0].on_start(ctx);
                if matches!(
                    self.finish_event(ctx, 0, None, result, &mut report),
                    EventEnd::NeighbourGone
                ) {
                    return false;
                }
            }
            ShardJob::Round(cmds) => {
                for cmd in cmds {
                    let Some(mut payload) = self.take_inbound(cmd.local_pos, cmd.direction) else {
                        return false;
                    };
                    if let Some(f) = &cmd.fault {
                        if f.kill_shard {
                            // Die before handling: no report, channels
                            // drop, and the coordinator observes a
                            // deterministic `ShardFailed` for this shard.
                            return false;
                        }
                        if let Some(c) = &f.corrupt {
                            payload = c.apply(&payload);
                        }
                        if f.delay_micros > 0 {
                            std::thread::sleep(std::time::Duration::from_micros(f.delay_micros));
                        }
                    }
                    ctx.reset(self.lo + cmd.local_pos == 0);
                    let result = self.procs[cmd.local_pos].on_message(cmd.direction, &payload, ctx);
                    if result.is_ok() {
                        if let Some(f) = &cmd.fault {
                            if f.stall {
                                // Swallow the handler's effects, exactly
                                // like the serial engine's stall path.
                                ctx.reset(self.lo + cmd.local_pos == 0);
                            }
                            for (d, p) in &f.inject_sends {
                                ctx.send(*d, p.clone());
                            }
                            if let Some(accept) = f.inject_decide {
                                ctx.decide(accept);
                            }
                        }
                    }
                    let delivered = self.tracing.then_some(payload);
                    match self.finish_event(ctx, cmd.local_pos, delivered, result, &mut report) {
                        EventEnd::Continue => {}
                        EventEnd::EndRun => break,
                        EventEnd::NeighbourGone => return false,
                    }
                }
            }
            ShardJob::Snapshot => {
                // Quiesced boundary: every payload of a merged send was
                // enqueued on its boundary channel *before* the producing
                // shard reported the round — which the coordinator
                // received before asking for snapshots — so a
                // non-blocking drain is complete by happens-before.
                while let Ok(payload) = self.left_rx.try_recv() {
                    self.cw.push(0, payload);
                }
                while let Ok(payload) = self.right_rx.try_recv() {
                    self.ccw.push(self.len - 1, payload);
                }
                let snap = ShardSnapshot {
                    procs: self.procs.iter().map(|p| p.save_state()).collect(),
                    cw: (0..self.len).map(|s| self.cw.slot_contents(s)).collect(),
                    ccw: (0..self.len).map(|s| self.ccw.slot_contents(s)).collect(),
                };
                // The worker keeps serving jobs after a snapshot; a send
                // failure means the coordinator already went away.
                let _ = self.snap_tx.send(snap);
                return true;
            }
        }
        // A send failure here means the coordinator already went away;
        // the worker just retires.
        let _ = self.report_tx.send(report);
        true
    }

    /// Records one executed event into `report`, routing its sends.
    /// Sends are *recorded* unconditionally (the merge applies stats and
    /// trace from the records) but *routed* only when the handler
    /// neither erred (the serial engine discards a failing handler's
    /// outbox) nor decided (the run is over; routing would only stuff
    /// channels nobody will drain).
    fn finish_event(
        &mut self,
        ctx: &mut Context,
        local_pos: usize,
        delivered: Option<BitString>,
        result: ProcessResult,
        report: &mut RoundReport,
    ) -> EventEnd {
        let mut entry =
            DeliveryReport { payload: delivered, sends: Vec::new(), decision: None, error: None };
        if let Err(source) = result {
            entry.error = Some(source);
            report.deliveries.push(entry);
            return EventEnd::EndRun;
        }
        let decision = ctx.take_decision();
        let route = decision.is_none();
        let mut neighbour_gone = false;
        for (direction, payload) in ctx.drain_outbox() {
            entry.sends.push(SendRecord {
                direction,
                bits: payload.len(),
                payload: self.tracing.then(|| payload.clone()),
            });
            if route && !neighbour_gone {
                neighbour_gone = !self.route(local_pos, direction, payload);
            }
        }
        entry.decision = decision;
        report.deliveries.push(entry);
        if neighbour_gone {
            EventEnd::NeighbourGone
        } else if decision.is_some() {
            EventEnd::EndRun
        } else {
            EventEnd::Continue
        }
    }

    /// Pops the commanded inbound message, blocking on the boundary
    /// channel when the coordinator commanded a boundary delivery whose
    /// payload has not been buffered yet (it is guaranteed to be in the
    /// channel — see the module docs). `None` means the channel
    /// disconnected: tear-down.
    fn take_inbound(&mut self, local_pos: usize, direction: Direction) -> Option<BitString> {
        match direction {
            Direction::Clockwise => self.cw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos, 0, "interior CW queue empty on command");
                self.left_rx.recv().ok()
            }),
            Direction::CounterClockwise => self.ccw.pop(local_pos).or_else(|| {
                debug_assert_eq!(local_pos + 1, self.len, "interior CCW queue empty on command");
                self.right_rx.recv().ok()
            }),
        }
    }

    /// Hands a sent payload to the next hop: the shard-local slot queue
    /// of the neighbouring process, or the boundary channel when the
    /// neighbour lives on another shard. Returns `false` on a
    /// disconnected boundary (tear-down in progress).
    fn route(&mut self, local_pos: usize, direction: Direction, payload: BitString) -> bool {
        match direction {
            Direction::Clockwise => {
                if local_pos + 1 < self.len {
                    self.cw.push(local_pos + 1, payload);
                    true
                } else {
                    self.cw_out.send(payload).is_ok()
                }
            }
            Direction::CounterClockwise => {
                if local_pos > 0 {
                    self.ccw.push(local_pos - 1, payload);
                    true
                } else {
                    self.ccw_out.send(payload).is_ok()
                }
            }
        }
    }
}

/// Decodes a link id to `(receiver, direction)` — the inverse of the
/// send-side link formula in `apply_effects`.
fn decode_link(link: usize, n: usize) -> (usize, Direction) {
    if link < n {
        ((link + 1) % n, Direction::Clockwise)
    } else {
        (link - n, Direction::CounterClockwise)
    }
}

/// The coordinator's handles on the shard fleet.
///
/// Field order is drop order and is load-bearing: `job_txs` drop first
/// (waking idle shards into exit), the boundary/report channels cascade,
/// and the pool drops — and joins its workers — last.
struct Coordinator {
    job_txs: Vec<Sender<ShardJob>>,
    /// Held only so a clone-per-shard halt channel stays constructible;
    /// dropping it with the struct wakes any shard parked on it.
    _halt: Sender<()>,
    report_rxs: Vec<Receiver<RoundReport>>,
    snap_rxs: Vec<Receiver<ShardSnapshot>>,
    _pool: ThreadPool,
    n: usize,
    shards: usize,
    topology: Topology,
    scheduler: Scheduler,
    known_ring_size: bool,
    max_events: usize,
    /// `bounds[k]` = the half-open global range of shard `k`'s arc.
    bounds: Vec<(usize, usize)>,
    /// `owner[p]` = the shard owning global position `p`.
    owner: Vec<usize>,
}

/// Runs `protocol` sharded over `shards ≥ 2` arcs, byte-identical to
/// [`RingRunner::run`]'s serial path — optionally resuming from a
/// snapshot and/or pausing at a round boundary at or after `pause_at`
/// deliveries.
pub(crate) fn run_sharded(
    runner: &RingRunner,
    protocol: &dyn Protocol,
    word: &Word,
    shards: usize,
    resume: Option<&EngineSnapshot>,
    pause_at: Option<usize>,
) -> Result<RunPhase, SimError> {
    let n = word.len();
    // A resumed run takes its configuration from the snapshot, exactly
    // like the serial engine; only the shard count and fault plan come
    // from the resuming runner (neither affects observables).
    let (scheduler, known_ring_size, max_events) = match resume {
        Some(snap) => (snap.scheduler.clone(), snap.known_ring_size, snap.max_events),
        None => (runner.scheduler.clone(), runner.known_ring_size, runner.max_events),
    };
    let sink = match resume {
        Some(snap) => TraceSink { trace: snap.trace.clone(), ring: snap.ring.clone() },
        None => TraceSink::new(runner.record_trace, runner.trace_ring),
    };
    let known = known_ring_size.then_some(n);
    let tracing = sink.active();

    let mut processes: Vec<Box<dyn Process>> = Vec::with_capacity(n);
    for (i, &sym) in word.symbols().iter().enumerate() {
        processes.push(if i == 0 { protocol.leader(sym) } else { protocol.follower(sym) });
    }
    if let Some(snap) = resume {
        for (i, bytes) in snap.processes.iter().enumerate() {
            processes[i]
                .load_state(bytes)
                .map_err(|source| SimError::Process { position: i, source })?;
        }
    }

    let bounds: Vec<(usize, usize)> =
        (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
    let mut owner = vec![0usize; n];
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        for o in owner.iter_mut().take(hi).skip(lo) {
            *o = k;
        }
    }

    let mut job_txs = Vec::with_capacity(shards);
    let mut job_rxs = Vec::with_capacity(shards);
    let mut report_txs = Vec::with_capacity(shards);
    let mut report_rxs = Vec::with_capacity(shards);
    let mut snap_txs = Vec::with_capacity(shards);
    let mut snap_rxs = Vec::with_capacity(shards);
    let mut cw_txs = Vec::with_capacity(shards);
    let mut cw_rxs = Vec::with_capacity(shards);
    let mut ccw_txs = Vec::with_capacity(shards);
    let mut ccw_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = unbounded::<ShardJob>();
        job_txs.push(tx);
        job_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<RoundReport>();
        report_txs.push(Some(tx));
        report_rxs.push(rx);
        let (tx, rx) = unbounded::<ShardSnapshot>();
        snap_txs.push(Some(tx));
        snap_rxs.push(rx);
        let (tx, rx) = unbounded::<BitString>();
        cw_txs.push(Some(tx));
        cw_rxs.push(Some(rx));
        let (tx, rx) = unbounded::<BitString>();
        ccw_txs.push(Some(tx));
        ccw_rxs.push(Some(rx));
    }
    let (halt_tx, halt_rx) = unbounded::<()>();

    let pool = ThreadPool::new(shards);
    let mut rest = processes;
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        let len = hi - lo;
        let tail = rest.split_off(len);
        let procs = rest;
        rest = tail;
        let mut cw = SlotQueues::new(len);
        let mut ccw = SlotQueues::new(len);
        if let Some(snap) = resume {
            // Preload the arc's inbound queues from the snapshot: the
            // clockwise link feeding global position `p` is `(p-1) mod n`,
            // the counter-clockwise one is stored at `n + p`.
            for slot in 0..len {
                let receiver = lo + slot;
                for (_, payload) in &snap.links[(receiver + n - 1) % n] {
                    cw.push(slot, payload.clone());
                }
                for (_, payload) in &snap.links[n + receiver] {
                    ccw.push(slot, payload.clone());
                }
            }
        }
        let worker = ShardWorker {
            lo,
            len,
            known,
            tracing,
            procs,
            cw,
            ccw,
            job_rx: job_rxs[k].take().expect("each job receiver is moved once"),
            report_tx: report_txs[k].take().expect("each report sender is moved once"),
            snap_tx: snap_txs[k].take().expect("each snapshot sender is moved once"),
            left_rx: cw_rxs[k].take().expect("each boundary receiver is moved once"),
            right_rx: ccw_rxs[k].take().expect("each boundary receiver is moved once"),
            halt_rx: halt_rx.clone(),
            // Clockwise traffic leaving shard k enters shard k+1's left
            // boundary; counter-clockwise leaving enters shard k-1's
            // right boundary. Each sender is moved to exactly one shard,
            // so the coordinator holds no boundary endpoint and the
            // disconnect cascade is purely shard-to-shard.
            cw_out: cw_txs[(k + 1) % shards].take().expect("each boundary sender is moved once"),
            ccw_out: ccw_txs[(k + shards - 1) % shards]
                .take()
                .expect("each boundary sender is moved once"),
        };
        pool.execute(move || worker.run());
    }
    drop(halt_rx);

    let coordinator = Coordinator {
        job_txs,
        _halt: halt_tx,
        report_rxs,
        snap_rxs,
        _pool: pool,
        n,
        shards,
        topology: protocol.topology(),
        scheduler,
        known_ring_size,
        max_events,
        bounds,
        owner,
    };
    coordinator.run(runner, resume, pause_at, sink)
}

impl Coordinator {
    fn run(
        &self,
        runner: &RingRunner,
        resume: Option<&EngineSnapshot>,
        pause_at: Option<usize>,
        mut sink: TraceSink,
    ) -> Result<RunPhase, SimError> {
        let n = self.n;
        let mut meta = MetaLinks::new(n, self.scheduler.build_index(2 * n));
        let mut stats;
        let mut seq: u64;
        let mut deliveries: usize;
        let mut position_deliveries: Vec<u64>;
        let fault_plan = runner.fault_plan.as_ref();

        if let Some(snap) = resume {
            // Rebuild the payload-free link replica by replaying the
            // snapshot's queues front-to-back; per-link seqs are
            // increasing, so the index lands in its canonical state.
            for (link, queue) in snap.links.iter().enumerate() {
                for &(s, _) in queue {
                    meta.push(link, s);
                }
            }
            if let Some(state) = &snap.rng {
                meta.index.import_rng(state);
            }
            stats = snap.stats.clone();
            seq = snap.seq;
            deliveries = snap.deliveries;
            position_deliveries = snap.position_deliveries.clone();
        } else {
            stats = ExecStats::new(n);
            seq = 0;
            deliveries = 0;
            position_deliveries = vec![0; n];

            // Start the leader on shard 0 and merge its report — the
            // counterpart of the serial engine's pre-loop `on_start` block.
            if self.job_txs[0].send(ShardJob::Start).is_err() {
                return Err(SimError::ShardFailed { shard: 0 });
            }
            let report = self.report_rxs[0]
                .recv()
                .map_err(|RecvError| SimError::ShardFailed { shard: 0 })?;
            let entry =
                report.deliveries.into_iter().next().ok_or(SimError::ShardFailed { shard: 0 })?;
            if let Some(source) = entry.error {
                return Err(SimError::Process { position: 0, source });
            }
            merge_sends(
                &entry.sends,
                0,
                n,
                self.topology,
                &mut meta,
                &mut stats,
                &mut sink,
                &mut seq,
            )?;
            if let Some(d) = entry.decision {
                stats.deliveries = deliveries;
                return Ok(RunPhase::Done(Outcome {
                    decision: Some(d),
                    stats,
                    trace: sink.trace,
                    trace_ring: sink.ring,
                }));
            }
        }

        // For FIFO the next `in_flight` picks are already determined (a
        // new send's seq exceeds every in-flight seq, and the min-heap's
        // pop order depends only on its unique keys), so the whole
        // in-flight set is one window. LongestQueue and Random picks
        // depend on the sends merged between deliveries: window size 1.
        let fifo = matches!(self.scheduler, Scheduler::Fifo);

        let mut cmds: Vec<Vec<DeliverCmd>> = Vec::new();
        cmds.resize_with(self.shards, Vec::new);
        loop {
            // Quiesce check first, mirroring the serial engine's
            // pause-before-choose ordering: a round is atomic, so the
            // boundary lands at the first round edge at or after `k`.
            if let Some(k) = pause_at {
                if deliveries >= k {
                    let snap =
                        self.capture(&meta, &stats, seq, deliveries, &position_deliveries, &sink)?;
                    return Ok(RunPhase::Paused(Box::new(snap)));
                }
            }
            if meta.in_flight == 0 {
                return Err(SimError::Stalled { deliveries });
            }
            let batch = if fifo { meta.in_flight } else { 1 };
            let mut window: Vec<WindowEntry> = Vec::with_capacity(batch);
            for _ in 0..batch {
                let link = meta.choose().expect("in-flight messages imply a non-empty link");
                meta.pop(link);
                let (receiver, direction) = decode_link(link, n);
                position_deliveries[receiver] += 1;
                let fault = fault_plan
                    .and_then(|p| p.for_delivery(receiver, position_deliveries[receiver]));
                let shard = self.owner[receiver];
                cmds[shard].push(DeliverCmd {
                    local_pos: receiver - self.bounds[shard].0,
                    direction,
                    fault,
                });
                window.push(WindowEntry { receiver, direction, shard });
            }

            let active: Vec<usize> = (0..self.shards).filter(|&k| !cmds[k].is_empty()).collect();
            for &k in &active {
                if self.job_txs[k].send(ShardJob::Round(std::mem::take(&mut cmds[k]))).is_err() {
                    return Err(SimError::ShardFailed { shard: k });
                }
            }
            let mut reports: Vec<Option<RoundReport>> = Vec::new();
            reports.resize_with(self.shards, || None);
            for &k in &active {
                let report = self.report_rxs[k]
                    .recv()
                    .map_err(|RecvError| SimError::ShardFailed { shard: k })?;
                reports[k] = Some(report);
            }

            // Merge the window in global (serial) order.
            let mut cursors = vec![0usize; self.shards];
            for entry in &window {
                if deliveries >= self.max_events {
                    return Err(SimError::EventLimitExceeded { limit: self.max_events });
                }
                let report = reports[entry.shard]
                    .as_ref()
                    .ok_or(SimError::ShardFailed { shard: entry.shard })?;
                let cursor = cursors[entry.shard];
                cursors[entry.shard] += 1;
                let done = report
                    .deliveries
                    .get(cursor)
                    .ok_or(SimError::ShardFailed { shard: entry.shard })?;
                deliveries += 1;
                if sink.active() {
                    sink.push(TraceEvent {
                        seq,
                        kind: EventKind::Deliver,
                        position: entry.receiver,
                        direction: entry.direction,
                        payload: done
                            .payload
                            .clone()
                            .expect("tracing rounds report delivery payloads"),
                    });
                    seq += 1;
                }
                if let Some(source) = done.error.clone() {
                    return Err(SimError::Process { position: entry.receiver, source });
                }
                if done.decision.is_some() && entry.receiver != 0 {
                    return Err(SimError::FollowerDecided { position: entry.receiver });
                }
                merge_sends(
                    &done.sends,
                    entry.receiver,
                    n,
                    self.topology,
                    &mut meta,
                    &mut stats,
                    &mut sink,
                    &mut seq,
                )?;
                if let Some(d) = done.decision {
                    stats.deliveries = deliveries;
                    return Ok(RunPhase::Done(Outcome {
                        decision: Some(d),
                        stats,
                        trace: sink.trace,
                        trace_ring: sink.ring,
                    }));
                }
            }
        }
    }

    /// Quiesces every shard and assembles an [`EngineSnapshot`].
    ///
    /// Safe at a round boundary: every worker has already sent its round
    /// report (which happens-after it routed all boundary traffic), so a
    /// `try_recv` drain inside the worker's `Snapshot` handler observes
    /// every in-flight boundary payload.
    fn capture(
        &self,
        meta: &MetaLinks,
        stats: &ExecStats,
        seq: u64,
        deliveries: usize,
        position_deliveries: &[u64],
        sink: &TraceSink,
    ) -> Result<EngineSnapshot, SimError> {
        for (k, tx) in self.job_txs.iter().enumerate() {
            if tx.send(ShardJob::Snapshot).is_err() {
                return Err(SimError::ShardFailed { shard: k });
            }
        }
        let mut shard_snaps = Vec::with_capacity(self.shards);
        for (k, rx) in self.snap_rxs.iter().enumerate() {
            shard_snaps.push(rx.recv().map_err(|RecvError| SimError::ShardFailed { shard: k })?);
        }

        let mut processes = Vec::with_capacity(self.n);
        for (k, snap) in shard_snaps.iter().enumerate() {
            for (j, state) in snap.procs.iter().enumerate() {
                match state {
                    Some(bytes) => processes.push(bytes.clone()),
                    None => {
                        return Err(SimError::Snapshot {
                            reason: format!(
                                "protocol does not implement save_state (processor {})",
                                self.bounds[k].0 + j
                            ),
                        })
                    }
                }
            }
        }

        // Zip each link's payloads (held by the receiver's shard) with
        // the coordinator's payload-free seq replica, front first.
        let mut links = Vec::with_capacity(2 * self.n);
        for (link, seqs) in meta.queues.iter().enumerate() {
            let (receiver, direction) = decode_link(link, self.n);
            let k = self.owner[receiver];
            let slot = receiver - self.bounds[k].0;
            let payloads = match direction {
                Direction::Clockwise => &shard_snaps[k].cw[slot],
                Direction::CounterClockwise => &shard_snaps[k].ccw[slot],
            };
            if seqs.len() != payloads.len() {
                return Err(SimError::Snapshot {
                    reason: format!(
                        "link {link} replica holds {} seqs but shard {k} drained {} payloads",
                        seqs.len(),
                        payloads.len()
                    ),
                });
            }
            links.push(seqs.iter().copied().zip(payloads.iter().cloned()).collect());
        }

        Ok(EngineSnapshot {
            version: SNAPSHOT_VERSION,
            n: self.n,
            scheduler: self.scheduler.clone(),
            known_ring_size: self.known_ring_size,
            max_events: self.max_events,
            seq,
            deliveries,
            position_deliveries: position_deliveries.to_vec(),
            stats: stats.clone(),
            links,
            rng: meta.index.export_rng(),
            processes,
            trace: sink.trace.clone(),
            ring: sink.ring.clone(),
        })
    }
}

/// Applies one event's reported sends in outbox order — the merge-side
/// mirror of the serial engine's `apply_effects` send loop, producing
/// identical stats, trace events, sequence numbers, and link pushes.
#[allow(clippy::too_many_arguments)]
fn merge_sends(
    sends: &[SendRecord],
    position: usize,
    n: usize,
    topology: Topology,
    meta: &mut MetaLinks,
    stats: &mut ExecStats,
    sink: &mut TraceSink,
    seq: &mut u64,
) -> Result<(), SimError> {
    for send in sends {
        if !topology.allows(position, send.direction, n) {
            return Err(SimError::IllegalSend { position, direction: send.direction });
        }
        stats.record_send(position, send.direction, send.bits);
        if sink.active() {
            sink.push(TraceEvent {
                seq: *seq,
                kind: EventKind::Send,
                position,
                direction: send.direction,
                payload: send.payload.clone().expect("tracing rounds report send payloads"),
            });
        }
        let link = match send.direction {
            Direction::Clockwise => position,
            Direction::CounterClockwise => n + (position + n - 1) % n,
        };
        meta.push(link, *seq);
        *seq += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_queues_are_fifo_and_spill() {
        let mut q = SlotQueues::new(2);
        assert_eq!(q.pop(0), None);
        let bits = |s: &str| BitString::parse(s).unwrap();
        q.push(0, bits("1"));
        q.push(0, bits("01"));
        q.push(0, bits("001"));
        q.push(1, bits("11"));
        assert_eq!(q.pop(0), Some(bits("1")));
        assert_eq!(q.pop(0), Some(bits("01")));
        // Interleaved push while overflow is non-empty keeps order.
        q.push(0, bits("0001"));
        assert_eq!(q.pop(0), Some(bits("001")));
        assert_eq!(q.pop(0), Some(bits("0001")));
        assert_eq!(q.pop(0), None);
        assert_eq!(q.pop(1), Some(bits("11")));
    }

    #[test]
    fn decode_link_inverts_the_send_formula() {
        for n in [1usize, 2, 3, 5, 8] {
            for position in 0..n {
                // Clockwise send from `position` lands on link `position`.
                let (receiver, dir) = decode_link(position, n);
                assert_eq!(receiver, (position + 1) % n);
                assert_eq!(dir, Direction::Clockwise);
                // Counter-clockwise send from `position`.
                let link = n + (position + n - 1) % n;
                let (receiver, dir) = decode_link(link, n);
                assert_eq!(receiver, (position + n - 1) % n);
                assert_eq!(dir, Direction::CounterClockwise);
            }
        }
    }

    #[test]
    fn arc_bounds_tile_the_ring() {
        for n in 1..40usize {
            for shards in 1..=n {
                let bounds: Vec<(usize, usize)> =
                    (0..shards).map(|k| (k * n / shards, (k + 1) * n / shards)).collect();
                assert_eq!(bounds[0].0, 0);
                assert_eq!(bounds[shards - 1].1, n);
                for w in bounds.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "arcs must be contiguous");
                }
                assert!(bounds.iter().all(|&(lo, hi)| hi > lo), "every arc is non-empty");
            }
        }
    }

    #[test]
    fn meta_links_mirror_occupancy() {
        let mut meta = MetaLinks::new(3, Scheduler::Fifo.build_index(6));
        assert_eq!(meta.choose(), None);
        meta.push(2, 0);
        meta.push(2, 1);
        meta.push(5, 2);
        assert_eq!(meta.in_flight, 3);
        assert_eq!(meta.occupied, 2);
        assert_eq!(meta.choose(), Some(2)); // earliest seq wins under FIFO
        meta.pop(2);
        assert_eq!(meta.choose(), Some(2));
        meta.pop(2);
        assert_eq!(meta.occupied, 1);
        assert_eq!(meta.choose(), Some(5)); // fast path via id_xor
        meta.pop(5);
        assert_eq!(meta.in_flight, 0);
        assert_eq!(meta.choose(), None);
    }
}
