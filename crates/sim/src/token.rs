//! Token-discipline validation (Theorem 5 prerequisite).
//!
//! A **token algorithm** keeps at most one message in flight at any time.
//! Theorem 5 reduces arbitrary bidirectional algorithms to token algorithms
//! (via Tiwari–Loui, at a ≤3× bit cost) before applying the cut-link
//! transformation. Our bidirectional protocols are written natively in
//! token style; these validators check that claim against actual traces so
//! the E4 experiment rests on verified ground.

use crate::trace::{EventKind, Trace};

/// Counts the moments at which more than one message was in flight.
///
/// Scans the trace in global order, incrementing on sends and decrementing
/// on deliveries; every event after which the in-flight count exceeds 1 is
/// a violation. A trailing in-flight message (sent but undelivered when the
/// leader decided) is *not* a violation by itself.
#[must_use]
pub fn token_violations(trace: &Trace) -> usize {
    let mut in_flight: isize = 0;
    let mut violations = 0;
    for e in trace.events() {
        match e.kind {
            EventKind::Send => in_flight += 1,
            EventKind::Deliver => in_flight -= 1,
        }
        if in_flight > 1 {
            violations += 1;
        }
    }
    violations
}

/// Whether the execution obeyed token discipline throughout.
#[must_use]
pub fn validate_token_discipline(trace: &Trace) -> bool {
    token_violations(trace) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;
    use crate::Direction;
    use ringleader_bitio::BitString;

    trait PushTest {
        fn push_test(&mut self, seq: u64, kind: EventKind);
    }

    impl PushTest for Trace {
        fn push_test(&mut self, seq: u64, kind: EventKind) {
            self.push(TraceEvent {
                seq,
                kind,
                position: 0,
                direction: Direction::Clockwise,
                payload: BitString::parse("1").unwrap(),
            });
        }
    }

    #[test]
    fn alternating_send_deliver_is_token() {
        let mut t = Trace::default();
        for i in 0..10u64 {
            t.push_test(2 * i, EventKind::Send);
            t.push_test(2 * i + 1, EventKind::Deliver);
        }
        assert!(validate_token_discipline(&t));
        assert_eq!(token_violations(&t), 0);
    }

    #[test]
    fn double_send_violates() {
        let mut t = Trace::default();
        t.push_test(0, EventKind::Send);
        t.push_test(1, EventKind::Send); // two in flight
        t.push_test(2, EventKind::Deliver);
        t.push_test(3, EventKind::Deliver);
        assert!(!validate_token_discipline(&t));
        assert_eq!(token_violations(&t), 1);
    }

    #[test]
    fn trailing_in_flight_message_is_fine() {
        let mut t = Trace::default();
        t.push_test(0, EventKind::Send);
        t.push_test(1, EventKind::Deliver);
        t.push_test(2, EventKind::Send); // undelivered at decision time
        assert!(validate_token_discipline(&t));
    }

    #[test]
    fn empty_trace_is_token() {
        assert!(validate_token_discipline(&Trace::default()));
    }

    #[test]
    fn sustained_overlap_counts_every_event() {
        let mut t = Trace::default();
        t.push_test(0, EventKind::Send);
        t.push_test(1, EventKind::Send);
        t.push_test(2, EventKind::Send); // 3 in flight
        t.push_test(3, EventKind::Deliver); // still 2
        t.push_test(4, EventKind::Deliver);
        t.push_test(5, EventKind::Deliver);
        assert_eq!(token_violations(&t), 3);
    }
}
